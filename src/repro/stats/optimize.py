"""Optimisation helpers used by the CPE and LGE estimators.

Two flavours are needed:

* **Vector gradient descent** with finite-difference gradients for the
  maximum-likelihood update of the multivariate-normal parameters
  (Eq. 6-7).  The paper computes gradients by backpropagation; with only
  ``2(D+1) + (D+1)D/2`` free parameters (14 for the paper's ``D = 3``),
  central differences of a vectorised likelihood are both simpler and fast
  enough, and the resulting update rule is identical.
* **Bounded scalar minimisation** for the per-worker learning-rate fit of
  Eq. (11), wrapped around :func:`scipy.optimize.minimize_scalar`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np
from scipy import optimize as spo


@dataclass
class GradientDescentResult:
    """Outcome of a gradient-descent run."""

    parameters: np.ndarray
    objective: float
    objective_history: List[float] = field(default_factory=list)
    n_iterations: int = 0
    converged: bool = False


def finite_difference_gradient(
    objective: Callable[[np.ndarray], float],
    parameters: np.ndarray,
    step: float = 1e-5,
    mask: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Central finite-difference gradient of a scalar objective.

    Parameters
    ----------
    objective:
        Callable mapping a parameter vector to a scalar.
    parameters:
        Point at which to evaluate the gradient.
    step:
        Per-coordinate perturbation size.
    mask:
        Optional boolean vector; coordinates where it is ``False`` get a zero
        gradient (used to freeze parameters such as prior-domain means that
        the paper estimates directly from historical data).
    """
    parameters = np.asarray(parameters, dtype=float)
    gradient = np.zeros_like(parameters)
    for index in range(parameters.size):
        if mask is not None and not mask[index]:
            continue
        forward = parameters.copy()
        backward = parameters.copy()
        forward[index] += step
        backward[index] -= step
        gradient[index] = (objective(forward) - objective(backward)) / (2.0 * step)
    return gradient


def perturbation_stack(
    parameters: np.ndarray,
    step: float = 1e-5,
    mask: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """The ``2M`` central-difference evaluation points as one stacked matrix.

    Returns
    -------
    (stack, indices):
        ``stack`` has shape ``(2M, P)`` where ``M`` is the number of free
        (unmasked) coordinates: row ``2j`` perturbs coordinate
        ``indices[j]`` by ``+step``, row ``2j + 1`` by ``-step``.
    """
    parameters = np.asarray(parameters, dtype=float)
    indices = (
        np.flatnonzero(np.asarray(mask, dtype=bool))
        if mask is not None
        else np.arange(parameters.size)
    )
    stack = np.tile(parameters, (2 * indices.size, 1))
    rows = np.arange(indices.size)
    stack[2 * rows, indices] += step
    stack[2 * rows + 1, indices] -= step
    return stack, indices


def finite_difference_gradient_batch(
    objective_batch: Callable[[np.ndarray], np.ndarray],
    parameters: np.ndarray,
    step: float = 1e-5,
    mask: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Central finite-difference gradient from ONE batched objective call.

    Numerically equivalent to :func:`finite_difference_gradient` but asks the
    objective for all ``2M`` perturbed parameter vectors at once, which lets
    a vectorised likelihood (e.g. the CPE's stacked Eq. (5) engine) amortise
    every per-evaluation invariant across the whole gradient.

    Parameters
    ----------
    objective_batch:
        Callable mapping a ``(batch, P)`` parameter matrix to a ``(batch,)``
        vector of objective values.
    parameters, step, mask:
        As in :func:`finite_difference_gradient`.
    """
    parameters = np.asarray(parameters, dtype=float)
    gradient = np.zeros_like(parameters)
    stack, indices = perturbation_stack(parameters, step=step, mask=mask)
    if indices.size == 0:
        return gradient
    values = np.asarray(objective_batch(stack), dtype=float)
    if values.shape != (stack.shape[0],):
        raise ValueError(
            f"objective_batch must return shape ({stack.shape[0]},), got {values.shape}"
        )
    gradient[indices] = (values[0::2] - values[1::2]) / (2.0 * step)
    return gradient


def batch_gradient(
    objective_batch: Callable[[np.ndarray], np.ndarray],
    step: float = 1e-5,
    mask: Optional[np.ndarray] = None,
) -> Callable[[np.ndarray], np.ndarray]:
    """A ``gradient`` hook for :func:`gradient_descent` backed by a batched objective."""

    def gradient(parameters: np.ndarray) -> np.ndarray:
        return finite_difference_gradient_batch(objective_batch, parameters, step=step, mask=mask)

    return gradient


def gradient_descent(
    objective: Callable[[np.ndarray], float],
    initial: np.ndarray,
    learning_rates: Sequence[float] | float,
    n_epochs: int,
    gradient: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    project: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    mask: Optional[np.ndarray] = None,
    fd_step: float = 1e-5,
    tolerance: float = 1e-10,
    backtracking: bool = True,
    max_backtracks: int = 8,
) -> GradientDescentResult:
    """Minimise ``objective`` by (projected) gradient descent.

    Parameters
    ----------
    objective:
        Scalar function to minimise (the CPE uses the *negative*
        log-likelihood so that Eq. 6-7's ascent becomes a descent).
    initial:
        Starting parameter vector.
    learning_rates:
        Either a scalar or a per-coordinate vector of step sizes; the paper
        uses different rates for ``mu`` (1e-7) and ``Sigma`` (1e-4), which a
        per-coordinate vector expresses directly.
    n_epochs:
        Maximum number of update steps (the paper's ``G``).
    gradient:
        Optional analytic gradient; defaults to central finite differences.
    project:
        Optional projection applied after every step (e.g. clamping standard
        deviations positive and correlations to ``(-1, 1)``).
    mask:
        Optional boolean vector of trainable coordinates.
    tolerance:
        Early-stopping threshold on the objective improvement.
    backtracking:
        When ``True`` (default) a step that would *increase* the objective is
        retried with successively halved step sizes (up to
        ``max_backtracks``); if no improvement is found the descent stops.
        This keeps the CPE likelihood update monotone and prevents the
        parameter blow-ups a fixed step size can cause on steep likelihood
        surfaces.
    """
    parameters = np.asarray(initial, dtype=float).copy()
    rates = np.asarray(learning_rates, dtype=float)
    if rates.ndim == 0:
        rates = np.full_like(parameters, float(rates))
    if rates.shape != parameters.shape:
        raise ValueError("learning_rates must be scalar or match the parameter shape")

    history: List[float] = [float(objective(parameters))]
    converged = False
    iterations = 0
    for iterations in range(1, n_epochs + 1):
        grad = (
            gradient(parameters)
            if gradient is not None
            else finite_difference_gradient(objective, parameters, step=fd_step, mask=mask)
        )
        if mask is not None:
            grad = np.where(mask, grad, 0.0)
        if not np.all(np.isfinite(grad)):
            converged = False
            break

        previous_value = history[-1]
        scale = 1.0
        candidate = parameters
        current = previous_value
        accepted = False
        for _ in range(max_backtracks if backtracking else 1):
            candidate = parameters - scale * rates * grad
            if project is not None:
                candidate = project(candidate)
            current = float(objective(candidate))
            if not backtracking or current <= previous_value:
                accepted = True
                break
            scale *= 0.5
        if not accepted:
            converged = True
            break

        parameters = candidate
        history.append(current)
        if abs(previous_value - current) < tolerance:
            converged = True
            break
    return GradientDescentResult(
        parameters=parameters,
        objective=history[-1],
        objective_history=history,
        n_iterations=iterations,
        converged=converged,
    )


def minimize_scalar_bounded(
    objective: Callable[[float], float],
    lower: float,
    upper: float,
    n_grid: int = 25,
) -> float:
    """Minimise a scalar objective on ``[lower, upper]``.

    A coarse grid search seeds a bounded Brent refinement, which makes the
    routine robust to the mildly multi-modal least-squares objectives that
    arise when a worker's prior-domain accuracies disagree strongly with the
    learning-task feedback.
    """
    if upper <= lower:
        raise ValueError("upper must exceed lower")
    grid = np.linspace(lower, upper, n_grid)
    values = np.array([objective(float(x)) for x in grid])
    best = float(grid[int(np.argmin(values))])
    span = (upper - lower) / max(n_grid - 1, 1)
    bracket_lower = max(lower, best - 2.0 * span)
    bracket_upper = min(upper, best + 2.0 * span)
    result = spo.minimize_scalar(objective, bounds=(bracket_lower, bracket_upper), method="bounded")
    if result.success and result.fun <= values.min():
        return float(result.x)
    return best


__all__ = [
    "GradientDescentResult",
    "batch_gradient",
    "finite_difference_gradient",
    "finite_difference_gradient_batch",
    "gradient_descent",
    "minimize_scalar_bounded",
    "perturbation_stack",
]
