"""Truncated normal sampling and moments.

Synthetic worker populations (Section V-A of the paper) are drawn from a
multivariate normal *truncated to the unit hypercube* ``(0, 1)^d`` because
the coordinates are annotation accuracies.  This module provides:

* rejection sampling from a truncated multivariate normal, with a clipping
  fallback when the acceptance region is tiny;
* univariate truncated-normal sampling and first moments, which the CPE
  estimator uses to turn a conditional normal over the target-domain
  accuracy into a prediction inside ``(0, 1)`` (Eq. 8).
"""

from __future__ import annotations


import numpy as np
from scipy import stats as sps

from repro.stats.mvn import MultivariateNormalModel, nearest_positive_definite
from repro.stats.rng import SeedLike, as_generator

_DEFAULT_MAX_REJECTION_ROUNDS = 200


def sample_truncated_normal(
    mean: float,
    std: float,
    lower: float,
    upper: float,
    size: int,
    rng: SeedLike = None,
) -> np.ndarray:
    """Sample from a univariate normal truncated to ``[lower, upper]``."""
    if upper <= lower:
        raise ValueError(f"upper ({upper}) must exceed lower ({lower})")
    if std <= 0:
        raise ValueError(f"std must be positive, got {std}")
    generator = as_generator(rng)
    a = (lower - mean) / std
    b = (upper - mean) / std
    u = generator.uniform(size=size)
    cdf_a = sps.norm.cdf(a)
    cdf_b = sps.norm.cdf(b)
    # Guard against a degenerate window (mean far outside the bounds).
    if cdf_b - cdf_a < 1e-12:
        return np.clip(generator.normal(mean, std, size=size), lower, upper)
    samples = sps.norm.ppf(cdf_a + u * (cdf_b - cdf_a))
    return mean + std * samples


def truncated_normal_mean(mean: float, std: float, lower: float, upper: float) -> float:
    """First moment of a normal truncated to ``[lower, upper]``.

    This is the value the CPE estimator reports as the predicted
    target-domain accuracy: the conditional normal of Eq. (8) restricted to
    the valid accuracy range.
    """
    if std <= 0:
        return float(np.clip(mean, lower, upper))
    a = (lower - mean) / std
    b = (upper - mean) / std
    denom = sps.norm.cdf(b) - sps.norm.cdf(a)
    if denom < 1e-12:
        return float(np.clip(mean, lower, upper))
    numer = sps.norm.pdf(a) - sps.norm.pdf(b)
    return float(mean + std * numer / denom)


def truncated_normal_variance(mean: float, std: float, lower: float, upper: float) -> float:
    """Variance of a normal truncated to ``[lower, upper]``."""
    if std <= 0:
        return 0.0
    a = (lower - mean) / std
    b = (upper - mean) / std
    denom = sps.norm.cdf(b) - sps.norm.cdf(a)
    if denom < 1e-12:
        return 0.0
    phi_a, phi_b = sps.norm.pdf(a), sps.norm.pdf(b)
    term1 = (a * phi_a - b * phi_b) / denom if np.isfinite(a) and np.isfinite(b) else 0.0
    term2 = ((phi_a - phi_b) / denom) ** 2
    return float(std**2 * (1.0 + term1 - term2))


def sample_truncated_mvn(
    model: MultivariateNormalModel,
    size: int,
    rng: SeedLike = None,
    lower: float = 0.0,
    upper: float = 1.0,
    max_rejection_rounds: int = _DEFAULT_MAX_REJECTION_ROUNDS,
) -> np.ndarray:
    """Sample from a multivariate normal truncated to a hypercube.

    Rejection sampling is exact; when the acceptance probability is very low
    (which can happen for extreme synthetic configurations) the remaining
    samples fall back to coordinate-wise clipping so dataset generation never
    stalls.  The fallback is logged in the returned array only implicitly —
    callers that care can verify all coordinates are interior points.

    Parameters
    ----------
    model:
        The (untruncated) multivariate normal to truncate.
    size:
        Number of samples to return.
    lower, upper:
        Hypercube bounds applied to every coordinate.
    """
    if size < 0:
        raise ValueError(f"size must be non-negative, got {size}")
    generator = as_generator(rng)
    if size == 0:
        return np.empty((0, model.dimension))

    covariance = nearest_positive_definite(model.covariance)
    accepted = np.empty((0, model.dimension))
    remaining = size
    for _ in range(max_rejection_rounds):
        if remaining <= 0:
            break
        batch = generator.multivariate_normal(model.mean, covariance, size=max(remaining * 2, 16))
        in_box = np.all((batch > lower) & (batch < upper), axis=1)
        good = batch[in_box]
        if good.shape[0] > 0:
            take = min(remaining, good.shape[0])
            accepted = np.vstack([accepted, good[:take]])
            remaining -= take
    if remaining > 0:
        # Acceptance region too small: clip the leftover draws.
        batch = generator.multivariate_normal(model.mean, covariance, size=remaining)
        eps = 1e-6
        accepted = np.vstack([accepted, np.clip(batch, lower + eps, upper - eps)])
    return accepted[:size]


__all__ = [
    "sample_truncated_normal",
    "sample_truncated_mvn",
    "truncated_normal_mean",
    "truncated_normal_variance",
]
