"""Fixed quadrature rules on the unit interval.

The CPE log-likelihood (Eq. 5) contains, per worker, an integral over the
unobserved target-domain accuracy:

    integral_0^1  h^C (1 - h)^X  N(h; mu_bar, sigma_bar)  dh

Gauss--Legendre quadrature with a modest number of nodes evaluates this to
high accuracy because the integrand is a smooth, unimodal product of a Beta
kernel and a Gaussian.  The rule is computed once and cached; likelihood
evaluations are then pure vectorised numpy over (workers x nodes) grids.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property, lru_cache
from typing import Callable

import numpy as np

DEFAULT_NODES = 64

#: Clip applied before taking logs of node positions; 1e-300 keeps the log
#: finite at an (impossible for Gauss--Legendre) endpoint node while leaving
#: every interior node untouched.
LOG_CLIP = 1e-300


@dataclass(frozen=True)
class GaussLegendreRule:
    """A fixed Gauss--Legendre rule mapped onto ``[lower, upper]``.

    Instances returned by :func:`unit_interval_rule` are cached and shared,
    so the log-space tables below are computed once per ``(n_nodes, lower,
    upper)`` configuration and reused by every likelihood evaluation.
    """

    nodes: np.ndarray
    weights: np.ndarray
    lower: float
    upper: float

    @cached_property
    def log_nodes(self) -> np.ndarray:
        """``log(nodes)`` — the ``log h`` table of the Eq. (5) integrand."""
        return np.log(np.clip(self.nodes, LOG_CLIP, None))

    @cached_property
    def log_one_minus_nodes(self) -> np.ndarray:
        """``log(1 - nodes)`` — the ``log(1 - h)`` table of the Eq. (5) integrand."""
        return np.log(np.clip(1.0 - self.nodes, LOG_CLIP, None))

    @cached_property
    def log_weights(self) -> np.ndarray:
        """``log(weights)`` for assembling quadrature sums in log space."""
        return np.log(self.weights)

    def integrate(self, values: np.ndarray) -> np.ndarray:
        """Integrate function values evaluated at :attr:`nodes`.

        ``values`` may be 1-D (single integrand) or 2-D with shape
        ``(batch, n_nodes)`` for a batch of integrands; the node axis must be
        the last one.
        """
        values = np.asarray(values, dtype=float)
        return values @ self.weights

    def integrate_function(self, func: Callable[[np.ndarray], np.ndarray]) -> float:
        """Integrate a callable ``f(x)`` over ``[lower, upper]``."""
        return float(self.integrate(func(self.nodes)))


@lru_cache(maxsize=32)
def _legendre_rule(n_nodes: int, lower: float, upper: float) -> GaussLegendreRule:
    nodes, weights = np.polynomial.legendre.leggauss(n_nodes)
    half_width = 0.5 * (upper - lower)
    midpoint = 0.5 * (upper + lower)
    return GaussLegendreRule(
        nodes=midpoint + half_width * nodes,
        weights=half_width * weights,
        lower=lower,
        upper=upper,
    )


def unit_interval_rule(n_nodes: int = DEFAULT_NODES, lower: float = 0.0, upper: float = 1.0) -> GaussLegendreRule:
    """Return a cached Gauss--Legendre rule on ``[lower, upper]``.

    The same :class:`GaussLegendreRule` instance is returned for repeated
    calls with the same arguments, which shares its lazily computed
    log-space tables across all users (treat the arrays as read-only).

    Parameters
    ----------
    n_nodes:
        Number of quadrature nodes; 64 gives ~1e-12 relative error on the
        Beta-times-Gaussian integrands that arise in Eq. (5).
    """
    if n_nodes < 2:
        raise ValueError(f"n_nodes must be at least 2, got {n_nodes}")
    if upper <= lower:
        raise ValueError("upper must exceed lower")
    return _legendre_rule(int(n_nodes), float(lower), float(upper))


__all__ = ["GaussLegendreRule", "unit_interval_rule", "DEFAULT_NODES", "LOG_CLIP"]
