"""Fixed quadrature rules on the unit interval.

The CPE log-likelihood (Eq. 5) contains, per worker, an integral over the
unobserved target-domain accuracy:

    integral_0^1  h^C (1 - h)^X  N(h; mu_bar, sigma_bar)  dh

Gauss--Legendre quadrature with a modest number of nodes evaluates this to
high accuracy because the integrand is a smooth, unimodal product of a Beta
kernel and a Gaussian.  The rule is computed once and cached; likelihood
evaluations are then pure vectorised numpy over (workers x nodes) grids.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Tuple

import numpy as np

DEFAULT_NODES = 64


@dataclass(frozen=True)
class GaussLegendreRule:
    """A fixed Gauss--Legendre rule mapped onto ``[lower, upper]``."""

    nodes: np.ndarray
    weights: np.ndarray
    lower: float
    upper: float

    def integrate(self, values: np.ndarray) -> np.ndarray:
        """Integrate function values evaluated at :attr:`nodes`.

        ``values`` may be 1-D (single integrand) or 2-D with shape
        ``(batch, n_nodes)`` for a batch of integrands; the node axis must be
        the last one.
        """
        values = np.asarray(values, dtype=float)
        return values @ self.weights

    def integrate_function(self, func: Callable[[np.ndarray], np.ndarray]) -> float:
        """Integrate a callable ``f(x)`` over ``[lower, upper]``."""
        return float(self.integrate(func(self.nodes)))


@lru_cache(maxsize=32)
def _legendre_rule(n_nodes: int, lower: float, upper: float) -> Tuple[Tuple[float, ...], Tuple[float, ...]]:
    nodes, weights = np.polynomial.legendre.leggauss(n_nodes)
    half_width = 0.5 * (upper - lower)
    midpoint = 0.5 * (upper + lower)
    mapped_nodes = midpoint + half_width * nodes
    mapped_weights = half_width * weights
    return tuple(mapped_nodes.tolist()), tuple(mapped_weights.tolist())


def unit_interval_rule(n_nodes: int = DEFAULT_NODES, lower: float = 0.0, upper: float = 1.0) -> GaussLegendreRule:
    """Return a cached Gauss--Legendre rule on ``[lower, upper]``.

    Parameters
    ----------
    n_nodes:
        Number of quadrature nodes; 64 gives ~1e-12 relative error on the
        Beta-times-Gaussian integrands that arise in Eq. (5).
    """
    if n_nodes < 2:
        raise ValueError(f"n_nodes must be at least 2, got {n_nodes}")
    if upper <= lower:
        raise ValueError("upper must exceed lower")
    nodes, weights = _legendre_rule(int(n_nodes), float(lower), float(upper))
    return GaussLegendreRule(
        nodes=np.asarray(nodes), weights=np.asarray(weights), lower=float(lower), upper=float(upper)
    )


__all__ = ["GaussLegendreRule", "unit_interval_rule", "DEFAULT_NODES"]
