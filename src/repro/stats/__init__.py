"""Statistical substrate used throughout the reproduction.

The cross-domain worker-selection algorithm of the paper rests on a handful
of numerical building blocks:

* a multivariate normal model over per-domain worker accuracies with a
  stable ``(sigma, rho)`` parameterisation and conditional-distribution
  machinery (:mod:`repro.stats.mvn`);
* truncated multivariate / univariate normal sampling for synthetic worker
  generation (:mod:`repro.stats.truncated`);
* fixed Gauss--Legendre quadrature on ``(0, 1)`` for the marginal likelihood
  integral of Eq. (5) (:mod:`repro.stats.quadrature`);
* finite-difference gradient descent and bounded scalar minimisation used by
  the CPE / LGE estimators (:mod:`repro.stats.optimize`);
* correlation and bootstrap utilities for the dataset-consistency analysis
  of Table IV (:mod:`repro.stats.correlation`);
* seeded random-generator plumbing (:mod:`repro.stats.rng`).
"""

from repro.stats.correlation import (
    bootstrap_mean_ci,
    bucket_accuracies,
    bucketed_pearson,
    pearson_correlation,
)
from repro.stats.mvn import MultivariateNormalModel, nearest_positive_definite
from repro.stats.optimize import (
    GradientDescentResult,
    finite_difference_gradient,
    gradient_descent,
    minimize_scalar_bounded,
)
from repro.stats.quadrature import GaussLegendreRule, unit_interval_rule
from repro.stats.rng import as_generator, spawn_generators
from repro.stats.truncated import (
    sample_truncated_mvn,
    sample_truncated_normal,
    truncated_normal_mean,
)

__all__ = [
    "MultivariateNormalModel",
    "nearest_positive_definite",
    "GaussLegendreRule",
    "unit_interval_rule",
    "GradientDescentResult",
    "finite_difference_gradient",
    "gradient_descent",
    "minimize_scalar_bounded",
    "sample_truncated_mvn",
    "sample_truncated_normal",
    "truncated_normal_mean",
    "pearson_correlation",
    "bucket_accuracies",
    "bucketed_pearson",
    "bootstrap_mean_ci",
    "as_generator",
    "spawn_generators",
]
