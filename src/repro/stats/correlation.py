"""Correlation and resampling utilities.

Used by the dataset-consistency analysis (Table IV): the paper buckets
workers' target-domain accuracies, computes the Pearson correlation between
the bucket histograms of RW-1 and each synthetic dataset, and requires the
correlation to exceed 0.75.  The experiment harness also reports bootstrap
confidence intervals on per-method mean accuracies so that table cells carry
an uncertainty estimate.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.stats.rng import SeedLike, as_generator


def pearson_correlation(x: Sequence[float], y: Sequence[float]) -> float:
    """Pearson correlation coefficient between two equal-length sequences."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape:
        raise ValueError(f"shape mismatch: {x.shape} vs {y.shape}")
    if x.size < 2:
        raise ValueError("need at least two observations")
    x_centred = x - x.mean()
    y_centred = y - y.mean()
    denom = np.sqrt(np.sum(x_centred**2) * np.sum(y_centred**2))
    if denom < 1e-15:
        return 0.0
    return float(np.sum(x_centred * y_centred) / denom)


def bucket_accuracies(
    accuracies: Sequence[float],
    n_buckets: int = 10,
    lower: float = 0.0,
    upper: float = 1.0,
    normalise: bool = True,
) -> np.ndarray:
    """Histogram accuracies into equal-width buckets on ``[lower, upper]``.

    Returns the (optionally normalised) bucket counts used for the
    distributional comparison in Table IV's consistency check.
    """
    if n_buckets < 1:
        raise ValueError("n_buckets must be positive")
    accuracies = np.asarray(accuracies, dtype=float)
    counts, _ = np.histogram(accuracies, bins=n_buckets, range=(lower, upper))
    counts = counts.astype(float)
    if normalise and counts.sum() > 0:
        counts /= counts.sum()
    return counts


def bucketed_pearson(
    reference: Sequence[float],
    candidate: Sequence[float],
    n_buckets: int = 10,
) -> float:
    """Pearson correlation between bucketed accuracy distributions.

    This is the exact statistic the paper reports to validate that the
    synthetic datasets are consistent with RW-1 (all values > 0.75).
    """
    ref_hist = bucket_accuracies(reference, n_buckets=n_buckets)
    cand_hist = bucket_accuracies(candidate, n_buckets=n_buckets)
    return pearson_correlation(ref_hist, cand_hist)


def bootstrap_mean_ci(
    values: Sequence[float],
    n_resamples: int = 1000,
    confidence: float = 0.95,
    rng: SeedLike = None,
) -> Tuple[float, float, float]:
    """Bootstrap confidence interval for the mean of ``values``.

    Returns ``(mean, ci_lower, ci_upper)``.
    """
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ValueError("values must be non-empty")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must lie in (0, 1)")
    generator = as_generator(rng)
    mean = float(values.mean())
    if values.size == 1:
        return mean, mean, mean
    resample_means = np.array(
        [values[generator.integers(0, values.size, size=values.size)].mean() for _ in range(n_resamples)]
    )
    alpha = (1.0 - confidence) / 2.0
    lower, upper = np.quantile(resample_means, [alpha, 1.0 - alpha])
    return mean, float(lower), float(upper)


__all__ = [
    "pearson_correlation",
    "bucket_accuracies",
    "bucketed_pearson",
    "bootstrap_mean_ci",
]
