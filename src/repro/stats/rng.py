"""Random-number-generator plumbing.

Every stochastic component of the library accepts either an integer seed, a
:class:`numpy.random.Generator`, or ``None``.  Centralising the coercion in
one helper keeps experiment runs reproducible and avoids the classic bug of
mixing the legacy global ``numpy.random`` state with new-style generators.
"""

from __future__ import annotations

import zlib
from typing import List, Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an integer seed, a ``SeedSequence`` or an
        existing ``Generator`` (returned unchanged).

    Returns
    -------
    numpy.random.Generator
        A generator suitable for all downstream sampling.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_generators(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Create ``count`` statistically independent child generators.

    Used by the experiment harness to give every repetition / worker its own
    stream so that changing the number of repetitions does not perturb the
    earlier ones.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive children from the generator's bit stream.
        seeds = seed.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in seeds]
    sequence = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]


def _stable_token_hash(token: object) -> int:
    """Process-independent 32-bit hash of an arbitrary token.

    Python's built-in ``hash`` is randomised per process for strings, which
    would make dataset draws irreproducible across runs; a CRC of the
    token's repr is stable everywhere.
    """
    return zlib.crc32(repr(token).encode("utf-8")) & 0xFFFFFFFF


def derive_seed(seed: SeedLike, *tokens: object) -> int:
    """Derive a deterministic integer seed from a base seed and string tokens.

    The experiment runners use this to key repetitions by ``(dataset, method,
    repetition)`` so that every cell of a results table is independently
    reproducible — across processes and platforms.
    """
    base = seed if isinstance(seed, int) else (0 if seed is None else _stable_token_hash(seed))
    mixed = np.random.SeedSequence([base & 0xFFFFFFFF, *(_stable_token_hash(t) for t in tokens)])
    return int(mixed.generate_state(1)[0])


def work_unit_seed(
    base_seed: SeedLike,
    stream: str,
    *,
    dataset: str,
    repetition: int,
    k: int,
    q: int,
    method: Optional[str] = None,
) -> int:
    """Canonical seed for one random stream of an experiment work unit.

    A work unit is one ``(dataset, method, repetition, k, q)`` cell of the
    comparison grid.  Each cell consumes three independent streams:

    ``"instance"``
        The worker-pool / task-bank draw.  Shared by every method of the
        same ``(dataset, repetition, k, q)`` so the comparison is paired.
    ``"environment"``
        The answer noise of the annotation environment.  Also shared across
        methods (``method`` must be ``None``) — every method faces the same
        golden-question outcomes.
    ``"selector"``
        The method-private exploration stream (``method`` is required).

    Every stream mixes the *full* unit key — including ``k`` and ``q`` — so
    sweep points (Figures 6–7) never reuse each other's randomness, and no
    raw loop index ever reaches a generator.
    """
    if stream == "selector":
        if method is None:
            raise ValueError("the 'selector' stream requires a method name")
    elif stream in ("instance", "environment"):
        if method is not None:
            raise ValueError(f"the {stream!r} stream is shared across methods; method must be None")
    else:
        raise ValueError(f"unknown work-unit stream {stream!r}")
    tokens: List[object] = [dataset]
    if method is not None:
        tokens.append(method)
    tokens.extend([stream, repetition, int(k), int(q)])
    return derive_seed(base_seed, *tokens)


__all__ = ["SeedLike", "as_generator", "spawn_generators", "derive_seed", "work_unit_seed"]
