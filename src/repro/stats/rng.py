"""Random-number-generator plumbing.

Every stochastic component of the library accepts either an integer seed, a
:class:`numpy.random.Generator`, or ``None``.  Centralising the coercion in
one helper keeps experiment runs reproducible and avoids the classic bug of
mixing the legacy global ``numpy.random`` state with new-style generators.
"""

from __future__ import annotations

import zlib
from typing import List, Optional, Sequence, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an integer seed, a ``SeedSequence`` or an
        existing ``Generator`` (returned unchanged).

    Returns
    -------
    numpy.random.Generator
        A generator suitable for all downstream sampling.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_generators(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Create ``count`` statistically independent child generators.

    Used by the experiment harness to give every repetition / worker its own
    stream so that changing the number of repetitions does not perturb the
    earlier ones.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive children from the generator's bit stream.
        seeds = seed.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in seeds]
    sequence = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]


def _stable_token_hash(token: object) -> int:
    """Process-independent 32-bit hash of an arbitrary token.

    Python's built-in ``hash`` is randomised per process for strings, which
    would make dataset draws irreproducible across runs; a CRC of the
    token's repr is stable everywhere.
    """
    return zlib.crc32(repr(token).encode("utf-8")) & 0xFFFFFFFF


def derive_seed(seed: SeedLike, *tokens: object) -> int:
    """Derive a deterministic integer seed from a base seed and string tokens.

    The experiment runners use this to key repetitions by ``(dataset, method,
    repetition)`` so that every cell of a results table is independently
    reproducible — across processes and platforms.
    """
    base = seed if isinstance(seed, int) else (0 if seed is None else _stable_token_hash(seed))
    mixed = np.random.SeedSequence([base & 0xFFFFFFFF, *(_stable_token_hash(t) for t in tokens)])
    return int(mixed.generate_state(1)[0])


# --------------------------------------------------------------------- #
# Counter-based streams (the answer-simulation hot path)
# --------------------------------------------------------------------- #
# The answer engines need one independent uniform stream per (worker, round)
# so simulated answers are deterministic, order-independent and identical at
# any process count.  Creating a ``numpy`` Generator per worker costs ~30us
# each (SeedSequence entropy pooling), which would dominate the vectorized
# round simulation; instead the streams are counter-based: a splitmix64 mix
# of ``(root seed, worker token, round)`` yields a 64-bit stream seed, and
# the ``t``-th uniform of a stream is a pure function of ``(seed, t)``.
# Everything is elementwise, so the scalar (reference) and matrix
# (vectorized) engines produce bit-identical draws.

_MASK64 = (1 << 64) - 1
_GAMMA = 0x9E3779B97F4A7C15  # splitmix64 increment (odd, near 2^64/phi)


def _mix64(z: np.ndarray) -> np.ndarray:
    """The splitmix64 finalizer on ``uint64`` arrays (wraps silently)."""
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return z ^ (z >> np.uint64(31))


def stream_seeds(base_seed: int, token_hashes: object, *salts: int) -> np.ndarray:
    """Vectorized counterpart of :func:`derive_seed` for hot paths.

    Derives one 64-bit stream seed per entry of ``token_hashes`` (e.g. one
    per worker) from an integer base seed plus integer salts (e.g. the round
    index).  Pure function of its inputs — no generator state — so streams
    are independent of evaluation order, process count and pool composition.
    """
    state = np.asarray([base_seed & _MASK64], dtype=np.uint64)
    for salt in salts:
        state = _mix64(state + np.asarray([salt & _MASK64], dtype=np.uint64) + np.uint64(_GAMMA))
    tokens = np.atleast_1d(np.asarray(token_hashes, dtype=np.uint64))
    return _mix64(state + _mix64(tokens + np.uint64(_GAMMA)) + np.uint64(_GAMMA))


def token_hashes(tokens: Sequence[object]) -> np.ndarray:
    """Stable 32-bit hashes of arbitrary tokens as a ``uint64`` array."""
    return np.asarray([_stable_token_hash(token) for token in tokens], dtype=np.uint64)


def counter_uniforms(seeds: object, n_draws: int, offset: int = 0) -> np.ndarray:
    """Uniform(0, 1) draws ``offset .. offset + n_draws - 1`` of each stream.

    Returns a ``(len(seeds), n_draws)`` float64 matrix whose row ``i``
    contains draws ``offset``-th through ``(offset + n_draws - 1)``-th of the
    stream seeded by ``seeds[i]``.  Because each draw is a pure function of
    ``(seed, index)``, requesting a stream in batches (the reference answer
    engine) or as one block (the vectorized engine) yields identical values.
    """
    if n_draws < 0:
        raise ValueError(f"n_draws must be non-negative, got {n_draws}")
    if offset < 0:
        raise ValueError(f"offset must be non-negative, got {offset}")
    seed_column = np.atleast_1d(np.asarray(seeds, dtype=np.uint64))[:, None]
    indices = np.arange(offset + 1, offset + n_draws + 1, dtype=np.uint64) * np.uint64(_GAMMA)
    bits = _mix64(seed_column + indices[None, :])
    # Top 53 bits -> uniform in [0, 1), the standard double construction.
    return (bits >> np.uint64(11)).astype(np.float64) * (2.0**-53)


def work_unit_seed(
    base_seed: SeedLike,
    stream: str,
    *,
    dataset: str,
    repetition: int,
    k: int,
    q: int,
    method: Optional[str] = None,
) -> int:
    """Canonical seed for one random stream of an experiment work unit.

    A work unit is one ``(dataset, method, repetition, k, q)`` cell of the
    comparison grid.  Each cell consumes three independent streams:

    ``"instance"``
        The worker-pool / task-bank draw.  Shared by every method of the
        same ``(dataset, repetition, k, q)`` so the comparison is paired.
    ``"environment"``
        The answer noise of the annotation environment.  Also shared across
        methods (``method`` must be ``None``) — every method faces the same
        golden-question outcomes.
    ``"selector"``
        The method-private exploration stream (``method`` is required).

    Every stream mixes the *full* unit key — including ``k`` and ``q`` — so
    sweep points (Figures 6–7) never reuse each other's randomness, and no
    raw loop index ever reaches a generator.
    """
    if stream == "selector":
        if method is None:
            raise ValueError("the 'selector' stream requires a method name")
    elif stream in ("instance", "environment"):
        if method is not None:
            raise ValueError(f"the {stream!r} stream is shared across methods; method must be None")
    else:
        raise ValueError(f"unknown work-unit stream {stream!r}")
    tokens: List[object] = [dataset]
    if method is not None:
        tokens.append(method)
    tokens.extend([stream, repetition, int(k), int(q)])
    return derive_seed(base_seed, *tokens)


__all__ = [
    "SeedLike",
    "as_generator",
    "spawn_generators",
    "derive_seed",
    "work_unit_seed",
    "stream_seeds",
    "token_hashes",
    "counter_uniforms",
]
