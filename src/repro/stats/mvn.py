"""Multivariate normal model over per-domain worker accuracies.

The paper models each worker's accuracy vector over the ``D`` prior domains
plus the target domain as a draw from a ``(D+1)``-dimensional multivariate
normal ``N(mu, Sigma)`` (Eq. 1-2).  The CPE estimator needs three
operations on this model:

* build a valid covariance matrix from interpretable parameters
  (standard deviations and pairwise correlations);
* compute the conditional distribution of the target-domain accuracy given a
  worker's prior-domain profile (the ``mu_bar`` / ``Sigma_bar`` of Eq. 5);
* pack and unpack the free parameters into a flat vector so that the
  gradient-descent MLE of Eq. (6)-(7) can operate on it.

The class below keeps the canonical representation as ``(mu, sigma, rho)``
rather than a raw covariance so every gradient step yields a well-formed
(symmetric, unit-diagonal-correlation) model; a positive-definite projection
is applied when correlations drift towards an invalid configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

_MIN_SIGMA = 1e-4
_MAX_ABS_RHO = 0.999
_PD_EPS = 1e-8
_SOLVE_JITTER = 1e-8


def _robust_solve(matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve ``matrix @ x = rhs`` with a pseudo-inverse fallback.

    Gradient perturbations can push a conditioning sub-covariance to the
    edge of singularity; the pseudo-inverse keeps the likelihood evaluation
    finite there instead of aborting the whole update.
    """
    try:
        return np.linalg.solve(matrix, rhs)
    except np.linalg.LinAlgError:
        return np.linalg.pinv(matrix) @ rhs


def nearest_positive_definite(matrix: np.ndarray, eps: float = _PD_EPS) -> np.ndarray:
    """Project a symmetric matrix onto the positive-definite cone.

    Eigenvalues below ``eps`` are clipped.  The input is symmetrised first so
    small numerical asymmetries from finite-difference updates do not
    accumulate.
    """
    sym = 0.5 * (matrix + matrix.T)
    eigenvalues, eigenvectors = np.linalg.eigh(sym)
    clipped = np.clip(eigenvalues, eps, None)
    return (eigenvectors * clipped) @ eigenvectors.T


def correlation_from_covariance(covariance: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Split a covariance matrix into standard deviations and correlations."""
    sigma = np.sqrt(np.clip(np.diag(covariance), _MIN_SIGMA**2, None))
    outer = np.outer(sigma, sigma)
    rho = covariance / outer
    np.fill_diagonal(rho, 1.0)
    rho = np.clip(rho, -_MAX_ABS_RHO, _MAX_ABS_RHO)
    np.fill_diagonal(rho, 1.0)
    return sigma, rho


@dataclass
class MultivariateNormalModel:
    """A ``(sigma, rho)``-parameterised multivariate normal distribution.

    Attributes
    ----------
    mean:
        Length-``d`` mean vector (per-domain mean accuracy).
    sigma:
        Length-``d`` vector of standard deviations.
    rho:
        ``d x d`` correlation matrix with unit diagonal.
    """

    mean: np.ndarray
    sigma: np.ndarray
    rho: np.ndarray

    def __post_init__(self) -> None:
        self.mean = np.asarray(self.mean, dtype=float).copy()
        self.sigma = np.asarray(self.sigma, dtype=float).copy()
        self.rho = np.asarray(self.rho, dtype=float).copy()
        d = self.mean.shape[0]
        if self.mean.ndim != 1:
            raise ValueError("mean must be a 1-D vector")
        if self.sigma.shape != (d,):
            raise ValueError(f"sigma must have shape ({d},), got {self.sigma.shape}")
        if self.rho.shape != (d, d):
            raise ValueError(f"rho must have shape ({d}, {d}), got {self.rho.shape}")
        self.sigma = np.clip(self.sigma, _MIN_SIGMA, None)
        self._normalise_rho()

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_covariance(cls, mean: Sequence[float], covariance: np.ndarray) -> "MultivariateNormalModel":
        """Build a model from a raw covariance matrix (Eq. 2 form)."""
        covariance = nearest_positive_definite(np.asarray(covariance, dtype=float))
        sigma, rho = correlation_from_covariance(covariance)
        return cls(mean=np.asarray(mean, dtype=float), sigma=sigma, rho=rho)

    @classmethod
    def from_moments(
        cls,
        means: Sequence[float],
        stds: Sequence[float],
        correlations: Optional[np.ndarray] = None,
    ) -> "MultivariateNormalModel":
        """Build a model from per-domain means/stds and an optional correlation matrix.

        When ``correlations`` is ``None`` the domains start uncorrelated, which
        matches the paper's "correlation is not well-known before training"
        premise; the CPE gradient updates then learn the correlations.
        """
        means = np.asarray(means, dtype=float)
        stds = np.asarray(stds, dtype=float)
        if correlations is None:
            correlations = np.eye(means.shape[0])
        return cls(mean=means, sigma=stds, rho=np.asarray(correlations, dtype=float))

    def copy(self) -> "MultivariateNormalModel":
        return MultivariateNormalModel(self.mean.copy(), self.sigma.copy(), self.rho.copy())

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def dimension(self) -> int:
        """Number of modelled domains (``D + 1`` in the paper's notation)."""
        return self.mean.shape[0]

    @property
    def covariance(self) -> np.ndarray:
        """The covariance matrix ``Sigma`` of Eq. (2)."""
        outer = np.outer(self.sigma, self.sigma)
        return self.rho * outer

    def _normalise_rho(self) -> None:
        """Clamp correlations and re-project to a valid correlation matrix.

        The projection operates on the correlation matrix itself (eigenvalue
        clipping followed by re-normalising the diagonal to one), so the
        configured standard deviations are preserved exactly — important for
        synthetic dataset generation, where uniform-random correlations are
        frequently inconsistent but the per-domain moments must match
        Table IV.
        """
        self.rho = 0.5 * (self.rho + self.rho.T)
        self.rho = np.clip(self.rho, -_MAX_ABS_RHO, _MAX_ABS_RHO)
        np.fill_diagonal(self.rho, 1.0)
        try:
            np.linalg.cholesky(self.rho + _PD_EPS * np.eye(self.dimension))
        except np.linalg.LinAlgError:
            projected = nearest_positive_definite(self.rho, eps=1e-4)
            scale = np.sqrt(np.clip(np.diag(projected), _MIN_SIGMA**2, None))
            projected = projected / np.outer(scale, scale)
            projected = np.clip(projected, -_MAX_ABS_RHO, _MAX_ABS_RHO)
            np.fill_diagonal(projected, 1.0)
            self.rho = projected

    # ------------------------------------------------------------------ #
    # Conditional distribution (mu_bar, Sigma_bar of Eq. 5)
    # ------------------------------------------------------------------ #
    def conditional(
        self,
        observed_values: np.ndarray,
        observed_indices: Sequence[int],
        target_index: int,
    ) -> Tuple[float, float]:
        """Conditional mean and variance of one coordinate given others.

        Parameters
        ----------
        observed_values:
            Values of the observed coordinates (a worker's prior-domain
            accuracies ``h_i``).
        observed_indices:
            Indices of the observed coordinates inside the model.
        target_index:
            Index of the coordinate to predict (the target domain).

        Returns
        -------
        (mean, variance):
            Parameters of the univariate conditional normal.
        """
        observed_values = np.asarray(observed_values, dtype=float)
        observed_indices = list(observed_indices)
        if target_index in observed_indices:
            raise ValueError("target_index must not be among observed_indices")
        if len(observed_values) != len(observed_indices):
            raise ValueError("observed_values and observed_indices must have equal length")

        cov = self.covariance
        if not observed_indices:
            return float(self.mean[target_index]), float(cov[target_index, target_index])

        obs = np.asarray(observed_indices, dtype=int)
        sigma_oo = cov[np.ix_(obs, obs)]
        sigma_to = cov[target_index, obs]
        sigma_tt = cov[target_index, target_index]
        mu_o = self.mean[obs]
        mu_t = self.mean[target_index]

        jittered = sigma_oo + _SOLVE_JITTER * np.eye(len(obs))
        solve = _robust_solve(jittered, observed_values - mu_o)
        cond_mean = mu_t + float(sigma_to @ solve)
        weights = _robust_solve(jittered, sigma_to)
        cond_var = float(sigma_tt - sigma_to @ weights)
        cond_var = max(cond_var, _MIN_SIGMA**2)
        return cond_mean, cond_var

    def conditional_batch(
        self,
        observed_matrix: np.ndarray,
        observed_indices: Sequence[int],
        target_index: int,
    ) -> Tuple[np.ndarray, float]:
        """Vectorised :meth:`conditional` for a batch of workers.

        All workers must share the same set of observed domains (the common
        case); the conditional variance is then identical for every worker.

        Returns
        -------
        (means, variance):
            ``means`` has one entry per row of ``observed_matrix``.
        """
        observed_matrix = np.atleast_2d(np.asarray(observed_matrix, dtype=float))
        obs = np.asarray(list(observed_indices), dtype=int)
        if obs.size == 0:
            means = np.full(observed_matrix.shape[0], self.mean[target_index])
            return means, float(self.covariance[target_index, target_index])

        cov = self.covariance
        sigma_oo = cov[np.ix_(obs, obs)] + _SOLVE_JITTER * np.eye(obs.size)
        sigma_to = cov[target_index, obs]
        sigma_tt = cov[target_index, target_index]
        weights = _robust_solve(sigma_oo, sigma_to)
        cond_means = self.mean[target_index] + (observed_matrix - self.mean[obs]) @ weights
        cond_var = float(sigma_tt - sigma_to @ weights)
        return cond_means, max(cond_var, _MIN_SIGMA**2)

    # ------------------------------------------------------------------ #
    # Densities and sampling
    # ------------------------------------------------------------------ #
    def log_pdf(self, points: np.ndarray) -> np.ndarray:
        """Log density of the full joint at one or more points."""
        points = np.atleast_2d(np.asarray(points, dtype=float))
        cov = nearest_positive_definite(self.covariance)
        d = self.dimension
        chol = np.linalg.cholesky(cov)
        diff = points - self.mean
        solved = np.linalg.solve(chol, diff.T)
        quad = np.sum(solved**2, axis=0)
        log_det = 2.0 * np.sum(np.log(np.diag(chol)))
        return -0.5 * (quad + log_det + d * np.log(2.0 * np.pi))

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``size`` samples from the (untruncated) joint."""
        return rng.multivariate_normal(self.mean, nearest_positive_definite(self.covariance), size=size)

    # ------------------------------------------------------------------ #
    # Parameter vectorisation (for gradient-descent MLE)
    # ------------------------------------------------------------------ #
    def pack_parameters(self) -> np.ndarray:
        """Flatten ``(mu, sigma, upper-triangular rho)`` into one vector."""
        iu = np.triu_indices(self.dimension, k=1)
        return np.concatenate([self.mean, self.sigma, self.rho[iu]])

    @staticmethod
    def parameter_slices(dimension: int) -> Tuple[slice, slice, slice]:
        """Slices of the packed vector for mean, sigma and correlations."""
        n_corr = dimension * (dimension - 1) // 2
        return (
            slice(0, dimension),
            slice(dimension, 2 * dimension),
            slice(2 * dimension, 2 * dimension + n_corr),
        )

    @classmethod
    def unpack_parameters(cls, vector: np.ndarray, dimension: int) -> "MultivariateNormalModel":
        """Inverse of :meth:`pack_parameters` with validity clamping."""
        vector = np.asarray(vector, dtype=float)
        mean_s, sigma_s, rho_s = cls.parameter_slices(dimension)
        mean = vector[mean_s]
        sigma = np.clip(vector[sigma_s], _MIN_SIGMA, None)
        rho = np.eye(dimension)
        iu = np.triu_indices(dimension, k=1)
        rho[iu] = np.clip(vector[rho_s], -_MAX_ABS_RHO, _MAX_ABS_RHO)
        rho = rho + rho.T - np.eye(dimension)
        return cls(mean=mean, sigma=sigma, rho=rho)

    @classmethod
    def unpack_parameter_matrix(
        cls, matrix: np.ndarray, dimension: int
    ) -> List["MultivariateNormalModel"]:
        """Unpack a ``(batch, n_params)`` matrix into one model per row.

        Each row goes through exactly the same clamping and correlation
        projection as :meth:`unpack_parameters`, so a batched likelihood
        evaluation over the rows agrees with evaluating the rows one by one
        (the equivalence the vectorized CPE engine relies on).  The
        per-model work is a few ``d x d`` operations — negligible against
        the ``(batch x workers x nodes)`` likelihood tables downstream.
        """
        matrix = np.atleast_2d(np.asarray(matrix, dtype=float))
        return [cls.unpack_parameters(row, dimension) for row in matrix]

    @classmethod
    def unpack_moment_stack(
        cls, matrix: np.ndarray, dimension: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Batched :meth:`unpack_parameters` straight to ``(means, covariances)``.

        Produces exactly the moments that ``unpack_parameters(row).mean`` /
        ``.covariance`` would, but unpacks the whole ``(B, n_params)`` batch
        with vectorised clamping and a single batched Cholesky validity
        check.  Rows whose correlation matrix fails the check (and would
        therefore be projected by ``_normalise_rho``) fall back to the
        scalar path one by one, so the results are identical in every case.
        """
        matrix = np.atleast_2d(np.asarray(matrix, dtype=float))
        n_batch = matrix.shape[0]
        mean_s, sigma_s, rho_s = cls.parameter_slices(dimension)
        means = matrix[:, mean_s].copy()
        sigmas = np.clip(matrix[:, sigma_s], _MIN_SIGMA, None)
        rhos = np.broadcast_to(np.eye(dimension), (n_batch, dimension, dimension)).copy()
        iu = np.triu_indices(dimension, k=1)
        clipped = np.clip(matrix[:, rho_s], -_MAX_ABS_RHO, _MAX_ABS_RHO)
        rhos[:, iu[0], iu[1]] = clipped
        rhos[:, iu[1], iu[0]] = clipped
        try:
            np.linalg.cholesky(rhos + _PD_EPS * np.eye(dimension))
        except np.linalg.LinAlgError:
            models = [cls.unpack_parameters(row, dimension) for row in matrix]
            return cls.stack_moments(models)
        covariances = rhos * (sigmas[:, :, None] * sigmas[:, None, :])
        return means, covariances

    @staticmethod
    def stack_moments(
        models: Sequence["MultivariateNormalModel"],
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Stack per-model means and covariances into ``(B, d)`` / ``(B, d, d)`` arrays."""
        if not models:
            raise ValueError("at least one model is required")
        means = np.stack([model.mean for model in models])
        covariances = np.stack([model.covariance for model in models])
        return means, covariances

    @staticmethod
    def conditional_batch_stacked(
        means: np.ndarray,
        covariances: np.ndarray,
        observed_matrix: np.ndarray,
        observed_indices: Sequence[int],
        target_index: int,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """:meth:`conditional_batch` for a stack of parameter settings at once.

        Parameters
        ----------
        means, covariances:
            ``(B, d)`` mean vectors and ``(B, d, d)`` covariance matrices —
            one model per finite-difference perturbation (see
            :meth:`stack_moments`).
        observed_matrix:
            ``(R, m)`` prior-domain accuracies of ``R`` workers sharing the
            same observed-domain pattern.
        observed_indices, target_index:
            As in :meth:`conditional_batch`.

        Returns
        -------
        (cond_means, cond_vars):
            ``(B, R)`` conditional means and ``(B,)`` conditional variances
            (one per parameter setting; shared by the workers of a pattern).
        """
        means = np.atleast_2d(np.asarray(means, dtype=float))
        covariances = np.asarray(covariances, dtype=float)
        observed_matrix = np.atleast_2d(np.asarray(observed_matrix, dtype=float))
        obs = np.asarray(list(observed_indices), dtype=int)
        n_batch = means.shape[0]
        n_rows = observed_matrix.shape[0]

        if obs.size == 0:
            cond_means = np.broadcast_to(means[:, target_index, None], (n_batch, n_rows)).copy()
            cond_vars = covariances[:, target_index, target_index].copy()
            return cond_means, np.maximum(cond_vars, _MIN_SIGMA**2)

        sigma_oo = covariances[:, obs[:, None], obs[None, :]] + _SOLVE_JITTER * np.eye(obs.size)
        sigma_to = covariances[:, target_index, :][:, obs]
        sigma_tt = covariances[:, target_index, target_index]
        try:
            weights = np.linalg.solve(sigma_oo, sigma_to[..., None])[..., 0]
        except np.linalg.LinAlgError:
            # Mirror _robust_solve slice by slice: only the singular systems
            # fall back to the pseudo-inverse.
            weights = np.stack(
                [_robust_solve(sigma_oo[index], sigma_to[index]) for index in range(n_batch)]
            )
        centered = observed_matrix[None, :, :] - means[:, None, obs]
        cond_means = means[:, target_index, None] + np.einsum("brm,bm->br", centered, weights)
        cond_vars = sigma_tt - np.einsum("bm,bm->b", sigma_to, weights)
        return cond_means, np.maximum(cond_vars, _MIN_SIGMA**2)

    def with_parameters(self, vector: np.ndarray) -> "MultivariateNormalModel":
        """Return a new model whose parameters are the given packed vector."""
        return self.unpack_parameters(vector, self.dimension)

    # ------------------------------------------------------------------ #
    # Marginalisation helpers for workers with missing prior domains
    # ------------------------------------------------------------------ #
    def marginal(self, indices: Sequence[int]) -> "MultivariateNormalModel":
        """Marginal model over a subset of domains.

        Used when a worker has no historical record on some prior domain:
        per Section IV-E of the paper, the corresponding rows/columns are
        simply dropped.
        """
        idx = np.asarray(list(indices), dtype=int)
        return MultivariateNormalModel(
            mean=self.mean[idx],
            sigma=self.sigma[idx],
            rho=self.rho[np.ix_(idx, idx)],
        )


__all__ = [
    "MultivariateNormalModel",
    "nearest_positive_definite",
    "correlation_from_covariance",
]
