"""Budget and round scheduling (Eq. 12-13 and Table II conventions).

Given a pool of ``|W|`` workers, a desired number of selected workers ``k``
and a total budget ``B`` of learning-task assignments, the paper derives

    n = ceil(log2(|W| / k))          (number of elimination rounds, Eq. 12)
    t = floor(B / n)                 (per-round budget, Eq. 13)

and, in each round ``c`` with ``|W_c|`` remaining workers, assigns
``floor(t / |W_c|)`` learning tasks to every remaining worker.

Table II additionally fixes how the datasets choose the *total* budget from
the per-batch learning-task count ``Q``:

    B           = ceil(log2(|W| / k)) * Q * |W|
    #batches    = 2^{ceil(log2(|W| / k))} - 1

so that the per-worker share in round 1 is exactly ``Q`` and doubles every
round as the pool halves.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List


def number_of_rounds(pool_size: int, k: int) -> int:
    """Eq. (12): ``n = ceil(log2(|W| / k))`` with a minimum of one round."""
    if pool_size <= 0:
        raise ValueError(f"pool_size must be positive, got {pool_size}")
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if k >= pool_size:
        return 1
    return max(1, math.ceil(math.log2(pool_size / k)))


def per_round_budget(total_budget: int, n_rounds: int) -> int:
    """Eq. (13): ``t = floor(B / n)``."""
    if total_budget < 0:
        raise ValueError(f"total_budget must be non-negative, got {total_budget}")
    if n_rounds <= 0:
        raise ValueError(f"n_rounds must be positive, got {n_rounds}")
    return total_budget // n_rounds


def default_total_budget(pool_size: int, k: int, tasks_per_batch: int) -> int:
    """Table II's convention ``B = ceil(log2(|W|/k)) * Q * |W|``."""
    if tasks_per_batch <= 0:
        raise ValueError(f"tasks_per_batch must be positive, got {tasks_per_batch}")
    return number_of_rounds(pool_size, k) * tasks_per_batch * pool_size


def number_of_batches(pool_size: int, k: int) -> int:
    """Table II's convention ``#batches = 2^{ceil(log2(|W|/k))} - 1``.

    This equals the total number of per-worker batches of size ``Q`` handed
    out across all rounds to a worker that survives every elimination.
    """
    return 2 ** number_of_rounds(pool_size, k) - 1


@dataclass(frozen=True)
class BudgetSchedule:
    """The complete round/budget schedule for one selection run.

    Attributes
    ----------
    pool_size:
        Initial number of workers ``|W|``.
    k:
        Number of workers to select.
    total_budget:
        Total number of learning-task assignments ``B``.
    n_rounds:
        Number of elimination rounds ``n`` (Eq. 12).
    round_budget:
        Per-round budget ``t`` (Eq. 13).
    """

    pool_size: int
    k: int
    total_budget: int
    n_rounds: int
    round_budget: int

    def remaining_workers(self, round_index: int) -> int:
        """Number of workers still in the pool at the start of round ``c`` (1-based)."""
        if not 1 <= round_index <= self.n_rounds:
            raise ValueError(f"round_index must lie in [1, {self.n_rounds}], got {round_index}")
        remaining = self.pool_size
        for _ in range(round_index - 1):
            remaining = math.ceil(remaining / 2)
        return remaining

    def tasks_per_worker(self, round_index: int) -> int:
        """Learning tasks assigned to each remaining worker in round ``c``."""
        remaining = self.remaining_workers(round_index)
        return self.round_budget // remaining if remaining else 0

    def cumulative_tasks_per_survivor(self, round_index: int) -> int:
        """Total learning tasks a never-eliminated worker has received by the end of round ``c``."""
        if round_index < 0:
            raise ValueError("round_index must be non-negative")
        return sum(self.tasks_per_worker(c) for c in range(1, min(round_index, self.n_rounds) + 1))

    @property
    def full_training_exposure(self) -> int:
        """Learning tasks a worker that survives every round receives in total."""
        return self.cumulative_tasks_per_survivor(self.n_rounds)

    def spent_budget(self) -> int:
        """Total assignments actually issued by the halving schedule.

        Because of the floors this can be slightly below ``total_budget``;
        it can never exceed it.
        """
        total = 0
        for round_index in range(1, self.n_rounds + 1):
            total += self.tasks_per_worker(round_index) * self.remaining_workers(round_index)
        return total

    def round_plan(self) -> List[dict]:
        """A human-readable plan: one dict per round (used by the CLI and examples)."""
        return [
            {
                "round": c,
                "remaining_workers": self.remaining_workers(c),
                "tasks_per_worker": self.tasks_per_worker(c),
                "round_budget": self.round_budget,
            }
            for c in range(1, self.n_rounds + 1)
        ]


def compute_budget(pool_size: int, k: int, total_budget: int) -> BudgetSchedule:
    """Build the :class:`BudgetSchedule` for a selection run (Eq. 12-13)."""
    n_rounds = number_of_rounds(pool_size, k)
    return BudgetSchedule(
        pool_size=pool_size,
        k=k,
        total_budget=total_budget,
        n_rounds=n_rounds,
        round_budget=per_round_budget(total_budget, n_rounds),
    )


__all__ = [
    "BudgetSchedule",
    "compute_budget",
    "number_of_rounds",
    "per_round_budget",
    "default_total_budget",
    "number_of_batches",
]
