"""Learning-task assignment (Definition 3).

Each elimination round, every remaining worker receives the same batch of
``floor(t / |W_c|)`` learning tasks drawn sequentially from the task bank
(Algorithm 4, lines 5 and 9).  The assignment object records which tasks
went to which workers so the answer history can be scored and audited.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.platform.tasks import Task, TaskBank


@dataclass(frozen=True)
class RoundAssignment:
    """The learning tasks assigned to every remaining worker in one round.

    Attributes
    ----------
    round_index:
        1-based elimination round ``c``.
    worker_ids:
        The remaining workers ``W_c`` in pool order.
    tasks:
        The shared batch of learning tasks assigned to *each* worker this
        round (the paper assigns the same golden questions to everyone, so a
        single list suffices).
    start_index:
        Position of the first task of this batch within the learning-task
        bank (the paper's ``r_c``); the next round starts at
        ``start_index + len(tasks)``.
    """

    round_index: int
    worker_ids: Sequence[str]
    tasks: Sequence[Task]
    start_index: int

    @property
    def tasks_per_worker(self) -> int:
        return len(self.tasks)

    @property
    def total_assignments(self) -> int:
        """Budget consumed by this round (= workers x tasks per worker)."""
        return len(self.worker_ids) * len(self.tasks)

    @property
    def next_start_index(self) -> int:
        """The paper's ``r_{c+1}``."""
        return self.start_index + len(self.tasks)

    def gold_labels(self) -> List[bool]:
        """Gold answers ``G_c`` of the assigned batch, in task order."""
        return [task.gold_label for task in self.tasks]


def build_round_assignment(
    task_bank: TaskBank,
    worker_ids: Sequence[str],
    round_index: int,
    start_index: int,
    tasks_per_worker: int,
) -> RoundAssignment:
    """Assemble the round's assignment from the task bank.

    Raises
    ------
    ValueError
        If there are no workers left or the per-worker batch size is
        negative.
    """
    if not worker_ids:
        raise ValueError("cannot assign tasks to an empty worker set")
    if tasks_per_worker < 0:
        raise ValueError("tasks_per_worker must be non-negative")
    if round_index < 1:
        raise ValueError("round_index is 1-based and must be positive")
    tasks = task_bank.take_learning_tasks(start_index, tasks_per_worker)
    return RoundAssignment(
        round_index=round_index,
        worker_ids=tuple(worker_ids),
        tasks=tuple(tasks),
        start_index=start_index,
    )


__all__ = ["RoundAssignment", "build_round_assignment"]
