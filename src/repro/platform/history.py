"""Per-round answer records (Definition 4's raw material).

The platform stores, for every round, which workers answered which learning
tasks and whether each answer was correct.  The selection algorithms consume
the per-worker correct/wrong counts (``C_{i,c}`` / ``X_{i,c}`` of Eq. 3-4);
the experiment harness additionally uses the history to report training
curves and budget audits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

import numpy as np


@dataclass(frozen=True)
class RoundRecord:
    """All answers collected in one elimination round.

    Attributes
    ----------
    round_index:
        1-based round ``c``.
    correctness:
        Mapping ``worker_id -> boolean array`` of per-task correctness for
        the round's shared batch (the paper's ``a_{i,c}`` scored against
        ``G_c``).
    tasks_per_worker:
        Size of the shared batch.
    """

    round_index: int
    correctness: Mapping[str, np.ndarray]
    tasks_per_worker: int

    def correct_counts(self) -> Dict[str, int]:
        """``C_{i,c}`` per worker (Eq. 3)."""
        return {worker_id: int(np.sum(answers)) for worker_id, answers in self.correctness.items()}

    def wrong_counts(self) -> Dict[str, int]:
        """``X_{i,c}`` per worker (Eq. 4)."""
        return {
            worker_id: int(self.tasks_per_worker - np.sum(answers))
            for worker_id, answers in self.correctness.items()
        }

    def accuracies(self) -> Dict[str, float]:
        """Observed accuracy per worker in this round (``a_{i,c}`` averaged)."""
        if self.tasks_per_worker == 0:
            return {worker_id: 0.0 for worker_id in self.correctness}
        return {
            worker_id: float(np.mean(answers)) if len(answers) else 0.0
            for worker_id, answers in self.correctness.items()
        }


@dataclass
class AnswerHistory:
    """Chronological record of every round's answers in one selection run."""

    records: List[RoundRecord] = field(default_factory=list)

    def append(self, record: RoundRecord) -> None:
        if self.records and record.round_index <= self.records[-1].round_index:
            raise ValueError("round records must be appended in increasing round order")
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    @property
    def latest(self) -> Optional[RoundRecord]:
        return self.records[-1] if self.records else None

    def rounds_for_worker(self, worker_id: str) -> List[RoundRecord]:
        """All rounds in which the given worker answered."""
        return [record for record in self.records if worker_id in record.correctness]

    def cumulative_exposure(self, worker_id: str) -> int:
        """Total learning tasks the worker has answered (and learned from) so far."""
        return sum(record.tasks_per_worker for record in self.rounds_for_worker(worker_id))

    def accuracy_trajectory(self, worker_id: str) -> List[float]:
        """Per-round observed accuracy of one worker (training curve)."""
        return [record.accuracies()[worker_id] for record in self.rounds_for_worker(worker_id)]

    def total_assignments(self) -> int:
        """Budget consumed so far across all rounds and workers."""
        return sum(record.tasks_per_worker * len(record.correctness) for record in self.records)


__all__ = ["RoundRecord", "AnswerHistory"]
