"""The annotation environment: the simulator selection algorithms run against.

:class:`AnnotationEnvironment` wires a worker pool, a target-domain task
bank and a budget schedule into the answer-and-learn protocol of Figure 2:

1. the algorithm asks for a batch of learning tasks to be assigned to a set
   of (remaining) workers;
2. the environment simulates the workers' answers at their *current* latent
   accuracy, scores them against the gold labels, reveals the answers to the
   workers (which advances their training exposure), and returns only the
   observable correctness record;
3. at the end the algorithm hands back the selected worker ids and the
   environment evaluates their accuracy on the working tasks.

Answer simulation is delegated to :mod:`repro.platform.answers`: the default
``"vectorized"`` engine simulates the whole round with one batched accuracy
matrix and one Bernoulli draw, while the ``"reference"`` engine keeps the
per-worker loop as the executable specification — both consume the same
per-(worker, round) counter-based streams, so their records are
bit-identical.  Every stream is derived from the environment seed, the
worker id and the round index, never from a shared sequential generator, so
simulated answers are independent of iteration order and process count.

The environment enforces the total budget ``B``: any assignment that would
exceed it raises :class:`BudgetExceededError`, so a mis-configured selector
cannot silently obtain more information than the paper's problem definition
allows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.platform.answers import (
    ANSWER_ENGINES,
    behavior_accuracy_matrix,
    simulate_round_answers,
)
from repro.platform.assignment import build_round_assignment
from repro.platform.budget import BudgetSchedule
from repro.platform.history import AnswerHistory, RoundRecord
from repro.platform.tasks import TaskBank
from repro.stats.rng import SeedLike, as_generator, counter_uniforms, stream_seeds, token_hashes
from repro.workers.pool import WorkerPool

#: Stream discriminators keeping learning-round and evaluation draws apart.
_LEARNING_STREAM = 1
_EVALUATION_STREAM = 2


class BudgetExceededError(RuntimeError):
    """Raised when an assignment would exceed the total learning-task budget."""


@dataclass(frozen=True)
class SelectionOutcome:
    """Evaluation of a finished selection run (one method on one dataset)."""

    selected_worker_ids: Tuple[str, ...]
    mean_accuracy: float
    per_worker_accuracy: Dict[str, float]
    spent_budget: int
    n_rounds_used: int


def _seed_root(rng: SeedLike) -> int:
    """Integer root seed for the counter-based answer streams.

    An integer seed is used as-is (the common, fully reproducible case); a
    generator or ``None`` contributes one draw of entropy.
    """
    if isinstance(rng, (int, np.integer)):
        return int(rng)
    return int(as_generator(rng).integers(0, 2**63 - 1))


class AnnotationEnvironment:
    """Simulated crowdsourcing platform for one selection run.

    Parameters
    ----------
    pool:
        The worker pool ``W``; training exposure is reset on construction so
        every run starts from untrained workers.
    task_bank:
        Target-domain learning and working tasks.
    schedule:
        The budget schedule (Eq. 12-13) the run must respect.
    prior_domains:
        Ordered names of the prior domains (defines the column order of the
        historical-profile matrices).
    rng:
        Seed controlling the simulated answers.  An integer makes every
        stream reproducible; the same seed yields byte-identical records
        regardless of engine, worker iteration order or process count.
    answer_engine:
        ``"vectorized"`` (default) or ``"reference"`` — see
        :mod:`repro.platform.answers`.
    """

    def __init__(
        self,
        pool: WorkerPool,
        task_bank: TaskBank,
        schedule: BudgetSchedule,
        prior_domains: Sequence[str],
        rng: SeedLike = None,
        batch_size: Optional[int] = None,
        answer_engine: str = "vectorized",
    ) -> None:
        if batch_size is not None and batch_size <= 0:
            raise ValueError("batch_size must be positive when given")
        if answer_engine not in ANSWER_ENGINES:
            raise ValueError(f"answer_engine must be one of {ANSWER_ENGINES}, got {answer_engine!r}")
        self._pool = pool
        self._task_bank = task_bank
        self._schedule = schedule
        self._prior_domains = list(prior_domains)
        self._answer_root = _seed_root(rng)
        self._answer_engine = answer_engine
        self._batch_size = batch_size
        self._history = AnswerHistory()
        self._spent_budget = 0
        self._next_task_index = 0
        self._pool.reset_training()
        hashes = token_hashes(pool.worker_ids)
        self._worker_hashes = {worker_id: hashes[i] for i, worker_id in enumerate(pool.worker_ids)}

    # ------------------------------------------------------------------ #
    # Observable state (what the paper's algorithms may use)
    # ------------------------------------------------------------------ #
    @property
    def schedule(self) -> BudgetSchedule:
        return self._schedule

    @property
    def prior_domains(self) -> List[str]:
        return list(self._prior_domains)

    @property
    def target_domain(self) -> str:
        return self._task_bank.domain

    @property
    def worker_ids(self) -> List[str]:
        return self._pool.worker_ids

    @property
    def history(self) -> AnswerHistory:
        return self._history

    @property
    def spent_budget(self) -> int:
        return self._spent_budget

    @property
    def remaining_budget(self) -> int:
        return self._schedule.total_budget - self._spent_budget

    @property
    def answer_engine(self) -> str:
        """Which answer-simulation engine this environment runs."""
        return self._answer_engine

    def historical_profiles(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(H, N)`` matrices over the prior domains, in pool order."""
        return self._pool.profile_matrices(self._prior_domains)

    # ------------------------------------------------------------------ #
    # Learning-task assignment (Definition 3)
    # ------------------------------------------------------------------ #
    def _worker_stream_seeds(self, worker_ids: Sequence[str], stream: int, salt: int) -> np.ndarray:
        """Per-worker 64-bit stream seeds for one (stream, salt) context."""
        hashes = np.asarray([self._worker_hashes[worker_id] for worker_id in worker_ids], dtype=np.uint64)
        return stream_seeds(self._answer_root, hashes, stream, salt)

    def run_learning_round(
        self,
        worker_ids: Sequence[str],
        tasks_per_worker: int,
        round_index: Optional[int] = None,
    ) -> RoundRecord:
        """Assign a shared batch of learning tasks and collect the answers.

        The assignment is answered batch by batch (``batch_size`` golden
        questions at a time, mirroring the paper's survey protocol): a
        worker answers a batch at its current latent accuracy, the ground
        truth of that batch is revealed (advancing the worker's training
        exposure), and the next batch follows.  Only the correctness record
        is returned — latent accuracies stay hidden.

        Raises
        ------
        BudgetExceededError
            If the assignment would push the spent budget beyond ``B``.
        """
        if tasks_per_worker < 0:
            raise ValueError("tasks_per_worker must be non-negative")
        worker_ids = list(worker_ids)
        unknown = [w for w in worker_ids if w not in self._pool]
        if unknown:
            raise KeyError(f"assignment contains unknown workers: {unknown}")
        cost = tasks_per_worker * len(worker_ids)
        if self._spent_budget + cost > self._schedule.total_budget:
            raise BudgetExceededError(
                f"assignment of {cost} tasks exceeds the remaining budget "
                f"({self.remaining_budget} of {self._schedule.total_budget})"
            )
        resolved_round = round_index if round_index is not None else len(self._history) + 1
        latest = self._history.latest
        if latest is not None and resolved_round <= latest.round_index:
            # Each round owns its per-(worker, round) answer streams, so a
            # repeated index would silently replay the previous round's
            # uniforms.  Reject it *before* simulating (the history append
            # would raise anyway, but only after training had advanced).
            raise ValueError(
                f"round_index {resolved_round} is not past the last recorded round "
                f"({latest.round_index}); rounds must be strictly increasing"
            )
        assignment = build_round_assignment(
            task_bank=self._task_bank,
            worker_ids=worker_ids,
            round_index=resolved_round,
            start_index=self._next_task_index,
            tasks_per_worker=tasks_per_worker,
        )
        batch_size = self._batch_size if self._batch_size is not None else max(tasks_per_worker, 1)
        behaviors = [self._pool[worker_id] for worker_id in worker_ids]
        answers = simulate_round_answers(
            behaviors,
            self._worker_stream_seeds(worker_ids, _LEARNING_STREAM, resolved_round),
            tasks_per_worker,
            batch_size,
            engine=self._answer_engine,
        )
        correctness = dict(zip(worker_ids, answers))

        record = RoundRecord(
            round_index=resolved_round,
            correctness=correctness,
            tasks_per_worker=tasks_per_worker,
        )
        self._history.append(record)
        self._spent_budget += cost
        self._next_task_index = assignment.next_start_index
        return record

    # ------------------------------------------------------------------ #
    # Evaluation (hidden from the selection algorithms)
    # ------------------------------------------------------------------ #
    def final_accuracy(self, worker_id: str) -> float:
        """A worker's latent accuracy after the full training schedule.

        Matches the paper's evaluation protocol: every worker in the surveys
        completes the whole learning/working sequence, so methods are
        compared on the accuracy workers reach at the *end* of training
        (exposure ``K_n``), regardless of when the method stopped assigning
        them tasks.
        """
        return self._pool[worker_id].accuracy_at(float(self._schedule.full_training_exposure))

    def evaluate_selection(
        self,
        worker_ids: Sequence[str],
        empirical: bool = False,
        n_working_tasks: Optional[int] = None,
        rng: SeedLike = None,
    ) -> SelectionOutcome:
        """Average working-task accuracy of the selected workers.

        Parameters
        ----------
        worker_ids:
            The selected workers ``W_T``.
        empirical:
            When ``True``, draw Bernoulli answers over ``n_working_tasks``
            working tasks instead of reporting the latent accuracy (adds the
            sampling noise a real evaluation would have).  With zero working
            tasks there is nothing to sample, so the outcome degrades to the
            latent accuracies instead of propagating NaN.
        rng:
            Optional seed overriding the environment's answer root for the
            empirical draw.  Every selected worker owns an independent
            evaluation stream, so the outcome does not depend on selection
            order or on which other workers were selected.
        """
        worker_ids = list(worker_ids)
        if not worker_ids:
            raise ValueError("cannot evaluate an empty selection")
        unknown = [w for w in worker_ids if w not in self._pool]
        if unknown:
            raise KeyError(f"selection contains unknown workers: {unknown}")
        if n_working_tasks is not None and n_working_tasks < 0:
            raise ValueError("n_working_tasks must be non-negative")
        n_tasks = n_working_tasks if n_working_tasks is not None else max(self._task_bank.n_working, 1)

        behaviors = [self._pool[worker_id] for worker_id in worker_ids]
        exposure = float(self._schedule.full_training_exposure)
        full_exposures = np.full((len(behaviors), 1), exposure)
        latents = behavior_accuracy_matrix(behaviors, full_exposures)[:, 0]

        if empirical and n_tasks > 0:
            root = self._answer_root if rng is None else _seed_root(rng)
            hashes = np.asarray(
                [self._worker_hashes[worker_id] for worker_id in worker_ids], dtype=np.uint64
            )
            seeds = stream_seeds(root, hashes, _EVALUATION_STREAM, 0)
            if self._answer_engine == "reference":
                values = [
                    float(np.mean(counter_uniforms(seeds[i : i + 1], n_tasks)[0] < latents[i]))
                    for i in range(len(behaviors))
                ]
            else:
                uniforms = counter_uniforms(seeds, n_tasks)
                values = np.mean(uniforms < latents[:, None], axis=1).tolist()
            per_worker = {worker_id: float(value) for worker_id, value in zip(worker_ids, values)}
        else:
            per_worker = {worker_id: float(value) for worker_id, value in zip(worker_ids, latents)}
        mean_accuracy = float(np.mean(list(per_worker.values())))
        return SelectionOutcome(
            selected_worker_ids=tuple(worker_ids),
            mean_accuracy=mean_accuracy,
            per_worker_accuracy=per_worker,
            spent_budget=self._spent_budget,
            n_rounds_used=len(self._history),
        )

    def ground_truth_top_k(self, k: int) -> List[str]:
        """The truly best ``k`` workers by final (fully trained) accuracy."""
        if k <= 0:
            raise ValueError("k must be positive")
        ranked = sorted(self._pool.worker_ids, key=self.final_accuracy, reverse=True)
        return ranked[: min(k, len(ranked))]

    def summary(self) -> Dict[str, object]:
        """Run metadata used by the experiment reports and the CLI."""
        return {
            "target_domain": self.target_domain,
            "pool_size": len(self._pool),
            "k": self._schedule.k,
            "total_budget": self._schedule.total_budget,
            "n_rounds": self._schedule.n_rounds,
            "spent_budget": self._spent_budget,
            "answer_engine": self._answer_engine,
            "learning_tasks_available": self._task_bank.n_learning,
            "learning_tasks_cycled": self._next_task_index > self._task_bank.n_learning,
        }


__all__ = ["AnnotationEnvironment", "BudgetExceededError", "SelectionOutcome"]
