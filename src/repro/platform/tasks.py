"""Target-domain tasks and the task bank.

Definition 1 of the paper splits the target-domain tasks ``T`` into learning
tasks ``T_l`` (golden questions whose answers are revealed to workers after
submission) and working tasks ``T_w`` (no gold label available to the
platform at selection time; used to evaluate the selected workers).

The reproduction uses Yes/No questions like the paper's surveys; each task
carries a gold label so the simulator can score answers, but the selection
algorithms only ever see correctness on *learning* tasks.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Iterator, List

from repro.stats.rng import SeedLike, as_generator


class TaskKind(enum.Enum):
    """Whether a task is a golden learning task or an unlabelled working task."""

    LEARNING = "learning"
    WORKING = "working"


@dataclass(frozen=True)
class Task:
    """A single Yes/No annotation task on the target domain.

    Attributes
    ----------
    task_id:
        Stable identifier.
    domain:
        The domain the task belongs to (always the target domain here, but
        kept explicit so prior-domain banks can reuse the type).
    kind:
        Learning (golden) or working task.
    gold_label:
        The ground-truth Yes/No answer.  Present for every simulated task;
        for working tasks it is used exclusively by the evaluation code.
    prompt:
        Optional human-readable question text (useful in examples).
    """

    task_id: str
    domain: str
    kind: TaskKind
    gold_label: bool
    prompt: str = ""


@dataclass
class TaskBank:
    """The pool of target-domain tasks available to a selection run."""

    domain: str
    learning_tasks: List[Task] = field(default_factory=list)
    working_tasks: List[Task] = field(default_factory=list)

    def __post_init__(self) -> None:
        for task in self.learning_tasks:
            if task.kind is not TaskKind.LEARNING:
                raise ValueError(f"task {task.task_id} in learning_tasks is not a learning task")
        for task in self.working_tasks:
            if task.kind is not TaskKind.WORKING:
                raise ValueError(f"task {task.task_id} in working_tasks is not a working task")

    # ------------------------------------------------------------------ #
    @property
    def n_learning(self) -> int:
        return len(self.learning_tasks)

    @property
    def n_working(self) -> int:
        return len(self.working_tasks)

    def learning_task_stream(self) -> Iterator[Task]:
        """Endless stream of learning tasks.

        Algorithm 4 walks through the learning tasks sequentially
        (``r_{c+1} = r_c + t / |W_c|``); if a configuration requests more
        learning-task assignments than the bank holds, the stream cycles —
        the simulator then reuses questions, which only matters for extreme
        budgets and is flagged by :meth:`AnnotationEnvironment.summary`.
        """
        return itertools.cycle(self.learning_tasks) if self.learning_tasks else iter(())

    def take_learning_tasks(self, start_index: int, count: int) -> List[Task]:
        """Learning tasks ``start_index .. start_index + count`` (cycled if needed)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if not self.learning_tasks:
            raise ValueError("the task bank holds no learning tasks")
        n = len(self.learning_tasks)
        return [self.learning_tasks[(start_index + offset) % n] for offset in range(count)]


def generate_task_bank(
    domain: str,
    n_learning: int,
    n_working: int,
    rng: SeedLike = None,
    positive_rate: float = 0.5,
    prompt_template: str = "Is this an instance of {domain}? (item #{index})",
) -> TaskBank:
    """Generate a synthetic bank of Yes/No tasks with random gold labels.

    Parameters
    ----------
    domain:
        Target-domain name used in identifiers and prompts.
    n_learning, n_working:
        Number of learning (golden) and working tasks to create.
    positive_rate:
        Probability that a task's gold answer is "Yes"; the paper's surveys
        are roughly balanced.
    """
    if n_learning < 0 or n_working < 0:
        raise ValueError("task counts must be non-negative")
    if not 0.0 <= positive_rate <= 1.0:
        raise ValueError("positive_rate must lie in [0, 1]")
    generator = as_generator(rng)

    def _make(kind: TaskKind, index: int) -> Task:
        return Task(
            task_id=f"{domain}-{kind.value}-{index:04d}",
            domain=domain,
            kind=kind,
            gold_label=bool(generator.uniform() < positive_rate),
            prompt=prompt_template.format(domain=domain, index=index),
        )

    learning = [_make(TaskKind.LEARNING, i) for i in range(n_learning)]
    working = [_make(TaskKind.WORKING, i) for i in range(n_working)]
    return TaskBank(domain=domain, learning_tasks=learning, working_tasks=working)


__all__ = ["Task", "TaskKind", "TaskBank", "generate_task_bank"]
