"""Pool-level answer simulation: the platform's last hot path, vectorized.

Simulating one learning round used to walk a per-worker, per-batch Python
loop (`answer_tasks` / `observe_feedback` per worker) — at 640+ workers that
loop dominates a selection run the way the CPE update did before PR 2.  This
module replaces it with a batched path:

* one **accuracy matrix** per round: workers are grouped by behaviour class
  and each class evaluates its latent accuracy curve for all its workers and
  all batch offsets at once (:func:`behavior_accuracy_matrix`);
* one **vectorized Bernoulli draw** per round: every (worker, round) pair
  owns a counter-based uniform stream
  (:func:`repro.stats.rng.counter_uniforms`), so the whole round's answers
  are a single ``uniforms < accuracies`` comparison.

The original loop survives as the ``"reference"`` engine (the PR 2 pattern).
Both engines consume the *same* per-(worker, round) streams and the same
curve formulas — the scalar ``accuracy_at`` delegates to the batched curve —
so they produce **bit-identical** correctness records: the reference engine
is the executable specification of the vectorized one.

Because every stream seed is a pure function of ``(environment seed,
worker id, round index)``, simulated answers are independent of pool
iteration order, of which other workers share the round, and of the process
that runs them — the property the parallel experiment runner relies on for
job-count-independent results.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Type

import numpy as np

from repro.stats.rng import counter_uniforms
from repro.workers.behavior import WorkerBehavior

#: Valid values of the environment's ``answer_engine`` knob.
ANSWER_ENGINES = ("vectorized", "reference")


def split_batches(tasks_per_worker: int, batch_size: int) -> List[int]:
    """Batch sizes of one round: ``batch_size`` chunks, last one possibly short."""
    if tasks_per_worker < 0:
        raise ValueError("tasks_per_worker must be non-negative")
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    full, remainder = divmod(tasks_per_worker, batch_size)
    return [batch_size] * full + ([remainder] if remainder else [])


def behavior_accuracy_matrix(behaviors: Sequence[WorkerBehavior], exposures: np.ndarray) -> np.ndarray:
    """Latent accuracy of every worker at every exposure point.

    Groups ``behaviors`` by class and evaluates each class's batched
    accuracy curve once (the PR 2 pattern-grouping idea applied to
    behaviours).  Classes without a batched curve — third-party behaviours
    that only override ``accuracy_at`` — fall back to a per-worker scalar
    loop, which is slower but produces the same values.

    Parameters
    ----------
    behaviors:
        ``W`` worker behaviours, in row order.
    exposures:
        ``(W, P)`` matrix of training exposures to evaluate.
    """
    exposures = np.asarray(exposures, dtype=float)
    if exposures.ndim != 2 or exposures.shape[0] != len(behaviors):
        raise ValueError(
            f"exposures must have shape ({len(behaviors)}, P), got {exposures.shape}"
        )
    result = np.empty_like(exposures)
    groups: Dict[Type[WorkerBehavior], List[int]] = {}
    for index, behavior in enumerate(behaviors):
        groups.setdefault(type(behavior), []).append(index)
    for cls, indices in groups.items():
        rows = np.asarray(indices, dtype=np.intp)
        if cls.supports_batch_curve():
            per_worker = [behaviors[i].curve_params() for i in indices]
            params = {
                key: np.asarray([p[key] for p in per_worker], dtype=float)
                for key in per_worker[0]
            }
            result[rows] = cls.batch_accuracy(params, exposures[rows])
        else:
            for i in indices:
                result[i] = [behaviors[i].accuracy_at(point) for point in exposures[i]]
    return result


def simulate_round_answers(
    behaviors: Sequence[WorkerBehavior],
    stream_seeds: np.ndarray,
    tasks_per_worker: int,
    batch_size: int,
    engine: str = "vectorized",
) -> List[np.ndarray]:
    """Simulate one round's answers for a set of workers; advances training.

    Implements the paper's survey protocol: each worker answers the round's
    shared batch ``batch_size`` golden questions at a time, at the latent
    accuracy of its exposure *before* that chunk, then the chunk's ground
    truth is revealed (advancing exposure) and the next chunk follows.

    Parameters
    ----------
    behaviors:
        The participating workers, in round order.
    stream_seeds:
        One 64-bit stream seed per worker (see
        :func:`repro.stats.rng.stream_seeds`); draw ``t`` of worker ``i``'s
        round is ``counter_uniforms(stream_seeds[i:i+1], ...)`` draw ``t``.
    engine:
        ``"vectorized"`` (default) or ``"reference"``.  Bit-identical
        results; the reference loop is the executable specification.

    Returns
    -------
    list of numpy.ndarray
        Per-worker boolean correctness arrays of length ``tasks_per_worker``,
        in ``behaviors`` order.
    """
    if engine not in ANSWER_ENGINES:
        raise ValueError(f"answer_engine must be one of {ANSWER_ENGINES}, got {engine!r}")
    sizes = split_batches(tasks_per_worker, batch_size)
    seeds = np.asarray(stream_seeds, dtype=np.uint64)
    if seeds.shape != (len(behaviors),):
        raise ValueError(f"stream_seeds must have shape ({len(behaviors)},), got {seeds.shape}")

    if engine == "reference":
        rows: List[np.ndarray] = []
        for index, worker in enumerate(behaviors):
            answered: List[np.ndarray] = []
            drawn = 0
            for size in sizes:
                uniforms = counter_uniforms(seeds[index : index + 1], size, offset=drawn)[0]
                answered.append(uniforms < worker.current_accuracy)
                worker.observe_feedback(size)
                drawn += size
            rows.append(np.concatenate(answered) if answered else np.zeros(0, dtype=bool))
        return rows

    # Vectorized path: one accuracy matrix, one Bernoulli draw.
    offsets = np.concatenate([[0.0], np.cumsum(sizes, dtype=float)[:-1]]) if sizes else np.zeros(0)
    starts = np.asarray([worker.training_exposure for worker in behaviors], dtype=float)
    per_batch = behavior_accuracy_matrix(behaviors, starts[:, None] + offsets[None, :])
    per_task = np.repeat(per_batch, sizes, axis=1)
    uniforms = counter_uniforms(seeds, tasks_per_worker)
    correct = uniforms < per_task
    for worker in behaviors:
        worker.observe_feedback(tasks_per_worker)
    return [correct[index] for index in range(len(behaviors))]


__all__ = [
    "ANSWER_ENGINES",
    "split_batches",
    "behavior_accuracy_matrix",
    "simulate_round_answers",
]
