"""Crowdsourcing-platform simulator substrate.

The paper's framework (Figure 2 / Algorithm 4) runs on top of a
crowdsourcing platform that can

* hold a bank of target-domain tasks split into *learning* tasks (with gold
  labels that get revealed to workers) and *working* tasks (unlabelled, used
  only for evaluation) — :mod:`repro.platform.tasks`;
* compute the round/budget schedule of Eq. (12)-(13) —
  :mod:`repro.platform.budget`;
* assign learning-task batches to the remaining workers each round —
  :mod:`repro.platform.assignment`;
* record every worker's per-round answers — :mod:`repro.platform.history`;
* simulate a round's answers for the whole pool at once (vectorized Bernoulli
  engine with a bit-identical reference loop) — :mod:`repro.platform.answers`;
* orchestrate the whole answer-and-learn loop while enforcing the budget —
  :mod:`repro.platform.session`.

Selection algorithms only interact with :class:`~repro.platform.session.AnnotationEnvironment`,
which exposes exactly the observables the paper allows (historical profiles
and learning-task answers) and keeps the latent worker accuracies hidden
behind evaluation-only methods.
"""

from repro.platform.answers import (
    ANSWER_ENGINES,
    behavior_accuracy_matrix,
    simulate_round_answers,
)
from repro.platform.assignment import RoundAssignment, build_round_assignment
from repro.platform.budget import BudgetSchedule, compute_budget, number_of_batches
from repro.platform.history import AnswerHistory, RoundRecord
from repro.platform.session import AnnotationEnvironment, BudgetExceededError
from repro.platform.tasks import Task, TaskBank, TaskKind, generate_task_bank

__all__ = [
    "Task",
    "TaskKind",
    "TaskBank",
    "generate_task_bank",
    "BudgetSchedule",
    "compute_budget",
    "number_of_batches",
    "RoundAssignment",
    "build_round_assignment",
    "AnswerHistory",
    "RoundRecord",
    "AnnotationEnvironment",
    "BudgetExceededError",
    "ANSWER_ENGINES",
    "behavior_accuracy_matrix",
    "simulate_round_answers",
]
