"""Uniform Sampling (US) baseline [11], [19].

Every worker receives the same number of learning tasks — the whole budget
spread evenly over the pool in a single round — and the ``k`` workers with
the highest observed accuracy are selected.  US ignores both the historical
profiles and the fact that workers learn during training, which is exactly
what the paper's method improves on.
"""

from __future__ import annotations

from typing import Optional

from repro.core.registry import register_selector
from repro.core.selector import BaseWorkerSelector, SelectionResult, top_k_by_score
from repro.platform.session import AnnotationEnvironment
from repro.stats.rng import SeedLike


class UniformSamplingSelector(BaseWorkerSelector):
    """Assign the budget uniformly, rank by observed accuracy, take the top k."""

    name = "us"

    def select(self, environment: AnnotationEnvironment, k: Optional[int] = None) -> SelectionResult:
        k = self.resolve_k(environment, k)
        worker_ids = environment.worker_ids
        schedule = environment.schedule
        tasks_per_worker = schedule.total_budget // len(worker_ids)

        record = environment.run_learning_round(worker_ids, tasks_per_worker, round_index=1)
        observed = record.accuracies()
        selected = top_k_by_score(observed, k)
        return SelectionResult(
            method=self.name,
            selected_worker_ids=selected,
            estimated_accuracies={worker_id: observed[worker_id] for worker_id in selected},
            spent_budget=environment.spent_budget,
            n_rounds=1,
            diagnostics={"tasks_per_worker": tasks_per_worker},
        )


@register_selector("us", aliases=("uniform",))
def _build_uniform_sampling(seed: SeedLike = None) -> UniformSamplingSelector:
    """Uniform Sampling: spread the budget evenly, take the observed top-k."""
    del seed  # deterministic given the environment's answer stream
    return UniformSamplingSelector()


__all__ = ["UniformSamplingSelector"]
