"""Plain budgeted Median Elimination (ME) baseline [11], [19].

The same round/budget schedule as the proposed method (Eq. 12-13), but each
round's ranking uses only the observed learning-task accuracy of that round:
no cross-domain model, no learning-gain projection.  Implemented as a thin
wrapper around the shared pipeline with both estimation components disabled,
so the elimination mechanics are guaranteed to be identical.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.core.pipeline import CrossDomainWorkerSelector, RoundDiagnostics
from repro.core.registry import register_selector
from repro.core.selector import BaseWorkerSelector, SelectionResult
from repro.platform.session import AnnotationEnvironment
from repro.stats.rng import SeedLike


class MedianEliminationSelector(BaseWorkerSelector):
    """Round-based halving driven purely by observed per-round accuracy."""

    name = "me"

    def __init__(self, rng: SeedLike = None) -> None:
        self._inner = CrossDomainWorkerSelector(use_cpe=False, use_lge=False, rng=rng, name=self.name)

    def select(self, environment: AnnotationEnvironment, k: Optional[int] = None) -> SelectionResult:
        return self._inner.select(environment, k)

    def stepwise(
        self, environment: AnnotationEnvironment, k: Optional[int] = None
    ) -> Generator[RoundDiagnostics, None, SelectionResult]:
        return (yield from self._inner.stepwise(environment, k))


@register_selector("me", aliases=("median-elimination",))
def _build_median_elimination(seed: SeedLike = None) -> MedianEliminationSelector:
    """Budgeted Median Elimination on observed per-round accuracy."""
    return MedianEliminationSelector(rng=seed)


__all__ = ["MedianEliminationSelector"]
