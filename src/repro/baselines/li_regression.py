"""Li et al. [31] regression baseline.

"The wisdom of minority" selects workers by regressing a quality signal on
worker features and ranking workers by the regressed value.  Following the
paper's adaptation, the features are the historical cross-domain profiles
``h_i`` and the regression target is the accuracy each worker achieves on
the uniformly assigned learning tasks.  Ranking by the *fitted* values
rather than the raw observations lets the baseline exploit static
cross-domain structure — but, unlike the proposed method, it can model
neither the elimination feedback loop nor the workers' learning gains.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.registry import register_selector
from repro.core.selector import BaseWorkerSelector, SelectionResult, top_k_by_score
from repro.platform.session import AnnotationEnvironment
from repro.stats.rng import SeedLike

_RIDGE = 1e-6  # tiny ridge term keeps the normal equations well-posed


def _impute_missing(features: np.ndarray) -> np.ndarray:
    """Replace NaN feature entries with the column mean (0.5 if a column is all-NaN)."""
    imputed = features.copy()
    for column in range(imputed.shape[1]):
        values = imputed[:, column]
        observed = values[~np.isnan(values)]
        fill = float(observed.mean()) if observed.size else 0.5
        values[np.isnan(values)] = fill
        imputed[:, column] = values
    return imputed


def fit_linear_regression(features: np.ndarray, targets: np.ndarray) -> np.ndarray:
    """Ordinary least squares with an intercept and a tiny ridge term.

    Returns the coefficient vector ``[intercept, w_1, ..., w_D]``.
    """
    features = np.atleast_2d(np.asarray(features, dtype=float))
    targets = np.asarray(targets, dtype=float)
    if features.shape[0] != targets.shape[0]:
        raise ValueError("features and targets must have the same number of rows")
    design = np.hstack([np.ones((features.shape[0], 1)), _impute_missing(features)])
    gram = design.T @ design + _RIDGE * np.eye(design.shape[1])
    return np.linalg.solve(gram, design.T @ targets)


def predict_linear_regression(coefficients: np.ndarray, features: np.ndarray) -> np.ndarray:
    """Evaluate a fitted regression on (possibly NaN-containing) features."""
    features = np.atleast_2d(np.asarray(features, dtype=float))
    design = np.hstack([np.ones((features.shape[0], 1)), _impute_missing(features)])
    return design @ np.asarray(coefficients, dtype=float)


class LiRegressionSelector(BaseWorkerSelector):
    """Rank workers by a linear regression from historical profiles to observed accuracy."""

    name = "li"

    def select(self, environment: AnnotationEnvironment, k: Optional[int] = None) -> SelectionResult:
        k = self.resolve_k(environment, k)
        worker_ids = environment.worker_ids
        schedule = environment.schedule
        tasks_per_worker = schedule.total_budget // len(worker_ids)

        record = environment.run_learning_round(worker_ids, tasks_per_worker, round_index=1)
        observed = record.accuracies()
        accuracy_matrix, _ = environment.historical_profiles()
        targets = np.asarray([observed[worker_id] for worker_id in worker_ids], dtype=float)

        coefficients = fit_linear_regression(accuracy_matrix, targets)
        fitted = predict_linear_regression(coefficients, accuracy_matrix)
        scores = {worker_id: float(value) for worker_id, value in zip(worker_ids, fitted)}
        selected = top_k_by_score(scores, k)
        return SelectionResult(
            method=self.name,
            selected_worker_ids=selected,
            estimated_accuracies={worker_id: scores[worker_id] for worker_id in selected},
            spent_budget=environment.spent_budget,
            n_rounds=1,
            diagnostics={
                "coefficients": coefficients.tolist(),
                "tasks_per_worker": tasks_per_worker,
            },
        )


@register_selector("li", aliases=("li-regression",))
def _build_li_regression(seed: SeedLike = None) -> LiRegressionSelector:
    """Li et al.: regress observed accuracy on historical profiles, rank by fit."""
    del seed  # deterministic given the environment's answer stream
    return LiRegressionSelector()


__all__ = ["LiRegressionSelector", "fit_linear_regression", "predict_linear_regression"]
