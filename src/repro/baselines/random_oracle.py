"""Reference selectors used for sanity checks and extended benchmarks.

Neither appears in the paper's tables, but both are invaluable for testing:

* :class:`RandomSelector` picks ``k`` workers uniformly at random without
  spending any budget — every serious method must beat it.
* :class:`OracleSelector` peeks at the environment's ground-truth ranking —
  it realises the Table V "Ground Truth" row and upper-bounds every method.
"""

from __future__ import annotations

from typing import Optional

from repro.core.registry import register_selector
from repro.core.selector import BaseWorkerSelector, SelectionResult
from repro.platform.session import AnnotationEnvironment
from repro.stats.rng import SeedLike, as_generator


class RandomSelector(BaseWorkerSelector):
    """Uniformly random selection (budget-free lower reference)."""

    name = "random"

    def __init__(self, rng: SeedLike = None) -> None:
        self._rng = as_generator(rng)

    def select(self, environment: AnnotationEnvironment, k: Optional[int] = None) -> SelectionResult:
        k = self.resolve_k(environment, k)
        worker_ids = list(environment.worker_ids)
        chosen = self._rng.choice(len(worker_ids), size=k, replace=False)
        selected = [worker_ids[index] for index in sorted(chosen.tolist())]
        return SelectionResult(
            method=self.name,
            selected_worker_ids=selected,
            spent_budget=environment.spent_budget,
            n_rounds=0,
        )


class OracleSelector(BaseWorkerSelector):
    """Ground-truth top-k selection (the evaluation upper bound)."""

    name = "oracle"

    def select(self, environment: AnnotationEnvironment, k: Optional[int] = None) -> SelectionResult:
        k = self.resolve_k(environment, k)
        selected = environment.ground_truth_top_k(k)
        return SelectionResult(
            method=self.name,
            selected_worker_ids=selected,
            estimated_accuracies={worker_id: environment.final_accuracy(worker_id) for worker_id in selected},
            spent_budget=environment.spent_budget,
            n_rounds=0,
        )


@register_selector("random")
def _build_random(seed: SeedLike = None) -> RandomSelector:
    """Budget-free uniformly random selection (sanity-check lower bound)."""
    return RandomSelector(rng=seed)


@register_selector("oracle", aliases=("ground-truth",))
def _build_oracle(seed: SeedLike = None) -> OracleSelector:
    """Ground-truth top-k selection (the evaluation upper bound)."""
    del seed  # the oracle is deterministic
    return OracleSelector()


__all__ = ["RandomSelector", "OracleSelector"]
