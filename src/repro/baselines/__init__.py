"""Baseline worker-selection strategies compared against in Section V.

* :class:`UniformSamplingSelector` — Uniform Sampling (US): every worker
  receives the same share of the budget in one shot and the top-``k`` by
  observed accuracy are selected.
* :class:`MedianEliminationSelector` — plain budgeted Median Elimination
  (ME): the per-round observed accuracy drives the halving, with no
  cross-domain or learning-gain modelling.
* :class:`LiRegressionSelector` — Li et al. [31]: a linear regression from
  workers' historical profiles to their observed learning-task accuracy,
  ranking workers by the regressed (smoothed) values.
* :class:`MeCpeSelector` — the ME-CPE ablation (CPE without LGE).
* :class:`RandomSelector` / :class:`OracleSelector` — sanity-check lower and
  upper reference points (not in the paper's tables, used by tests and the
  extended benchmarks).

All baselines receive exactly the same budget and observables as the
proposed method.
"""

from repro.baselines.li_regression import LiRegressionSelector
from repro.baselines.me_cpe import MeCpeSelector, OursSelector
from repro.baselines.median_elimination import MedianEliminationSelector
from repro.baselines.random_oracle import OracleSelector, RandomSelector
from repro.baselines.uniform_sampling import UniformSamplingSelector

__all__ = [
    "UniformSamplingSelector",
    "MedianEliminationSelector",
    "LiRegressionSelector",
    "MeCpeSelector",
    "OursSelector",
    "RandomSelector",
    "OracleSelector",
]
