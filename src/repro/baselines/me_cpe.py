"""Ablation variants built on the shared pipeline.

* :class:`MeCpeSelector` — ME-CPE: cross-domain performance estimation
  without learning-gain estimation (Table V's ablation row).
* :class:`OursSelector` — the full proposed method, exposed with the same
  constructor signature as the baselines so the experiment harness can
  instantiate every method uniformly.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.core.cpe import CPEConfig
from repro.core.lge import LGEConfig
from repro.core.pipeline import (
    CrossDomainWorkerSelector,
    RoundDiagnostics,
    build_cpe_config,
    build_lge_config,
)
from repro.core.registry import register_selector
from repro.core.selector import BaseWorkerSelector, SelectionResult
from repro.platform.session import AnnotationEnvironment
from repro.stats.rng import SeedLike


class MeCpeSelector(BaseWorkerSelector):
    """Median Elimination guided by CPE estimates, without LGE."""

    name = "me-cpe"

    def __init__(self, cpe_config: Optional[CPEConfig] = None, rng: SeedLike = None) -> None:
        self._inner = CrossDomainWorkerSelector(
            cpe_config=cpe_config,
            use_cpe=True,
            use_lge=False,
            rng=rng,
            name=self.name,
        )

    def select(self, environment: AnnotationEnvironment, k: Optional[int] = None) -> SelectionResult:
        return self._inner.select(environment, k)

    def stepwise(
        self, environment: AnnotationEnvironment, k: Optional[int] = None
    ) -> Generator[RoundDiagnostics, None, SelectionResult]:
        return (yield from self._inner.stepwise(environment, k))


class OursSelector(BaseWorkerSelector):
    """The full proposed method: CPE + LGE on top of budgeted Median Elimination."""

    name = "ours"

    def __init__(
        self,
        cpe_config: Optional[CPEConfig] = None,
        lge_config: Optional[LGEConfig] = None,
        rng: SeedLike = None,
    ) -> None:
        self._inner = CrossDomainWorkerSelector(
            cpe_config=cpe_config,
            lge_config=lge_config,
            use_cpe=True,
            use_lge=True,
            rng=rng,
            name=self.name,
        )

    def select(self, environment: AnnotationEnvironment, k: Optional[int] = None) -> SelectionResult:
        return self._inner.select(environment, k)

    def stepwise(
        self, environment: AnnotationEnvironment, k: Optional[int] = None
    ) -> Generator[RoundDiagnostics, None, SelectionResult]:
        return (yield from self._inner.stepwise(environment, k))


@register_selector("me-cpe", aliases=("mecpe",))
def _build_me_cpe(
    seed: SeedLike = None,
    target_initial_accuracy: Optional[float] = None,
    cpe_epochs: Optional[int] = None,
    cpe_engine: Optional[str] = None,
    cpe_config: Optional[CPEConfig] = None,
) -> MeCpeSelector:
    """The ME-CPE ablation: cross-domain estimation without learning gains."""
    return MeCpeSelector(
        cpe_config=cpe_config or build_cpe_config(target_initial_accuracy, cpe_epochs, cpe_engine),
        rng=seed,
    )


@register_selector("ours", aliases=("cpe-lge",))
def _build_ours(
    seed: SeedLike = None,
    target_initial_accuracy: Optional[float] = None,
    cpe_epochs: Optional[int] = None,
    cpe_engine: Optional[str] = None,
    cpe_config: Optional[CPEConfig] = None,
    lge_config: Optional[LGEConfig] = None,
) -> OursSelector:
    """The paper's full method: CPE + LGE on budgeted Median Elimination."""
    return OursSelector(
        cpe_config=cpe_config or build_cpe_config(target_initial_accuracy, cpe_epochs, cpe_engine),
        lge_config=lge_config or build_lge_config(target_initial_accuracy),
        rng=seed,
    )


__all__ = ["MeCpeSelector", "OursSelector"]
