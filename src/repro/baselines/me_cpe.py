"""Ablation variants built on the shared pipeline.

* :class:`MeCpeSelector` — ME-CPE: cross-domain performance estimation
  without learning-gain estimation (Table V's ablation row).
* :class:`OursSelector` — the full proposed method, exposed with the same
  constructor signature as the baselines so the experiment harness can
  instantiate every method uniformly.
"""

from __future__ import annotations

from typing import Optional

from repro.core.cpe import CPEConfig
from repro.core.lge import LGEConfig
from repro.core.pipeline import CrossDomainWorkerSelector
from repro.core.selector import BaseWorkerSelector, SelectionResult
from repro.platform.session import AnnotationEnvironment
from repro.stats.rng import SeedLike


class MeCpeSelector(BaseWorkerSelector):
    """Median Elimination guided by CPE estimates, without LGE."""

    name = "me-cpe"

    def __init__(self, cpe_config: Optional[CPEConfig] = None, rng: SeedLike = None) -> None:
        self._inner = CrossDomainWorkerSelector(
            cpe_config=cpe_config,
            use_cpe=True,
            use_lge=False,
            rng=rng,
            name=self.name,
        )

    def select(self, environment: AnnotationEnvironment, k: Optional[int] = None) -> SelectionResult:
        return self._inner.select(environment, k)


class OursSelector(BaseWorkerSelector):
    """The full proposed method: CPE + LGE on top of budgeted Median Elimination."""

    name = "ours"

    def __init__(
        self,
        cpe_config: Optional[CPEConfig] = None,
        lge_config: Optional[LGEConfig] = None,
        rng: SeedLike = None,
    ) -> None:
        self._inner = CrossDomainWorkerSelector(
            cpe_config=cpe_config,
            lge_config=lge_config,
            use_cpe=True,
            use_lge=True,
            rng=rng,
            name=self.name,
        )

    def select(self, environment: AnnotationEnvironment, k: Optional[int] = None) -> SelectionResult:
        return self._inner.select(environment, k)


__all__ = ["MeCpeSelector", "OursSelector"]
