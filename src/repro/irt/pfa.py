"""Performance Factor Analysis (PFA).

PFA (Pavlik, Cen & Koedinger, 2009) extends the Rasch model by replacing
the single proficiency with counts of prior successes and failures per
skill:

    p = sigmoid(beta + gamma * successes + rho * failures)

The paper cites PFA as one of the factor-analysis knowledge-tracing models;
we provide it as an optional learning model so the LGE component can be
swapped out in ablation experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.irt.rasch import sigmoid


@dataclass
class PerformanceFactorModel:
    """Single-skill PFA model.

    Attributes
    ----------
    easiness:
        The skill easiness intercept (``beta`` in PFA's notation, i.e. the
        *negative* of a Rasch difficulty).
    success_weight:
        Increment to the logit per prior correct answer (``gamma >= 0``).
    failure_weight:
        Increment to the logit per prior incorrect answer (``rho``); usually
        smaller than ``success_weight`` and possibly negative.
    """

    easiness: float = 0.0
    success_weight: float = 0.1
    failure_weight: float = 0.02

    def probability(self, successes: int, failures: int) -> float:
        """Probability of a correct answer given prior success/failure counts."""
        if successes < 0 or failures < 0:
            raise ValueError("success/failure counts must be non-negative")
        logit = self.easiness + self.success_weight * successes + self.failure_weight * failures
        return float(sigmoid(logit))

    def trace(self, responses: Sequence[int]) -> List[float]:
        """Predicted accuracy before each response in a sequence."""
        successes = 0
        failures = 0
        predictions = []
        for response in responses:
            if response not in (0, 1, True, False):
                raise ValueError("responses must be binary")
            predictions.append(self.probability(successes, failures))
            if response:
                successes += 1
            else:
                failures += 1
        return predictions

    def predicted_accuracy(self, responses: Sequence[int]) -> float:
        """Predicted accuracy on the next task after the given history."""
        responses = list(responses)
        successes = int(sum(1 for r in responses if r))
        failures = len(responses) - successes
        return self.probability(successes, failures)

    def expected_accuracy_curve(self, n_tasks: int, latent_accuracy: float | None = None) -> np.ndarray:
        """Expected accuracy after ``0..n_tasks`` tasks.

        When ``latent_accuracy`` is given, successes accrue at that rate in
        expectation; otherwise the model's own predictions are used
        self-consistently.
        """
        if n_tasks < 0:
            raise ValueError("n_tasks must be non-negative")
        expected_successes = 0.0
        expected_failures = 0.0
        curve = []
        for _ in range(n_tasks + 1):
            logit = (
                self.easiness
                + self.success_weight * expected_successes
                + self.failure_weight * expected_failures
            )
            p = float(sigmoid(logit))
            curve.append(p)
            rate = latent_accuracy if latent_accuracy is not None else p
            expected_successes += rate
            expected_failures += 1.0 - rate
        return np.asarray(curve)


__all__ = ["PerformanceFactorModel"]
