"""The paper's modified IRT learning-curve model (Eq. 10).

A worker's proficiency on the target domain grows with the amount of
training received: ``theta_i = alpha_i * ln(K_j + 1)`` where ``K_j`` is the
cumulative number of learning tasks assigned to the worker up to round
``j``.  Substituting into the Rasch model gives

    p_hat(j, i, d) = g(alpha_i, beta_d, K_j)
                   = 1 / (1 + exp(-(alpha_i * ln(K_j + 1) - beta_d)))

This module implements ``g`` and the cumulative-exposure bookkeeping
``K_j = (2^j - 1) * t / |W|`` used by the budgeted elimination schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.irt.rasch import sigmoid


def cumulative_learning_tasks(round_index: int, per_round_budget: int, pool_size: int) -> float:
    """Cumulative learning tasks ``K_j`` per remaining worker up to a round.

    The paper's schedule halves the worker pool every round while keeping the
    per-round budget ``t`` fixed, so the per-worker share doubles each round;
    summing the geometric series gives ``K_j = (2^j - 1) * t / |W|``.

    Parameters
    ----------
    round_index:
        1-based round index ``j``; ``j = 0`` means "before any training" and
        returns 0.
    per_round_budget:
        The fixed per-round budget ``t`` (Eq. 13).
    pool_size:
        The initial worker-pool size ``|W|``.
    """
    if round_index < 0:
        raise ValueError(f"round_index must be non-negative, got {round_index}")
    if pool_size <= 0:
        raise ValueError(f"pool_size must be positive, got {pool_size}")
    if per_round_budget < 0:
        raise ValueError(f"per_round_budget must be non-negative, got {per_round_budget}")
    if round_index == 0:
        return 0.0
    return float((2**round_index - 1) * per_round_budget / pool_size)


@dataclass(frozen=True)
class LearningCurveModel:
    """The modified IRT model ``g(alpha, beta, K)`` of Eq. (10).

    Attributes
    ----------
    learning_rate:
        The per-worker learning parameter ``alpha_i``.
    difficulty:
        The per-domain difficulty parameter ``beta_d``.
    """

    learning_rate: float
    difficulty: float

    def proficiency(self, exposure: float | np.ndarray) -> float | np.ndarray:
        """Proficiency ``theta = alpha * ln(K + 1)`` at a given exposure."""
        exposure = np.asarray(exposure, dtype=float)
        if np.any(exposure < 0):
            raise ValueError("exposure (cumulative learning tasks) must be non-negative")
        result = self.learning_rate * np.log1p(exposure)
        return float(result) if result.ndim == 0 else result

    def probability(self, exposure: float | np.ndarray) -> float | np.ndarray:
        """Predicted accuracy after ``exposure`` cumulative learning tasks."""
        result = sigmoid(np.asarray(self.proficiency(exposure)) - self.difficulty)
        return float(result) if np.ndim(result) == 0 else result

    def probability_trajectory(self, exposures: Sequence[float]) -> np.ndarray:
        """Predicted accuracies along a sequence of cumulative exposures."""
        return np.asarray(self.probability(np.asarray(list(exposures), dtype=float)))

    def exposure_for_accuracy(self, accuracy: float, max_exposure: float = 1e6) -> float:
        """Invert the curve: exposure needed to reach a target accuracy.

        Returns ``inf`` when the accuracy is unreachable (e.g. the learning
        rate is non-positive and the target exceeds the starting accuracy).
        """
        if not 0.0 < accuracy < 1.0:
            raise ValueError("accuracy must lie strictly inside (0, 1)")
        required_theta = np.log(accuracy / (1.0 - accuracy)) + self.difficulty
        if self.learning_rate <= 0:
            return 0.0 if required_theta <= 0 else float("inf")
        exposure = float(np.expm1(required_theta / self.learning_rate))
        if exposure < 0:
            return 0.0
        if exposure > max_exposure:
            return float("inf")
        return exposure


__all__ = ["LearningCurveModel", "cumulative_learning_tasks"]
