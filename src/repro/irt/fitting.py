"""Per-worker learning-rate fitting (Eq. 11).

Each round, the LGE component refits every remaining worker's learning
parameter ``alpha_i`` by least squares against two kinds of evidence:

* the worker's historical accuracy on every prior domain ``d``, matched by
  the learning-curve prediction at exposure ``n_{i,d}`` (the number of tasks
  the worker completed on that domain) and difficulty ``beta_d``;
* the CPE-estimated target-domain accuracy of every completed round ``j``,
  matched by the learning-curve prediction at exposure ``K_{j-1}`` (what the
  worker had been trained with when producing those answers) and difficulty
  ``beta_T``.

Both kinds reduce to generic ``(exposure, difficulty, observed accuracy)``
triples, so the fit is a bounded one-dimensional least-squares problem.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence


from repro.irt.learning_curve import LearningCurveModel
from repro.stats.optimize import minimize_scalar_bounded

DEFAULT_ALPHA_BOUNDS = (0.0, 10.0)


@dataclass(frozen=True)
class AlphaFitObservation:
    """One ``(exposure, difficulty, observed accuracy)`` residual term of Eq. 11.

    Attributes
    ----------
    exposure:
        Cumulative number of tasks behind the observation (``n_{i,d}`` for a
        prior domain, ``K_{j-1}`` for a target-domain round).
    difficulty:
        The domain difficulty ``beta`` applicable to the observation.
    observed_accuracy:
        The accuracy the learning-curve prediction should match (historical
        accuracy ``h_{i,d}`` or CPE estimate ``p_{j,i}``).
    weight:
        Optional non-negative weight for the squared residual.
    """

    exposure: float
    difficulty: float
    observed_accuracy: float
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.exposure < 0:
            raise ValueError(f"exposure must be non-negative, got {self.exposure}")
        if not 0.0 <= self.observed_accuracy <= 1.0:
            raise ValueError(f"observed_accuracy must lie in [0, 1], got {self.observed_accuracy}")
        if self.weight < 0:
            raise ValueError(f"weight must be non-negative, got {self.weight}")


def sum_of_squares(alpha: float, observations: Sequence[AlphaFitObservation]) -> float:
    """The Eq. (11) objective evaluated at a candidate ``alpha``."""
    total = 0.0
    for obs in observations:
        model = LearningCurveModel(learning_rate=alpha, difficulty=obs.difficulty)
        predicted = model.probability(obs.exposure)
        total += obs.weight * (predicted - obs.observed_accuracy) ** 2
    return total


def fit_learning_rate(
    observations: Iterable[AlphaFitObservation],
    bounds: tuple[float, float] = DEFAULT_ALPHA_BOUNDS,
    n_grid: int = 40,
) -> float:
    """Least-squares estimate of the learning parameter ``alpha_i``.

    Parameters
    ----------
    observations:
        The residual terms assembled by the LGE estimator.
    bounds:
        Search interval for ``alpha``; the lower bound of 0 encodes the
        assumption that training never makes a worker worse in expectation.
    n_grid:
        Grid density for the global search that seeds the Brent refinement.

    Returns
    -------
    float
        The fitted ``alpha``; when no observations are supplied the lower
        bound is returned (a flat learning curve).
    """
    observation_list = list(observations)
    lower, upper = bounds
    if upper <= lower:
        raise ValueError("bounds must satisfy lower < upper")
    if not observation_list:
        return float(lower)
    return float(
        minimize_scalar_bounded(lambda a: sum_of_squares(a, observation_list), lower, upper, n_grid=n_grid)
    )


__all__ = ["AlphaFitObservation", "fit_learning_rate", "sum_of_squares", "DEFAULT_ALPHA_BOUNDS"]
