"""Difficulty-parameter initialisation.

Section V-C of the paper initialises per-domain difficulties from the
average annotation accuracy ``a_d`` observed on the domain:

    beta_d = ln(1 / a_d - 1)

so that a fresh worker (``K = 0``, hence ``theta = 0``) has predicted
accuracy exactly ``a_d``.  For the target domain the paper sets
``beta_T = 0`` i.e. ``a_T = 0.5``, the natural prior for Yes/No questions,
and Figure 5 studies sensitivity to this choice.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

_EPS = 1e-6


def difficulty_from_accuracy(accuracy: float | Sequence[float]) -> float | np.ndarray:
    """Map an initial accuracy ``a`` to the Rasch difficulty ``beta = ln(1/a - 1)``."""
    array = np.clip(np.asarray(accuracy, dtype=float), _EPS, 1.0 - _EPS)
    result = np.log(1.0 / array - 1.0)
    return float(result) if result.ndim == 0 else result


def accuracy_from_difficulty(difficulty: float | Sequence[float]) -> float | np.ndarray:
    """Inverse map: the accuracy a fresh worker achieves at difficulty ``beta``."""
    array = np.asarray(difficulty, dtype=float)
    result = 1.0 / (1.0 + np.exp(np.clip(array, -500, 500)))
    return float(result) if result.ndim == 0 else result


def prior_domain_difficulties(domain_mean_accuracies: Sequence[float]) -> np.ndarray:
    """Difficulties for every prior domain from their mean accuracies."""
    return np.atleast_1d(difficulty_from_accuracy(np.asarray(list(domain_mean_accuracies), dtype=float)))


__all__ = ["difficulty_from_accuracy", "accuracy_from_difficulty", "prior_domain_difficulties"]
