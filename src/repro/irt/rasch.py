"""The Rasch one-parameter logistic (1PL) IRT model.

The probability that a worker with proficiency ``theta`` answers a question
of difficulty ``beta`` correctly is

    p(theta) = 1 / (1 + exp(-(theta - beta)))                       (Eq. 9)

This module also provides a maximum-likelihood fit of ``theta`` from a
sequence of graded responses, which is useful when calibrating simulated
real-world workers from summary statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.stats.optimize import minimize_scalar_bounded

_CLIP = 500.0  # exp overflow guard


def sigmoid(x: np.ndarray | float) -> np.ndarray | float:
    """Numerically stable logistic function."""
    x = np.clip(x, -_CLIP, _CLIP)
    return 1.0 / (1.0 + np.exp(-x))


def logit(p: np.ndarray | float, eps: float = 1e-9) -> np.ndarray | float:
    """Inverse of :func:`sigmoid`, clamped away from 0 and 1."""
    p = np.clip(p, eps, 1.0 - eps)
    return np.log(p / (1.0 - p))


@dataclass(frozen=True)
class RaschModel:
    """A Rasch 1PL model with a fixed difficulty parameter.

    Attributes
    ----------
    difficulty:
        The item/domain difficulty ``beta``.
    """

    difficulty: float

    def probability(self, proficiency: np.ndarray | float) -> np.ndarray | float:
        """Probability of a correct answer given proficiency ``theta``."""
        return sigmoid(np.asarray(proficiency, dtype=float) - self.difficulty)

    def log_likelihood(self, proficiency: float, responses: Sequence[int]) -> float:
        """Log-likelihood of binary responses under proficiency ``theta``."""
        responses = np.asarray(responses, dtype=float)
        if responses.size == 0:
            return 0.0
        if np.any((responses != 0) & (responses != 1)):
            raise ValueError("responses must be binary (0/1)")
        p = float(self.probability(proficiency))
        p = float(np.clip(p, 1e-12, 1.0 - 1e-12))
        correct = responses.sum()
        wrong = responses.size - correct
        return float(correct * np.log(p) + wrong * np.log(1.0 - p))

    def fit_proficiency(
        self,
        responses: Sequence[int],
        lower: float = -10.0,
        upper: float = 10.0,
    ) -> float:
        """Maximum-likelihood proficiency given binary responses.

        With a single item difficulty the MLE is available in closed form
        (``beta + logit(accuracy)``) except at the boundaries, where the
        bounded search keeps the estimate finite.
        """
        responses = np.asarray(responses, dtype=float)
        if responses.size == 0:
            return self.difficulty
        accuracy = float(responses.mean())
        if 0.0 < accuracy < 1.0:
            return float(self.difficulty + logit(accuracy))
        return minimize_scalar_bounded(lambda theta: -self.log_likelihood(theta, responses), lower, upper)


__all__ = ["RaschModel", "sigmoid", "logit"]
