"""Bayesian Knowledge Tracing (BKT).

The paper's related-work section surveys BKT (Corbett & Anderson, 1994) as
an alternative family of knowledge-tracing models.  We implement the
classic four-parameter model so that the LGE component can be ablated
against it (see ``benchmarks/bench_ablation_learning_models.py``): the
worker's mastery of the target domain is a hidden binary state updated by
Bayes' rule after every observed answer.

Parameters
----------
p_init:
    Probability the skill is already mastered before any training.
p_learn:
    Probability of transitioning from unmastered to mastered after a task.
p_slip:
    Probability of answering incorrectly despite mastery.
p_guess:
    Probability of answering correctly without mastery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np


def _validate_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value}")


@dataclass
class BayesianKnowledgeTracing:
    """Classic four-parameter BKT over a single skill (the target domain)."""

    p_init: float = 0.2
    p_learn: float = 0.15
    p_slip: float = 0.1
    p_guess: float = 0.25

    def __post_init__(self) -> None:
        for name in ("p_init", "p_learn", "p_slip", "p_guess"):
            _validate_probability(name, getattr(self, name))
        if self.p_guess >= 1.0 - self.p_slip:
            # Degenerate ("model collapse") configurations make mastery
            # unidentifiable; keep them out.
            raise ValueError("require p_guess < 1 - p_slip for an identifiable model")

    # ------------------------------------------------------------------ #
    def correct_probability(self, p_mastery: float) -> float:
        """Probability of a correct answer given the current mastery belief."""
        _validate_probability("p_mastery", p_mastery)
        return p_mastery * (1.0 - self.p_slip) + (1.0 - p_mastery) * self.p_guess

    def posterior_mastery(self, p_mastery: float, correct: bool) -> float:
        """Bayes update of the mastery belief after observing one answer."""
        _validate_probability("p_mastery", p_mastery)
        if correct:
            numerator = p_mastery * (1.0 - self.p_slip)
            denominator = self.correct_probability(p_mastery)
        else:
            numerator = p_mastery * self.p_slip
            denominator = 1.0 - self.correct_probability(p_mastery)
        if denominator < 1e-12:
            posterior = p_mastery
        else:
            posterior = numerator / denominator
        # Learning transition applied after the observation.
        return posterior + (1.0 - posterior) * self.p_learn

    def trace(self, responses: Sequence[int]) -> List[float]:
        """Mastery beliefs after each response, starting from ``p_init``."""
        belief = self.p_init
        trajectory = []
        for response in responses:
            if response not in (0, 1, True, False):
                raise ValueError("responses must be binary")
            belief = self.posterior_mastery(belief, bool(response))
            trajectory.append(belief)
        return trajectory

    def predicted_accuracy(self, responses: Sequence[int]) -> float:
        """Predicted accuracy on the *next* task after seeing ``responses``."""
        belief = self.p_init if not len(responses) else self.trace(responses)[-1]
        return self.correct_probability(belief)

    def expected_accuracy_curve(self, n_tasks: int) -> np.ndarray:
        """Expected accuracy after ``0..n_tasks`` tasks, marginalising answers.

        Because the learning transition fires after every task regardless of
        correctness, the marginal mastery follows the closed form
        ``1 - (1 - p_init) * (1 - p_learn)^t``.
        """
        if n_tasks < 0:
            raise ValueError("n_tasks must be non-negative")
        steps = np.arange(n_tasks + 1)
        mastery = 1.0 - (1.0 - self.p_init) * (1.0 - self.p_learn) ** steps
        return mastery * (1.0 - self.p_slip) + (1.0 - mastery) * self.p_guess


__all__ = ["BayesianKnowledgeTracing"]
