"""Item-Response-Theory / knowledge-tracing substrate.

The paper's Learning Gain Estimation (LGE) component models the growth of a
worker's target-domain accuracy during training with a *modified* Rasch
(one-parameter logistic) model:

    p_hat(j, i, d) = sigmoid(alpha_i * ln(K_j + 1) - beta_d)        (Eq. 10)

where ``K_j`` is the cumulative number of learning tasks the worker has seen
by round ``j``, ``alpha_i`` the per-worker learning rate, and ``beta_d`` a
per-domain difficulty.  This package provides:

* the classic Rasch 1PL model (:mod:`repro.irt.rasch`);
* the paper's learning-curve variant (:mod:`repro.irt.learning_curve`);
* difficulty initialisation from average accuracies
  (:mod:`repro.irt.difficulty`);
* the per-worker least-squares fit of ``alpha`` (Eq. 11)
  (:mod:`repro.irt.fitting`);
* two additional knowledge-tracing families the paper surveys — Bayesian
  Knowledge Tracing and Performance Factor Analysis — implemented as
  optional alternatives for ablation studies
  (:mod:`repro.irt.bkt`, :mod:`repro.irt.pfa`).
"""

from repro.irt.bkt import BayesianKnowledgeTracing
from repro.irt.difficulty import accuracy_from_difficulty, difficulty_from_accuracy
from repro.irt.fitting import AlphaFitObservation, fit_learning_rate
from repro.irt.learning_curve import LearningCurveModel, cumulative_learning_tasks
from repro.irt.pfa import PerformanceFactorModel
from repro.irt.rasch import RaschModel, sigmoid

__all__ = [
    "RaschModel",
    "sigmoid",
    "LearningCurveModel",
    "cumulative_learning_tasks",
    "difficulty_from_accuracy",
    "accuracy_from_difficulty",
    "AlphaFitObservation",
    "fit_learning_rate",
    "BayesianKnowledgeTracing",
    "PerformanceFactorModel",
]
