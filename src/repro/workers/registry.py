"""Behavior registry: construct any worker behaviour by name.

Mirrors :mod:`repro.core.registry` for the *worker-behaviour* axis of the
simulation: every behaviour — the paper's static/learning workers and the
contamination behaviours (spammer, adversarial, fatigue, sleeper, drifter)
— registers a keyword-configurable factory under a canonical name (plus
optional aliases), so new behaviours plug into population mixes, scenario
presets and the CLI without touching core code:

>>> from repro.workers.registry import make_behavior
>>> from repro.workers.profile import WorkerProfile
>>> profile = WorkerProfile("w-0", {"a": 0.7}, {"a": 10})
>>> make_behavior("spammer", profile=profile).current_accuracy
0.5

Registering a custom behaviour is one decorator:

>>> from repro.workers.registry import register_behavior
>>> @register_behavior("always-right")
... def _build(profile):
...     ...

Factories take the worker's :class:`~repro.workers.profile.WorkerProfile`
as ``profile`` plus keyword configuration.  Lookup is case-insensitive and
unknown names raise a :class:`KeyError` that lists everything registered.
"""

from __future__ import annotations

import inspect
from typing import Callable, Dict, Iterable, List, Optional

from repro.workers.profile import WorkerProfile

#: A behaviour factory: profile + keyword configuration in, behaviour out.
BehaviorFactory = Callable[..., "object"]


class BehaviorRegistry:
    """A name -> factory mapping with aliases and friendly errors."""

    def __init__(self) -> None:
        self._factories: Dict[str, BehaviorFactory] = {}
        self._aliases: Dict[str, str] = {}

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def register(
        self,
        name: str,
        factory: Optional[BehaviorFactory] = None,
        *,
        aliases: Iterable[str] = (),
        replace: bool = False,
    ):
        """Register ``factory`` under ``name`` (usable as a decorator)."""

        def _register(target: BehaviorFactory) -> BehaviorFactory:
            canonical = self._canonical(name)
            if not replace:
                if canonical in self._factories:
                    raise ValueError(
                        f"behavior {canonical!r} is already registered (pass replace=True to override)"
                    )
                if canonical in self._aliases:
                    raise ValueError(
                        f"{canonical!r} is already an alias of behavior {self._aliases[canonical]!r} "
                        f"(pass replace=True to claim the name)"
                    )
            self._aliases.pop(canonical, None)
            self._factories[canonical] = target
            for alias in aliases:
                alias_key = self._canonical(alias)
                if alias_key == canonical:
                    continue
                if alias_key in self._factories:
                    raise ValueError(
                        f"alias {alias_key!r} collides with the registered behavior {alias_key!r}; "
                        f"re-register that behavior instead"
                    )
                existing = self._aliases.get(alias_key)
                if not replace and existing is not None and existing != canonical:
                    raise ValueError(f"alias {alias_key!r} already points at behavior {existing!r}")
                self._aliases[alias_key] = canonical
            return target

        if factory is not None:
            return _register(factory)
        return _register

    def unregister(self, name: str) -> None:
        """Remove a registration and every alias pointing at it."""
        canonical = self.resolve(name)
        del self._factories[canonical]
        for alias in [a for a, target in self._aliases.items() if target == canonical]:
            del self._aliases[alias]

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    @staticmethod
    def _canonical(name: str) -> str:
        return name.strip().lower()

    def resolve(self, name: str) -> str:
        """Canonical name for ``name`` (follows aliases); KeyError if unknown."""
        key = self._canonical(name)
        key = self._aliases.get(key, key)
        if key not in self._factories:
            raise KeyError(f"unknown behavior {name!r}; registered behaviors: {', '.join(self.names())}")
        return key

    def __contains__(self, name: str) -> bool:
        key = self._canonical(name)
        return self._aliases.get(key, key) in self._factories

    def names(self) -> List[str]:
        """Canonical names of every registered behavior, sorted."""
        return sorted(self._factories)

    def describe(self, name: str) -> str:
        """One-line human-readable description: name, signature, docstring."""
        canonical = self.resolve(name)
        factory = self._factories[canonical]
        doc = (inspect.getdoc(factory) or "").split("\n", 1)[0]
        signature = inspect.signature(factory)
        return f"{canonical}{signature} — {doc}" if doc else f"{canonical}{signature}"

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def create(self, name: str, *, profile: WorkerProfile, **config: object):
        """Build the behaviour registered under ``name`` for ``profile``."""
        canonical = self.resolve(name)
        factory = self._factories[canonical]
        try:
            return factory(profile=profile, **config)
        except TypeError as exc:
            raise TypeError(
                f"invalid configuration for behavior {canonical!r}: {exc} "
                f"(signature: {canonical}{inspect.signature(factory)})"
            ) from exc


#: The process-wide registry used by :func:`make_behavior` and the samplers.
GLOBAL_BEHAVIOR_REGISTRY = BehaviorRegistry()

_BUILTINS_LOADED = False


def _load_builtin_behaviors() -> None:
    """Register the built-in behaviour classes (idempotent)."""
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    from repro.workers import behavior as b

    registry = GLOBAL_BEHAVIOR_REGISTRY
    registry.register("static", b.StaticWorker, aliases=("fixed",), replace=True)
    registry.register("learning", b.LearningWorker, replace=True)
    registry.register("spammer", b.SpammerWorker, aliases=("spam",), replace=True)
    registry.register("adversarial", b.AdversarialWorker, aliases=("adv",), replace=True)
    registry.register("fatigue", b.FatigueWorker, aliases=("fatigued",), replace=True)
    registry.register("sleeper", b.SleeperWorker, aliases=("sleep",), replace=True)
    registry.register("drifter", b.DrifterWorker, aliases=("drift",), replace=True)
    _BUILTINS_LOADED = True


def register_behavior(
    name: str,
    factory: Optional[BehaviorFactory] = None,
    *,
    aliases: Iterable[str] = (),
    replace: bool = False,
):
    """Register a behaviour factory in the global registry (decorator-friendly)."""
    return GLOBAL_BEHAVIOR_REGISTRY.register(name, factory, aliases=aliases, replace=replace)


def make_behavior(name: str, *, profile: WorkerProfile, **config: object):
    """Construct a registered behaviour by name for one worker profile."""
    _load_builtin_behaviors()
    return GLOBAL_BEHAVIOR_REGISTRY.create(name, profile=profile, **config)


def behavior_names() -> List[str]:
    """Canonical names of every registered behaviour."""
    _load_builtin_behaviors()
    return GLOBAL_BEHAVIOR_REGISTRY.names()


def behavior_exists(name: str) -> bool:
    """Whether ``name`` (or an alias of it) is registered."""
    _load_builtin_behaviors()
    return name in GLOBAL_BEHAVIOR_REGISTRY


def resolve_behavior_name(name: str) -> str:
    """Canonical registered name for ``name`` (follows aliases, fixes case)."""
    _load_builtin_behaviors()
    return GLOBAL_BEHAVIOR_REGISTRY.resolve(name)


def describe_behavior(name: str) -> str:
    """Human-readable signature line for a registered behaviour."""
    _load_builtin_behaviors()
    return GLOBAL_BEHAVIOR_REGISTRY.describe(name)


__all__ = [
    "BehaviorFactory",
    "BehaviorRegistry",
    "GLOBAL_BEHAVIOR_REGISTRY",
    "register_behavior",
    "make_behavior",
    "behavior_names",
    "behavior_exists",
    "resolve_behavior_name",
    "describe_behavior",
]
