"""Worker historical profiles (Definition 2 of the paper).

Each worker ``w_i`` carries a historical profile ``(h_i, n_i)`` where
``h_{i,d}`` is the annotation accuracy the worker achieved on prior domain
``d`` and ``n_{i,d}`` the number of annotation tasks completed there.  A
missing record on some domain is allowed (Section IV-E): the selection
algorithms drop the corresponding rows/terms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Mapping, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class WorkerProfile:
    """Historical ``(h_i, n_i)`` profile of a single worker.

    Attributes
    ----------
    worker_id:
        Stable identifier within the pool.
    accuracies:
        Mapping from prior-domain name to the worker's historical accuracy
        there; domains the worker never annotated are simply absent.
    task_counts:
        Mapping from prior-domain name to the number of tasks the worker
        completed there; keys must match ``accuracies``.
    """

    worker_id: str
    accuracies: Mapping[str, float] = field(default_factory=dict)
    task_counts: Mapping[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if set(self.accuracies) != set(self.task_counts):
            raise ValueError(
                f"worker {self.worker_id}: accuracies and task_counts must cover the same domains"
            )
        for domain, accuracy in self.accuracies.items():
            if not 0.0 <= accuracy <= 1.0:
                raise ValueError(f"worker {self.worker_id}: accuracy on {domain!r} must lie in [0, 1]")
        for domain, count in self.task_counts.items():
            if count < 0:
                raise ValueError(f"worker {self.worker_id}: task count on {domain!r} must be non-negative")

    # ------------------------------------------------------------------ #
    @property
    def domains(self) -> Tuple[str, ...]:
        """Prior domains with a recorded history, in sorted order."""
        return tuple(sorted(self.accuracies))

    def has_domain(self, domain: str) -> bool:
        """Whether the worker has any history on ``domain``."""
        return domain in self.accuracies

    def accuracy_vector(self, domain_order: Sequence[str]) -> np.ndarray:
        """Accuracies in a fixed domain order; missing domains become NaN."""
        return np.array([self.accuracies.get(d, np.nan) for d in domain_order], dtype=float)

    def task_count_vector(self, domain_order: Sequence[str]) -> np.ndarray:
        """Task counts in a fixed domain order; missing domains become 0."""
        return np.array([self.task_counts.get(d, 0) for d in domain_order], dtype=float)

    def observed_indices(self, domain_order: Sequence[str]) -> List[int]:
        """Indices (within ``domain_order``) of domains the worker has history on."""
        return [i for i, d in enumerate(domain_order) if d in self.accuracies]

    def with_domain(self, domain: str, accuracy: float, task_count: int) -> "WorkerProfile":
        """Return a copy of the profile extended with one more prior domain."""
        accuracies = dict(self.accuracies)
        counts = dict(self.task_counts)
        accuracies[domain] = accuracy
        counts[domain] = task_count
        return WorkerProfile(self.worker_id, accuracies, counts)


def profiles_to_matrix(
    profiles: Iterable[WorkerProfile],
    domain_order: Sequence[str],
) -> Tuple[np.ndarray, np.ndarray]:
    """Stack profiles into ``(H, N)`` matrices in a fixed domain order.

    Missing accuracies are NaN in ``H`` and zero in ``N``; downstream
    estimators must handle NaN rows explicitly (per Section IV-E).
    """
    profile_list = list(profiles)
    accuracy_matrix = np.vstack([p.accuracy_vector(domain_order) for p in profile_list]) if profile_list else np.empty((0, len(domain_order)))
    count_matrix = np.vstack([p.task_count_vector(domain_order) for p in profile_list]) if profile_list else np.empty((0, len(domain_order)))
    return accuracy_matrix, count_matrix


__all__ = ["WorkerProfile", "profiles_to_matrix"]
