"""Worker-population samplers.

Section V-A of the paper generates synthetic worker pools by sampling the
per-domain accuracy vector ``[h_1, ..., h_D, h_T]`` of every worker from a
multivariate normal truncated to ``(0, 1)`` whose prior-domain moments match
RW-1 and whose inter-domain correlations are drawn uniformly at random.
Target-domain learning dynamics are then attached following the paper's own
recipe: every worker starts at the cold-start accuracy ``a_T`` (0.5 for
Yes/No questions) and the modified IRT model is inverted on the first batch
so that the worker reaches its sampled quality ``h_T`` after ``Q`` revealed
learning tasks:

    alpha_i = gain_scale * (logit(h_T) - logit(a_T)) / ln(Q + 1)
    accuracy_i(K) = sigmoid(logit(a_T) + alpha_i * ln(K + 1))

This is the ``"target_quality"`` learning mode (the default for the
synthetic datasets).  A second, ``"calibrated"`` mode keeps the sampled
``h_T`` as the *initial* accuracy and draws learning rates from an explicit
distribution — useful for custom scenarios where workers arrive with prior
exposure to the target domain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.irt.rasch import logit
from repro.stats.mvn import MultivariateNormalModel
from repro.stats.rng import SeedLike, as_generator
from repro.stats.truncated import sample_truncated_mvn
from repro.workers.behavior import LearningWorker, WorkerBehavior
from repro.workers.profile import WorkerProfile
from repro.workers.registry import make_behavior, resolve_behavior_name

_ACCURACY_EPS = 0.02  # keep sampled accuracies away from the {0, 1} boundary

LEARNING_MODES = ("target_quality", "calibrated")


@dataclass
class PopulationConfig:
    """Recipe for sampling a worker population.

    Attributes
    ----------
    prior_domains:
        Names of the ``D`` prior domains, in order.
    target_domain:
        Name of the target domain.
    prior_means, prior_stds:
        Per-prior-domain mean and standard deviation of worker accuracy
        (the paper's Table IV values).
    target_mean, target_std:
        Moments of the sampled target-domain quality ``h_T``.  In
        ``"target_quality"`` mode this is the accuracy a worker reaches
        after the first batch of ``reference_exposure`` learning tasks
        (exactly how the paper measures its Table IV target moments); in
        ``"calibrated"`` mode it is the pre-training accuracy.
    correlations:
        Either an explicit ``(D+1) x (D+1)`` correlation matrix or ``None``
        to draw the off-diagonal entries uniformly from
        ``correlation_range`` (the paper's construction).
    correlation_range:
        Range for the random correlations when ``correlations`` is ``None``.
    prior_task_count:
        Number of historical tasks recorded per prior domain.
    learning_mode:
        ``"target_quality"`` (paper recipe, default) or ``"calibrated"``.
    start_accuracy:
        Cold-start target-domain accuracy ``a_T`` around which workers start
        in ``"target_quality"`` mode (0.5 for Yes/No tasks).
    initial_spread:
        Fraction (in logit space) of a worker's quality gap that is already
        present *before* any training.  0 reproduces the paper's synthetic
        recipe literally (every worker starts exactly at ``a_T``); positive
        values model workers who bring some target-domain intuition with
        them, which is what the real-world surveys exhibit (Table IV reports
        a 0.17 standard deviation already in the first batch).
    initial_noise_std:
        Standard deviation (logit space) of per-worker noise on the starting
        accuracy, independent of the sampled quality.  Positive values
        create genuine "late bloomers" — workers whose early answers look
        mediocre but who learn quickly — the population the paper argues
        static selection methods filter out.  The learning rate is always
        re-derived so the curve still passes through the sampled quality
        after ``reference_exposure`` tasks, so Table IV's first-batch
        moments are unaffected.
    reference_exposure:
        Number of learning tasks after which a ``"target_quality"`` worker
        reaches its sampled quality ``h_T`` (the target-domain batch size
        ``Q``).  Required in that mode.
    gain_scale:
        Multiplier on the inverted learning rate; 1.0 reproduces the paper's
        synthetic recipe, larger values model the faster human learning the
        real-world surveys exhibit.
    learning_rate_noise_std:
        Standard deviation of additive noise on the learning rate
        (``"target_quality"`` mode); 0 keeps the recipe deterministic.
    min_learning_rate:
        Optional floor on the learning rate.  ``None`` (default) keeps the
        paper's synthetic recipe, in which workers whose sampled quality is
        below the cold-start accuracy drift downwards; ``0.0`` models the
        real-world surveys, where seeing the revealed ground truth never
        makes a worker worse.
    learning_rate_mean, learning_rate_std, learning_rate_correlation:
        Parameters of the explicit learning-rate distribution used by the
        ``"calibrated"`` mode (ignored otherwise).
    behavior_mix:
        Optional contamination recipe: mapping of registered behaviour name
        to the fraction of the pool replaced by that behaviour (e.g.
        ``{"spammer": 0.1, "drifter": 0.2}``).  Fractions must sum to at
        most 1; the remainder of the pool keeps the paper's learning-worker
        recipe.  Contaminated workers keep their sampled historical profiles
        (their prior-domain record looks normal — that is what makes them
        dangerous) but answer target-domain tasks with the named behaviour.
        Names are resolved through :mod:`repro.workers.registry`, so custom
        registered behaviours are reachable too.  The contamination draw
        consumes randomness strictly *after* the base population draw, so a
        contaminated pool shares its clean workers with the uncontaminated
        pool of the same seed (contamination sweeps are paired).
    behavior_params:
        Optional per-behaviour keyword overrides merged over the built-in
        parameter samplers (e.g. ``{"drifter": {"drift_exposure": 120.0}}``).
        Custom behaviours without a built-in sampler receive exactly these
        parameters (plus the profile).
    """

    prior_domains: Sequence[str]
    target_domain: str
    prior_means: Sequence[float]
    prior_stds: Sequence[float]
    target_mean: float
    target_std: float
    correlations: Optional[np.ndarray] = None
    correlation_range: Tuple[float, float] = (0.0, 1.0)
    prior_task_count: int = 10
    learning_mode: str = "target_quality"
    start_accuracy: float = 0.5
    initial_spread: float = 0.0
    initial_noise_std: float = 0.0
    reference_exposure: Optional[float] = None
    gain_scale: float = 1.0
    learning_rate_noise_std: float = 0.0
    min_learning_rate: Optional[float] = None
    learning_rate_mean: float = 0.25
    learning_rate_std: float = 0.12
    learning_rate_correlation: float = 0.0
    behavior_mix: Optional[Mapping[str, float]] = None
    behavior_params: Mapping[str, Mapping[str, object]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        d = len(self.prior_domains)
        if len(self.prior_means) != d or len(self.prior_stds) != d:
            raise ValueError("prior_means/prior_stds must match the number of prior domains")
        if not 0.0 < self.target_mean < 1.0:
            raise ValueError("target_mean must lie in (0, 1)")
        if self.target_std <= 0:
            raise ValueError("target_std must be positive")
        if self.prior_task_count < 0:
            raise ValueError("prior_task_count must be non-negative")
        if self.learning_mode not in LEARNING_MODES:
            raise ValueError(f"learning_mode must be one of {LEARNING_MODES}, got {self.learning_mode!r}")
        if not 0.0 < self.start_accuracy < 1.0:
            raise ValueError("start_accuracy must lie in (0, 1)")
        if not 0.0 <= self.initial_spread < 1.0:
            raise ValueError("initial_spread must lie in [0, 1)")
        if self.initial_noise_std < 0:
            raise ValueError("initial_noise_std must be non-negative")
        if self.learning_mode == "target_quality":
            if self.reference_exposure is None or self.reference_exposure <= 0:
                raise ValueError("target_quality mode requires a positive reference_exposure")
            if self.gain_scale <= 0:
                raise ValueError("gain_scale must be positive")
            if self.learning_rate_noise_std < 0:
                raise ValueError("learning_rate_noise_std must be non-negative")
        if self.learning_rate_std < 0:
            raise ValueError("learning_rate_std must be non-negative")
        if not -1.0 <= self.learning_rate_correlation <= 1.0:
            raise ValueError("learning_rate_correlation must lie in [-1, 1]")
        if self.behavior_mix is not None:
            # Canonicalise names (validates them against the registry) and
            # fix a sorted order so the config's repr — and therefore the
            # experiment store's spec digest — is stable.
            resolved: Dict[str, float] = {}
            for name in sorted(self.behavior_mix):
                fraction = float(self.behavior_mix[name])
                if not 0.0 <= fraction <= 1.0:
                    raise ValueError(f"behavior fraction for {name!r} must lie in [0, 1], got {fraction}")
                canonical = resolve_behavior_name(name)
                resolved[canonical] = resolved.get(canonical, 0.0) + fraction
            if sum(resolved.values()) > 1.0 + 1e-9:
                raise ValueError(f"behavior_mix fractions sum to {sum(resolved.values()):.3f} > 1")
            self.behavior_mix = {name: resolved[name] for name in sorted(resolved)}
        # Canonicalise behavior_params keys through the registry too, so an
        # alias key ("drift") reaches the behaviour its mix entry resolves
        # to instead of being silently ignored.
        canonical_params: Dict[str, Dict[str, object]] = {}
        for name, params in sorted(dict(self.behavior_params).items()):
            canonical_params.setdefault(resolve_behavior_name(name), {}).update(params)
        self.behavior_params = canonical_params

    # ------------------------------------------------------------------ #
    @property
    def n_prior_domains(self) -> int:
        return len(self.prior_domains)

    @property
    def domain_order(self) -> List[str]:
        """Prior domains followed by the target domain."""
        return [*self.prior_domains, self.target_domain]

    def accuracy_model(self, rng: SeedLike = None) -> MultivariateNormalModel:
        """The (untruncated) multivariate normal the accuracy vectors are drawn from."""
        generator = as_generator(rng)
        d = self.n_prior_domains + 1
        means = np.array([*self.prior_means, self.target_mean], dtype=float)
        stds = np.array([*self.prior_stds, self.target_std], dtype=float)
        if self.correlations is not None:
            rho = np.asarray(self.correlations, dtype=float)
            if rho.shape != (d, d):
                raise ValueError(f"correlations must have shape ({d}, {d})")
        else:
            low, high = self.correlation_range
            rho = np.eye(d)
            upper = np.triu_indices(d, k=1)
            rho[upper] = generator.uniform(low, high, size=len(upper[0]))
            rho = rho + rho.T - np.eye(d)
        return MultivariateNormalModel.from_moments(means, stds, rho)


def _target_quality_parameters(
    config: PopulationConfig,
    sampled_qualities: np.ndarray,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray]:
    """Invert the modified IRT model on the first batch (paper recipe).

    Returns ``(initial_accuracies, learning_rates)``: a worker starts
    ``initial_spread`` of the way (in logit space) from the cold-start
    accuracy towards its sampled quality and its learning rate is chosen so
    that the curve passes through the sampled quality after
    ``reference_exposure`` revealed learning tasks (scaled by
    ``gain_scale``).
    """
    start_logit = float(logit(config.start_accuracy))
    quality_logits = np.asarray(logit(sampled_qualities), dtype=float)
    initial_logits = start_logit + config.initial_spread * (quality_logits - start_logit)
    if config.initial_noise_std > 0:
        initial_logits = initial_logits + rng.normal(
            0.0, config.initial_noise_std, size=initial_logits.shape
        )
    initial_accuracies = 1.0 / (1.0 + np.exp(-initial_logits))

    scale = np.log1p(float(config.reference_exposure))
    rates = config.gain_scale * (quality_logits - initial_logits) / scale
    if config.learning_rate_noise_std > 0:
        rates = rates + rng.normal(0.0, config.learning_rate_noise_std, size=rates.shape)
    if config.min_learning_rate is not None:
        rates = np.maximum(rates, config.min_learning_rate)
    return initial_accuracies, rates


def _calibrated_learning_rates(
    config: PopulationConfig,
    initial_accuracies: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw per-worker learning rates, optionally correlated with initial accuracy."""
    n_workers = initial_accuracies.shape[0]
    base = rng.normal(config.learning_rate_mean, config.learning_rate_std, size=n_workers)
    correlation = config.learning_rate_correlation
    if abs(correlation) > 1e-12 and initial_accuracies.std() > 1e-12:
        standardized = (initial_accuracies - initial_accuracies.mean()) / initial_accuracies.std()
        noise = rng.normal(0.0, 1.0, size=n_workers)
        mixed = correlation * standardized + np.sqrt(max(0.0, 1.0 - correlation**2)) * noise
        base = config.learning_rate_mean + config.learning_rate_std * mixed
    return np.clip(base, 0.0, None)


def _contamination_counts(mix: Mapping[str, float], n_workers: int) -> Dict[str, int]:
    """Largest-remainder apportionment of contaminated workers per behaviour.

    Deterministic (ties broken by name) so a pool's composition is a pure
    function of the configuration — no randomness is consumed here.
    """
    exact = {name: fraction * n_workers for name, fraction in mix.items()}
    counts = {name: int(np.floor(value)) for name, value in exact.items()}
    leftover = int(round(sum(exact.values()))) - sum(counts.values())
    by_remainder = sorted(exact, key=lambda name: (-(exact[name] - counts[name]), name))
    for name in by_remainder[:max(leftover, 0)]:
        counts[name] += 1
    return {name: count for name, count in counts.items() if count > 0}


def _builtin_mix_params(
    name: str,
    quality: float,
    config: PopulationConfig,
    generator: np.random.Generator,
) -> Dict[str, object]:
    """Construction parameters for one contaminated worker of a built-in kind.

    ``quality`` is the worker's sampled target-domain quality ``h_T`` — the
    accuracy the worker *would* have reached as a learner — so contaminated
    pools stay anchored to the same population moments.  Each behaviour
    consumes a fixed number of generator draws regardless of ``quality`` so
    the stream stays aligned across workers.
    """
    reference = float(config.reference_exposure) if config.reference_exposure else 20.0
    if name == "spammer":
        return {}
    if name == "adversarial":
        return {"accuracy": float(np.clip(1.0 - quality, 0.05, 0.45))}
    if name == "fatigue":
        return {
            "initial_accuracy": float(np.clip(quality, 0.55, 0.95)),
            "fatigue_rate": float(generator.uniform(0.15, 0.45)),
        }
    if name == "sleeper":
        return {
            "awake_accuracy": float(np.clip(quality, 0.55, 0.98)),
            "period": float(generator.uniform(0.8, 2.5) * reference),
            "sleep_fraction": float(generator.uniform(0.2, 0.5)),
            "phase": float(generator.uniform(0.0, 1.0)),
        }
    if name == "drifter":
        drop = float(generator.uniform(0.2, 0.4))
        start = float(np.clip(quality, 0.55, 0.95))
        return {
            "initial_accuracy": start,
            "drifted_accuracy": float(np.clip(start - drop, 0.05, 1.0)),
            "drift_exposure": float(generator.uniform(1.0, 3.0) * reference),
        }
    return {}


def _contaminate(
    workers: List[WorkerBehavior],
    sampled_target: np.ndarray,
    config: PopulationConfig,
    generator: np.random.Generator,
) -> List[WorkerBehavior]:
    """Replace a deterministic subset of the pool with mixed-in behaviours."""
    counts = _contamination_counts(config.behavior_mix or {}, len(workers))
    total = sum(counts.values())
    if total == 0:
        return workers
    # One permutation draw selects every contaminated slot; slices are
    # assigned behaviour by behaviour in sorted-name order.
    chosen = generator.permutation(len(workers))[:total]
    cursor = 0
    for name in sorted(counts):
        for index in sorted(int(i) for i in chosen[cursor:cursor + counts[name]]):
            params = _builtin_mix_params(name, float(sampled_target[index]), config, generator)
            params.update(config.behavior_params.get(name, {}))
            workers[index] = make_behavior(name, profile=workers[index].profile, **params)
        cursor += counts[name]
    return workers


def sample_learning_population(
    config: PopulationConfig,
    n_workers: int,
    rng: SeedLike = None,
    id_prefix: str = "worker",
    id_offset: int = 0,
) -> List[WorkerBehavior]:
    """Sample a worker pool according to ``config``.

    Without a ``behavior_mix`` every worker is a
    :class:`~repro.workers.behavior.LearningWorker` (the paper's recipe);
    with one, the configured fractions of the pool are replaced by the named
    contamination behaviours, keeping their sampled historical profiles.

    Parameters
    ----------
    config:
        The population recipe (domain moments, correlations, learning mode,
        optional behaviour mix).
    n_workers:
        Pool size ``|W|``.
    rng:
        Seed or generator; the draw is fully deterministic given it.
    id_prefix:
        Worker identifiers become ``f"{id_prefix}-{id_offset + index:03d}"``.
    id_offset:
        Starting index for the identifiers — lets incremental samplers
        (marketplace arrivals drawn one at a time) mint globally unique
        ids from the same prefix without re-numbering earlier draws.
    """
    if n_workers <= 0:
        raise ValueError(f"n_workers must be positive, got {n_workers}")
    if id_offset < 0:
        raise ValueError(f"id_offset must be non-negative, got {id_offset}")
    generator = as_generator(rng)
    model = config.accuracy_model(generator)
    samples = sample_truncated_mvn(model, size=n_workers, rng=generator, lower=0.0, upper=1.0)
    samples = np.clip(samples, _ACCURACY_EPS, 1.0 - _ACCURACY_EPS)

    prior_matrix = samples[:, : config.n_prior_domains]
    sampled_target = samples[:, -1]

    if config.learning_mode == "target_quality":
        initial_accuracies, learning_rates = _target_quality_parameters(config, sampled_target, generator)
    else:
        initial_accuracies = sampled_target
        learning_rates = _calibrated_learning_rates(config, sampled_target, generator)

    workers: List[WorkerBehavior] = []
    for index in range(n_workers):
        accuracies = {
            domain: float(prior_matrix[index, d]) for d, domain in enumerate(config.prior_domains)
        }
        counts = {domain: int(config.prior_task_count) for domain in config.prior_domains}
        profile = WorkerProfile(
            worker_id=f"{id_prefix}-{id_offset + index:03d}",
            accuracies=accuracies,
            task_counts=counts,
        )
        workers.append(
            LearningWorker(
                profile=profile,
                initial_accuracy=float(initial_accuracies[index]),
                learning_rate=float(learning_rates[index]),
            )
        )
    if config.behavior_mix:
        # Contamination consumes randomness strictly after the base draw so
        # the clean workers of a contaminated pool are identical to the
        # uncontaminated pool of the same seed (paired sweeps).
        workers = _contaminate(workers, sampled_target, config, generator)
    return workers


__all__ = ["PopulationConfig", "sample_learning_population", "LEARNING_MODES"]
