"""The worker pool container.

A thin, order-preserving collection of worker behaviours with convenient
lookups by identifier and bulk access to profiles.  Both the platform
simulator and the selection algorithms operate on pools.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

import numpy as np

from repro.workers.behavior import WorkerBehavior
from repro.workers.profile import WorkerProfile, profiles_to_matrix


class WorkerPool:
    """An ordered collection of workers with unique identifiers."""

    def __init__(self, workers: Iterable[WorkerBehavior]) -> None:
        self._workers: List[WorkerBehavior] = list(workers)
        self._by_id: Dict[str, WorkerBehavior] = {}
        for worker in self._workers:
            if worker.worker_id in self._by_id:
                raise ValueError(f"duplicate worker id: {worker.worker_id!r}")
            self._by_id[worker.worker_id] = worker
        if not self._workers:
            raise ValueError("a worker pool must contain at least one worker")

    # ------------------------------------------------------------------ #
    # Collection protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._workers)

    def __iter__(self) -> Iterator[WorkerBehavior]:
        return iter(self._workers)

    def __contains__(self, worker_id: str) -> bool:
        return worker_id in self._by_id

    def __getitem__(self, worker_id: str) -> WorkerBehavior:
        try:
            return self._by_id[worker_id]
        except KeyError:
            raise KeyError(f"unknown worker id: {worker_id!r}") from None

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def worker_ids(self) -> List[str]:
        """All worker identifiers in pool order."""
        return [w.worker_id for w in self._workers]

    @property
    def workers(self) -> List[WorkerBehavior]:
        """All worker behaviours in pool order (a copy of the internal list)."""
        return list(self._workers)

    def profiles(self) -> List[WorkerProfile]:
        """Historical profiles of every worker, in pool order."""
        return [w.profile for w in self._workers]

    def subset(self, worker_ids: Sequence[str]) -> "WorkerPool":
        """A new pool containing only the given workers, sharing behaviour objects."""
        return WorkerPool([self[worker_id] for worker_id in worker_ids])

    def profile_matrices(self, domain_order: Sequence[str]) -> Tuple[np.ndarray, np.ndarray]:
        """``(H, N)`` matrices of historical accuracies and task counts."""
        return profiles_to_matrix(self.profiles(), domain_order)

    def current_accuracies(self) -> Dict[str, float]:
        """Latent current target-domain accuracy per worker (simulation-only oracle)."""
        return {w.worker_id: w.current_accuracy for w in self._workers}

    def accuracies_at(self, exposure: float) -> Dict[str, float]:
        """Latent accuracy of every worker at a common hypothetical exposure."""
        return {w.worker_id: w.accuracy_at(exposure) for w in self._workers}

    def reset_training(self) -> None:
        """Reset all workers' target-domain training (between repetitions)."""
        for worker in self._workers:
            worker.reset_training()


__all__ = ["WorkerPool"]
