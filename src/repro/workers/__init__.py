"""Worker behaviour substrate.

The paper's algorithms never see a worker's true (latent) target-domain
accuracy — they only observe answers to learning tasks plus the historical
profile.  This package provides the simulated workers that generate those
observations:

* :mod:`repro.workers.profile` — the ``(h_i, n_i)`` historical profile of
  Definition 2;
* :mod:`repro.workers.behavior` — answer-generating behaviour models: static
  workers (fixed latent accuracy) and learning workers whose accuracy grows
  with training following the modified IRT curve the paper uses for its
  synthetic datasets;
* :mod:`repro.workers.population` — samplers that draw whole worker
  populations from a truncated multivariate normal over per-domain
  accuracies (Section V-A);
* :mod:`repro.workers.pool` — the worker pool container used by the
  platform and the selection algorithms.
"""

from repro.workers.behavior import LearningWorker, StaticWorker, WorkerBehavior
from repro.workers.pool import WorkerPool
from repro.workers.population import PopulationConfig, sample_learning_population
from repro.workers.profile import WorkerProfile

__all__ = [
    "WorkerProfile",
    "WorkerBehavior",
    "StaticWorker",
    "LearningWorker",
    "WorkerPool",
    "PopulationConfig",
    "sample_learning_population",
]
