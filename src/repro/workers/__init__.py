"""Worker behaviour substrate.

The paper's algorithms never see a worker's true (latent) target-domain
accuracy — they only observe answers to learning tasks plus the historical
profile.  This package provides the simulated workers that generate those
observations:

* :mod:`repro.workers.profile` — the ``(h_i, n_i)`` historical profile of
  Definition 2;
* :mod:`repro.workers.behavior` — answer-generating behaviour models: the
  paper's static and learning workers plus the contamination behaviours
  (spammer, adversarial, fatigue, sleeper, drifter) that stress-test
  selection against realistic crowd pools;
* :mod:`repro.workers.registry` — ``@register_behavior`` / ``make_behavior``:
  construct any behaviour by name (mirrors the selector registry);
* :mod:`repro.workers.population` — samplers that draw whole worker
  populations from a truncated multivariate normal over per-domain
  accuracies (Section V-A), optionally contaminated via a behaviour mix;
* :mod:`repro.workers.pool` — the worker pool container used by the
  platform and the selection algorithms.
"""

from repro.workers.behavior import (
    AdversarialWorker,
    DrifterWorker,
    FatigueWorker,
    LearningWorker,
    SleeperWorker,
    SpammerWorker,
    StaticWorker,
    WorkerBehavior,
)
from repro.workers.pool import WorkerPool
from repro.workers.population import PopulationConfig, sample_learning_population
from repro.workers.profile import WorkerProfile
from repro.workers.registry import (
    behavior_exists,
    behavior_names,
    describe_behavior,
    make_behavior,
    register_behavior,
    resolve_behavior_name,
)

__all__ = [
    "WorkerProfile",
    "WorkerBehavior",
    "StaticWorker",
    "LearningWorker",
    "SpammerWorker",
    "AdversarialWorker",
    "FatigueWorker",
    "SleeperWorker",
    "DrifterWorker",
    "WorkerPool",
    "PopulationConfig",
    "sample_learning_population",
    "register_behavior",
    "make_behavior",
    "behavior_names",
    "behavior_exists",
    "resolve_behavior_name",
    "describe_behavior",
]
