"""Answer-generating worker behaviour models.

Every simulated worker is a *behaviour*: a latent target-domain accuracy
curve over training exposure plus the (tiny) mutable state of how many
learning tasks have been revealed to it so far.  The paper itself needs only
two behaviours — :class:`StaticWorker` and :class:`LearningWorker` — but
real crowdsourcing pools contain the populations that motivate worker
selection in the first place (Li et al., "Cheaper and Better"; Zhao et al.,
"An Active Learning Approach for Jointly Estimating Worker Performance and
Annotation Reliability"), so this module additionally ships:

* :class:`SpammerWorker` — answers are coin flips, training never helps;
* :class:`AdversarialWorker` — systematically below-chance answers;
* :class:`FatigueWorker` — accuracy *decays* with exposure (burn-out);
* :class:`SleeperWorker` — alternates awake/asleep phases; asleep streaks
  answer at guess accuracy (intermittent non-response);
* :class:`DrifterWorker` — a mid-campaign step change in accuracy.

All behaviours are **exposure-pure**: the latent accuracy is a deterministic
function of the cumulative training exposure (plus construction-time
parameters), never of hidden RNG state.  That single property is what lets
the platform's vectorized answer engine simulate a whole pool with one
batched curve evaluation and one Bernoulli draw while remaining bit-identical
to the per-worker reference loop.

The curve contract has two halves:

* :meth:`WorkerBehavior.curve_params` — the scalar parameters of one worker;
* :meth:`WorkerBehavior.batch_accuracy` — a classmethod evaluating the curve
  for a whole *stack* of workers at once: ``params`` maps parameter names to
  per-worker vectors and ``exposures`` is a ``(workers, points)`` matrix.

The scalar :meth:`WorkerBehavior.accuracy_at` delegates to
:meth:`batch_accuracy` on a 1x1 matrix, so the two paths cannot drift apart.
Third-party subclasses may instead override :meth:`accuracy_at` directly;
the vectorized engine detects the missing batch implementation and falls
back to a per-worker loop for those rows (correct, just slower).

The learning curve is the modified IRT model the paper uses to build its
synthetic datasets::

    accuracy(K) = sigmoid(logit(a_0) + alpha * ln(K + 1))

Workers only *learn* when ground-truth answers are revealed to them
(``observe_feedback``), matching the paper's answer-and-learn protocol: the
accuracy used for a batch of answers is the accuracy *before* that batch's
feedback arrives.
"""

from __future__ import annotations

import abc
from typing import Dict

import numpy as np

from repro.irt.rasch import logit, sigmoid
from repro.stats.rng import SeedLike, as_generator
from repro.workers.profile import WorkerProfile

#: Default guess accuracy for behaviours that sometimes answer at random
#: (Yes/No tasks: a coin flip is right half the time).
GUESS_ACCURACY = 0.5


class WorkerBehavior(abc.ABC):
    """Interface every simulated worker implements."""

    def __init__(self, profile: WorkerProfile) -> None:
        self._profile = profile
        self._training_exposure = 0.0

    # ------------------------------------------------------------------ #
    @property
    def profile(self) -> WorkerProfile:
        """The worker's historical ``(h_i, n_i)`` profile."""
        return self._profile

    @property
    def worker_id(self) -> str:
        return self._profile.worker_id

    @property
    def training_exposure(self) -> float:
        """Cumulative number of target-domain learning tasks with revealed answers."""
        return self._training_exposure

    # ------------------------------------------------------------------ #
    # The accuracy curve
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def curve_params(self) -> Dict[str, float]:
        """This worker's scalar curve parameters, keyed for :meth:`batch_accuracy`."""

    @classmethod
    def batch_accuracy(cls, params: Dict[str, np.ndarray], exposures: np.ndarray) -> np.ndarray:
        """Latent accuracy of a stack of same-class workers at given exposures.

        Parameters
        ----------
        params:
            Mapping of parameter name to a per-worker vector of length ``W``
            (column-stacked :meth:`curve_params` of the workers).
        exposures:
            ``(W, P)`` matrix of training exposures to evaluate.

        Returns
        -------
        numpy.ndarray
            ``(W, P)`` matrix of latent accuracies.  Implementations must be
            purely elementwise so batched and scalar evaluation agree
            bitwise.
        """
        raise NotImplementedError(
            f"{cls.__name__} does not implement a batched accuracy curve; "
            "the vectorized engine falls back to per-worker evaluation"
        )

    @classmethod
    def supports_batch_curve(cls) -> bool:
        """Whether this class implements the vectorized curve evaluation."""
        # Classmethod access rebinds on every lookup, so compare the
        # underlying functions, not the bound method objects.
        return cls.batch_accuracy.__func__ is not WorkerBehavior.batch_accuracy.__func__

    def accuracy_at(self, exposure: float) -> float:
        """Latent target-domain accuracy after ``exposure`` revealed learning tasks."""
        if exposure < 0:
            raise ValueError("exposure must be non-negative")
        params = {key: np.asarray([value], dtype=float) for key, value in self.curve_params().items()}
        return float(type(self).batch_accuracy(params, np.asarray([[float(exposure)]]))[0, 0])

    @property
    def current_accuracy(self) -> float:
        """Latent accuracy at the worker's current training exposure."""
        return self.accuracy_at(self._training_exposure)

    # ------------------------------------------------------------------ #
    # Answering and training
    # ------------------------------------------------------------------ #
    def answer_tasks(self, n_tasks: int, rng: SeedLike = None) -> np.ndarray:
        """Simulate answering ``n_tasks`` target-domain tasks.

        Returns a boolean array of per-task correctness drawn i.i.d. at the
        worker's *current* accuracy (training from these tasks only takes
        effect once :meth:`observe_feedback` is called, mirroring the
        answer-then-learn protocol).
        """
        if n_tasks < 0:
            raise ValueError(f"n_tasks must be non-negative, got {n_tasks}")
        generator = as_generator(rng)
        return generator.uniform(size=n_tasks) < self.current_accuracy

    def observe_feedback(self, n_tasks: int) -> None:
        """Reveal the ground truth of ``n_tasks`` learning tasks to the worker."""
        if n_tasks < 0:
            raise ValueError(f"n_tasks must be non-negative, got {n_tasks}")
        self._training_exposure += float(n_tasks)

    def reset_training(self) -> None:
        """Forget all target-domain training (used between experiment repetitions)."""
        self._training_exposure = 0.0


class StaticWorker(WorkerBehavior):
    """A worker whose target-domain accuracy never changes."""

    def __init__(self, profile: WorkerProfile, target_accuracy: float) -> None:
        super().__init__(profile)
        if not 0.0 <= target_accuracy <= 1.0:
            raise ValueError(f"target_accuracy must lie in [0, 1], got {target_accuracy}")
        self._target_accuracy = float(target_accuracy)

    def curve_params(self) -> Dict[str, float]:
        return {"accuracy": self._target_accuracy}

    @classmethod
    def batch_accuracy(cls, params: Dict[str, np.ndarray], exposures: np.ndarray) -> np.ndarray:
        return np.broadcast_to(params["accuracy"][:, None], exposures.shape).copy()


class LearningWorker(WorkerBehavior):
    """A worker that learns from revealed answers along a logistic curve."""

    def __init__(
        self,
        profile: WorkerProfile,
        initial_accuracy: float,
        learning_rate: float,
        max_accuracy: float = 0.995,
        min_accuracy: float = 0.005,
    ) -> None:
        super().__init__(profile)
        if not 0.0 < initial_accuracy < 1.0:
            raise ValueError(f"initial_accuracy must lie in (0, 1), got {initial_accuracy}")
        if not np.isfinite(learning_rate):
            raise ValueError(f"learning_rate must be finite, got {learning_rate}")
        if not 0.0 < max_accuracy <= 1.0:
            raise ValueError(f"max_accuracy must lie in (0, 1], got {max_accuracy}")
        if not 0.0 <= min_accuracy < max_accuracy:
            raise ValueError("min_accuracy must lie in [0, max_accuracy)")
        self._initial_accuracy = float(initial_accuracy)
        self._learning_rate = float(learning_rate)
        self._max_accuracy = float(max_accuracy)
        self._min_accuracy = float(min_accuracy)

    # ------------------------------------------------------------------ #
    @property
    def initial_accuracy(self) -> float:
        """Accuracy before any target-domain training (``a_0``)."""
        return self._initial_accuracy

    @property
    def learning_rate(self) -> float:
        """The worker's true learning rate ``alpha`` (hidden from the algorithms)."""
        return self._learning_rate

    def curve_params(self) -> Dict[str, float]:
        return {
            "initial_accuracy": self._initial_accuracy,
            "learning_rate": self._learning_rate,
            "max_accuracy": self._max_accuracy,
            "min_accuracy": self._min_accuracy,
        }

    @classmethod
    def batch_accuracy(cls, params: Dict[str, np.ndarray], exposures: np.ndarray) -> np.ndarray:
        curve = sigmoid(
            logit(params["initial_accuracy"])[:, None]
            + params["learning_rate"][:, None] * np.log1p(exposures)
        )
        return np.clip(curve, params["min_accuracy"][:, None], params["max_accuracy"][:, None])


class SpammerWorker(WorkerBehavior):
    """A coin-flip worker: every answer is a guess, training never helps."""

    def __init__(self, profile: WorkerProfile, guess_accuracy: float = GUESS_ACCURACY) -> None:
        super().__init__(profile)
        if not 0.0 <= guess_accuracy <= 1.0:
            raise ValueError(f"guess_accuracy must lie in [0, 1], got {guess_accuracy}")
        self._guess_accuracy = float(guess_accuracy)

    def curve_params(self) -> Dict[str, float]:
        return {"guess_accuracy": self._guess_accuracy}

    @classmethod
    def batch_accuracy(cls, params: Dict[str, np.ndarray], exposures: np.ndarray) -> np.ndarray:
        return np.broadcast_to(params["guess_accuracy"][:, None], exposures.shape).copy()


class AdversarialWorker(WorkerBehavior):
    """A worker answering systematically *below* chance (deliberate wrong answers)."""

    def __init__(self, profile: WorkerProfile, accuracy: float = 0.35) -> None:
        super().__init__(profile)
        if not 0.0 <= accuracy < GUESS_ACCURACY:
            raise ValueError(f"adversarial accuracy must lie in [0, {GUESS_ACCURACY}), got {accuracy}")
        self._accuracy = float(accuracy)

    def curve_params(self) -> Dict[str, float]:
        return {"accuracy": self._accuracy}

    @classmethod
    def batch_accuracy(cls, params: Dict[str, np.ndarray], exposures: np.ndarray) -> np.ndarray:
        return np.broadcast_to(params["accuracy"][:, None], exposures.shape).copy()


class FatigueWorker(WorkerBehavior):
    """A worker whose accuracy *decays* with exposure (burn-out on long campaigns).

    The curve is the learning curve with a negated rate and a floor::

        accuracy(K) = max(sigmoid(logit(a_0) - rate * ln(K + 1)), floor)
    """

    def __init__(
        self,
        profile: WorkerProfile,
        initial_accuracy: float = 0.8,
        fatigue_rate: float = 0.3,
        floor_accuracy: float = 0.25,
    ) -> None:
        super().__init__(profile)
        if not 0.0 < initial_accuracy < 1.0:
            raise ValueError(f"initial_accuracy must lie in (0, 1), got {initial_accuracy}")
        if fatigue_rate < 0:
            raise ValueError(f"fatigue_rate must be non-negative, got {fatigue_rate}")
        if not 0.0 <= floor_accuracy <= initial_accuracy:
            raise ValueError("floor_accuracy must lie in [0, initial_accuracy]")
        self._initial_accuracy = float(initial_accuracy)
        self._fatigue_rate = float(fatigue_rate)
        self._floor_accuracy = float(floor_accuracy)

    def curve_params(self) -> Dict[str, float]:
        return {
            "initial_accuracy": self._initial_accuracy,
            "fatigue_rate": self._fatigue_rate,
            "floor_accuracy": self._floor_accuracy,
        }

    @classmethod
    def batch_accuracy(cls, params: Dict[str, np.ndarray], exposures: np.ndarray) -> np.ndarray:
        curve = sigmoid(
            logit(params["initial_accuracy"])[:, None]
            - params["fatigue_rate"][:, None] * np.log1p(exposures)
        )
        return np.maximum(curve, params["floor_accuracy"][:, None])


class SleeperWorker(WorkerBehavior):
    """A worker with intermittent non-response: periodic asleep streaks.

    Exposure is divided into cycles of ``period`` tasks.  The first
    ``sleep_fraction`` of each cycle (shifted by a per-worker ``phase``) is
    an *asleep* streak answered at ``asleep_accuracy`` (guessing — the
    Bernoulli equivalent of not reading the task); the rest is answered at
    ``awake_accuracy``.  The schedule is a pure function of exposure, so the
    behaviour needs no hidden RNG state and vectorizes exactly.
    """

    def __init__(
        self,
        profile: WorkerProfile,
        awake_accuracy: float = 0.8,
        asleep_accuracy: float = GUESS_ACCURACY,
        period: float = 30.0,
        sleep_fraction: float = 0.3,
        phase: float = 0.0,
    ) -> None:
        super().__init__(profile)
        if not 0.0 <= awake_accuracy <= 1.0:
            raise ValueError(f"awake_accuracy must lie in [0, 1], got {awake_accuracy}")
        if not 0.0 <= asleep_accuracy <= 1.0:
            raise ValueError(f"asleep_accuracy must lie in [0, 1], got {asleep_accuracy}")
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        if not 0.0 <= sleep_fraction <= 1.0:
            raise ValueError(f"sleep_fraction must lie in [0, 1], got {sleep_fraction}")
        if not 0.0 <= phase < 1.0:
            raise ValueError(f"phase must lie in [0, 1), got {phase}")
        self._awake_accuracy = float(awake_accuracy)
        self._asleep_accuracy = float(asleep_accuracy)
        self._period = float(period)
        self._sleep_fraction = float(sleep_fraction)
        self._phase = float(phase)

    def curve_params(self) -> Dict[str, float]:
        return {
            "awake_accuracy": self._awake_accuracy,
            "asleep_accuracy": self._asleep_accuracy,
            "period": self._period,
            "sleep_fraction": self._sleep_fraction,
            "phase": self._phase,
        }

    @classmethod
    def batch_accuracy(cls, params: Dict[str, np.ndarray], exposures: np.ndarray) -> np.ndarray:
        period = params["period"][:, None]
        position = np.mod(exposures + params["phase"][:, None] * period, period)
        asleep = position < params["sleep_fraction"][:, None] * period
        return np.where(
            asleep, params["asleep_accuracy"][:, None], params["awake_accuracy"][:, None]
        )


class DrifterWorker(WorkerBehavior):
    """A worker whose accuracy steps from one level to another mid-campaign.

    Models account sharing, tooling changes or simple disengagement: the
    worker answers at ``initial_accuracy`` until ``drift_exposure`` revealed
    tasks, then at ``drifted_accuracy`` from that point on.  Setting
    ``drift_exposure`` beyond the training schedule produces a worker that
    looks healthy during selection and degrades during serving — exactly the
    population the serving layer's drift detector exists for.
    """

    def __init__(
        self,
        profile: WorkerProfile,
        initial_accuracy: float = 0.8,
        drifted_accuracy: float = 0.4,
        drift_exposure: float = 40.0,
    ) -> None:
        super().__init__(profile)
        if not 0.0 <= initial_accuracy <= 1.0:
            raise ValueError(f"initial_accuracy must lie in [0, 1], got {initial_accuracy}")
        if not 0.0 <= drifted_accuracy <= 1.0:
            raise ValueError(f"drifted_accuracy must lie in [0, 1], got {drifted_accuracy}")
        if drift_exposure < 0:
            raise ValueError(f"drift_exposure must be non-negative, got {drift_exposure}")
        self._initial_accuracy = float(initial_accuracy)
        self._drifted_accuracy = float(drifted_accuracy)
        self._drift_exposure = float(drift_exposure)

    @property
    def drift_exposure(self) -> float:
        """Exposure at which the step change happens."""
        return self._drift_exposure

    def curve_params(self) -> Dict[str, float]:
        return {
            "initial_accuracy": self._initial_accuracy,
            "drifted_accuracy": self._drifted_accuracy,
            "drift_exposure": self._drift_exposure,
        }

    @classmethod
    def batch_accuracy(cls, params: Dict[str, np.ndarray], exposures: np.ndarray) -> np.ndarray:
        return np.where(
            exposures < params["drift_exposure"][:, None],
            params["initial_accuracy"][:, None],
            params["drifted_accuracy"][:, None],
        )


__all__ = [
    "GUESS_ACCURACY",
    "WorkerBehavior",
    "StaticWorker",
    "LearningWorker",
    "SpammerWorker",
    "AdversarialWorker",
    "FatigueWorker",
    "SleeperWorker",
    "DrifterWorker",
]
