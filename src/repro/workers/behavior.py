"""Answer-generating worker behaviour models.

Two behaviours cover everything the paper needs:

* :class:`StaticWorker` — a fixed latent accuracy; answers are i.i.d.
  Bernoulli draws.  This is the classic crowdsourcing worker model and the
  behaviour implicitly assumed by the US / ME / Li et al. baselines.
* :class:`LearningWorker` — the latent target-domain accuracy evolves with
  the number of learning tasks the worker has been *trained* on (answers
  revealed), following the modified IRT curve the paper uses to build its
  synthetic datasets:

      accuracy(K) = sigmoid(logit(a_0) + alpha * ln(K + 1))

  where ``a_0`` is the worker's accuracy before any target-domain training
  and ``alpha`` the per-worker learning rate.  At ``K = 0`` the curve passes
  exactly through ``a_0``; faster learners (larger ``alpha``) improve more
  from the same amount of training.  A negative ``alpha`` is allowed — it
  arises from the paper's synthetic recipe when a worker's sampled quality
  is below the cold-start accuracy, and models workers who drift into
  systematic confusion as tasks accumulate.

Workers only *learn* when ground-truth answers are revealed to them
(``observe_feedback``), matching the paper's answer-and-learn protocol: the
accuracy used for a batch of answers is the accuracy *before* that batch's
feedback arrives.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.irt.rasch import logit, sigmoid
from repro.stats.rng import SeedLike, as_generator
from repro.workers.profile import WorkerProfile


class WorkerBehavior(abc.ABC):
    """Interface every simulated worker implements."""

    def __init__(self, profile: WorkerProfile) -> None:
        self._profile = profile
        self._training_exposure = 0.0

    # ------------------------------------------------------------------ #
    @property
    def profile(self) -> WorkerProfile:
        """The worker's historical ``(h_i, n_i)`` profile."""
        return self._profile

    @property
    def worker_id(self) -> str:
        return self._profile.worker_id

    @property
    def training_exposure(self) -> float:
        """Cumulative number of target-domain learning tasks with revealed answers."""
        return self._training_exposure

    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def accuracy_at(self, exposure: float) -> float:
        """Latent target-domain accuracy after ``exposure`` revealed learning tasks."""

    @property
    def current_accuracy(self) -> float:
        """Latent accuracy at the worker's current training exposure."""
        return self.accuracy_at(self._training_exposure)

    def answer_tasks(self, n_tasks: int, rng: SeedLike = None) -> np.ndarray:
        """Simulate answering ``n_tasks`` target-domain tasks.

        Returns a boolean array of per-task correctness drawn i.i.d. at the
        worker's *current* accuracy (training from these tasks only takes
        effect once :meth:`observe_feedback` is called, mirroring the
        answer-then-learn protocol).
        """
        if n_tasks < 0:
            raise ValueError(f"n_tasks must be non-negative, got {n_tasks}")
        generator = as_generator(rng)
        return generator.uniform(size=n_tasks) < self.current_accuracy

    def observe_feedback(self, n_tasks: int) -> None:
        """Reveal the ground truth of ``n_tasks`` learning tasks to the worker."""
        if n_tasks < 0:
            raise ValueError(f"n_tasks must be non-negative, got {n_tasks}")
        self._training_exposure += float(n_tasks)

    def reset_training(self) -> None:
        """Forget all target-domain training (used between experiment repetitions)."""
        self._training_exposure = 0.0


class StaticWorker(WorkerBehavior):
    """A worker whose target-domain accuracy never changes."""

    def __init__(self, profile: WorkerProfile, target_accuracy: float) -> None:
        super().__init__(profile)
        if not 0.0 <= target_accuracy <= 1.0:
            raise ValueError(f"target_accuracy must lie in [0, 1], got {target_accuracy}")
        self._target_accuracy = float(target_accuracy)

    def accuracy_at(self, exposure: float) -> float:
        if exposure < 0:
            raise ValueError("exposure must be non-negative")
        return self._target_accuracy


class LearningWorker(WorkerBehavior):
    """A worker that learns from revealed answers along a logistic curve."""

    def __init__(
        self,
        profile: WorkerProfile,
        initial_accuracy: float,
        learning_rate: float,
        max_accuracy: float = 0.995,
        min_accuracy: float = 0.005,
    ) -> None:
        super().__init__(profile)
        if not 0.0 < initial_accuracy < 1.0:
            raise ValueError(f"initial_accuracy must lie in (0, 1), got {initial_accuracy}")
        if not np.isfinite(learning_rate):
            raise ValueError(f"learning_rate must be finite, got {learning_rate}")
        if not 0.0 < max_accuracy <= 1.0:
            raise ValueError(f"max_accuracy must lie in (0, 1], got {max_accuracy}")
        if not 0.0 <= min_accuracy < max_accuracy:
            raise ValueError("min_accuracy must lie in [0, max_accuracy)")
        self._initial_accuracy = float(initial_accuracy)
        self._learning_rate = float(learning_rate)
        self._max_accuracy = float(max_accuracy)
        self._min_accuracy = float(min_accuracy)

    # ------------------------------------------------------------------ #
    @property
    def initial_accuracy(self) -> float:
        """Accuracy before any target-domain training (``a_0``)."""
        return self._initial_accuracy

    @property
    def learning_rate(self) -> float:
        """The worker's true learning rate ``alpha`` (hidden from the algorithms)."""
        return self._learning_rate

    def accuracy_at(self, exposure: float) -> float:
        if exposure < 0:
            raise ValueError("exposure must be non-negative")
        value = sigmoid(logit(self._initial_accuracy) + self._learning_rate * np.log1p(exposure))
        return float(np.clip(value, self._min_accuracy, self._max_accuracy))


__all__ = ["WorkerBehavior", "StaticWorker", "LearningWorker"]
