"""Run several selectors on one dataset and compare them.

The experiment harness (Table V, Figures 6-7) repeatedly needs the same
loop: for every method and repetition, build a fresh environment from the
dataset instance (matched seeds so all methods face the same simulated
answers where their assignments coincide), run the selector, and score the
selection.  :func:`compare_selectors` implements that loop once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional

import numpy as np

from repro.core.selector import BaseWorkerSelector
from repro.datasets.base import DatasetInstance
from repro.evaluation.metrics import precision_at_k, selection_accuracy
from repro.stats.rng import SeedLike, derive_seed

SelectorFactory = Callable[[int], BaseWorkerSelector]


@dataclass
class MethodComparison:
    """Aggregated results of one method on one dataset configuration."""

    method: str
    accuracies: List[float] = field(default_factory=list)
    precisions: List[float] = field(default_factory=list)
    selections: List[List[str]] = field(default_factory=list)

    @property
    def mean_accuracy(self) -> float:
        return float(np.mean(self.accuracies)) if self.accuracies else float("nan")

    @property
    def std_accuracy(self) -> float:
        return float(np.std(self.accuracies)) if self.accuracies else float("nan")

    @property
    def mean_precision(self) -> float:
        return float(np.mean(self.precisions)) if self.precisions else float("nan")


def evaluate_selector(
    instance: DatasetInstance,
    selector: BaseWorkerSelector,
    run_seed: SeedLike = 0,
    k: Optional[int] = None,
) -> Dict[str, object]:
    """Run one selector once and return its accuracy, precision and selection."""
    environment = instance.environment(run_seed=run_seed)
    result = selector.select(environment, k=k)
    accuracy = selection_accuracy(environment, result)
    precision = precision_at_k(environment, result, k=k)
    return {
        "method": selector.name,
        "accuracy": accuracy,
        "precision": precision,
        "selected": list(result.selected_worker_ids),
        "result": result,
    }


def compare_selectors(
    instance: DatasetInstance,
    selector_factories: Mapping[str, SelectorFactory],
    n_repetitions: int = 3,
    k: Optional[int] = None,
    base_seed: SeedLike = 0,
) -> Dict[str, MethodComparison]:
    """Evaluate every selector over ``n_repetitions`` matched runs.

    Parameters
    ----------
    instance:
        The dataset instance (fixed worker pool) all methods share.
    selector_factories:
        Mapping from method name to a factory ``seed -> selector``; a fresh
        selector is built per repetition so stateful methods cannot leak
        information across runs.
    n_repetitions:
        Number of repetitions; the per-repetition environment seed is shared
        across methods so they face the same simulated answer noise.
    k:
        Optional selection-size override (Figure 6 sweeps this).
    """
    if n_repetitions <= 0:
        raise ValueError("n_repetitions must be positive")
    comparisons: Dict[str, MethodComparison] = {
        name: MethodComparison(method=name) for name in selector_factories
    }
    for repetition in range(n_repetitions):
        run_seed = derive_seed(base_seed, instance.name, "rep", repetition)
        for name, factory in selector_factories.items():
            selector_seed = derive_seed(base_seed, instance.name, name, repetition)
            selector = factory(selector_seed)
            evaluation = evaluate_selector(instance, selector, run_seed=run_seed, k=k)
            comparison = comparisons[name]
            comparison.accuracies.append(float(evaluation["accuracy"]))
            comparison.precisions.append(float(evaluation["precision"]))
            comparison.selections.append(list(evaluation["selected"]))
    return comparisons


__all__ = ["MethodComparison", "compare_selectors", "evaluate_selector", "SelectorFactory"]
