"""Ground-truth selection values (Table V's bottom row)."""

from __future__ import annotations

from typing import List

from repro.datasets.base import DatasetInstance
from repro.platform.session import AnnotationEnvironment


def ground_truth_selection(environment: AnnotationEnvironment, k: int) -> List[str]:
    """The truly best ``k`` workers by fully trained accuracy."""
    return environment.ground_truth_top_k(k)


def ground_truth_accuracy(instance: DatasetInstance, k: int | None = None) -> float:
    """Mean fully trained accuracy of the ground-truth top-``k`` workers.

    Uses the dataset-instance oracle directly so it can be computed without
    spending any budget (the value is a property of the worker pool).
    """
    return instance.ground_truth_mean_accuracy(k)


__all__ = ["ground_truth_selection", "ground_truth_accuracy"]
