"""Evaluation of selection results.

The paper's headline metric is the average annotation accuracy of the
selected workers on the target-domain working tasks after training
(Table V); this package computes it plus the surrounding diagnostics:

* relative improvement of one method over another (the percentages quoted
  throughout Section V);
* regret against the ground-truth top-``k`` and the overlap (precision@k)
  with that set;
* a comparison runner that evaluates many selectors on one dataset over
  repeated runs with matched seeds.
"""

from repro.evaluation.comparison import MethodComparison, compare_selectors, evaluate_selector
from repro.evaluation.ground_truth import ground_truth_accuracy, ground_truth_selection
from repro.evaluation.metrics import (
    precision_at_k,
    regret,
    relative_improvement,
    selection_accuracy,
)

__all__ = [
    "selection_accuracy",
    "relative_improvement",
    "regret",
    "precision_at_k",
    "ground_truth_selection",
    "ground_truth_accuracy",
    "evaluate_selector",
    "compare_selectors",
    "MethodComparison",
]
