"""Selection-quality metrics.

All metrics operate on the evaluation view of the environment (latent
final accuracies), mirroring how the paper scores methods: the average
annotation accuracy of the selected workers on the working tasks after the
full training schedule.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.selector import SelectionResult
from repro.platform.session import AnnotationEnvironment


def selection_accuracy(
    environment: AnnotationEnvironment,
    result: SelectionResult,
    empirical: bool = False,
) -> float:
    """Average working-task accuracy of the workers a method selected."""
    outcome = environment.evaluate_selection(result.selected_worker_ids, empirical=empirical)
    return outcome.mean_accuracy


def relative_improvement(ours: float, baseline: float) -> float:
    """Relative improvement ``(ours - baseline) / baseline`` (the paper's "x% up" numbers)."""
    if baseline <= 0:
        raise ValueError("baseline accuracy must be positive")
    return (ours - baseline) / baseline


def regret(environment: AnnotationEnvironment, result: SelectionResult, k: int | None = None) -> float:
    """Gap between the ground-truth top-k mean accuracy and the achieved one (never negative in expectation)."""
    resolved_k = k if k is not None else len(result.selected_worker_ids)
    ground_truth_ids = environment.ground_truth_top_k(resolved_k)
    best = environment.evaluate_selection(ground_truth_ids).mean_accuracy
    achieved = environment.evaluate_selection(result.selected_worker_ids).mean_accuracy
    return best - achieved


def precision_at_k(environment: AnnotationEnvironment, result: SelectionResult, k: int | None = None) -> float:
    """Fraction of the selected workers that belong to the ground-truth top-k set."""
    resolved_k = k if k is not None else len(result.selected_worker_ids)
    ground_truth_ids = set(environment.ground_truth_top_k(resolved_k))
    if not result.selected_worker_ids:
        raise ValueError("the selection result is empty")
    overlap = sum(1 for worker_id in result.selected_worker_ids if worker_id in ground_truth_ids)
    return overlap / len(result.selected_worker_ids)


def mean_of(values: Sequence[float]) -> float:
    """Plain mean with an explicit error for empty input (avoids silent NaN)."""
    values = list(values)
    if not values:
        raise ValueError("cannot average an empty sequence")
    return sum(values) / len(values)


__all__ = ["selection_accuracy", "relative_improvement", "regret", "precision_at_k", "mean_of"]
