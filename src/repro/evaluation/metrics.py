"""Selection-quality metrics.

All metrics operate on the evaluation view of the environment (latent
final accuracies), mirroring how the paper scores methods: the average
annotation accuracy of the selected workers on the working tasks after the
full training schedule.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.core.selector import SelectionResult
from repro.platform.session import AnnotationEnvironment


def selection_accuracy(
    environment: AnnotationEnvironment,
    result: SelectionResult,
    empirical: bool = False,
) -> float:
    """Average working-task accuracy of the workers a method selected."""
    outcome = environment.evaluate_selection(result.selected_worker_ids, empirical=empirical)
    return outcome.mean_accuracy


def relative_improvement(ours: float, baseline: float) -> float:
    """Relative improvement ``(ours - baseline) / baseline`` (the paper's "x% up" numbers).

    The ratio is undefined for a non-positive or non-finite baseline; NaN is
    returned in that case (IEEE convention) so that partially populated
    sweep tables render instead of aborting mid-report.  Callers that want a
    hard failure should check ``math.isfinite`` on the result.  This is the
    single implementation shared with
    :meth:`repro.experiments.runner.DatasetResult.relative_improvement`.
    """
    if not math.isfinite(baseline) or baseline <= 0:
        return float("nan")
    return (ours - baseline) / baseline


def regret(environment: AnnotationEnvironment, result: SelectionResult, k: int | None = None) -> float:
    """Gap between the ground-truth top-k mean accuracy and the achieved one (never negative in expectation)."""
    resolved_k = k if k is not None else len(result.selected_worker_ids)
    ground_truth_ids = environment.ground_truth_top_k(resolved_k)
    best = environment.evaluate_selection(ground_truth_ids).mean_accuracy
    achieved = environment.evaluate_selection(result.selected_worker_ids).mean_accuracy
    return best - achieved


def precision_at_k(environment: AnnotationEnvironment, result: SelectionResult, k: int | None = None) -> float:
    """Fraction of the ground-truth top-``k`` workers that the selection recovered.

    The denominator is ``k`` itself (falling back to the selection size only
    when no ``k`` is given), so a method that returns *fewer* than ``k``
    workers is penalised for the missing slots instead of being graded on
    the shorter list it chose to return.
    """
    resolved_k = k if k is not None else len(result.selected_worker_ids)
    if resolved_k <= 0:
        raise ValueError("k must be positive (the selection is empty and no explicit k was given)")
    ground_truth_ids = set(environment.ground_truth_top_k(resolved_k))
    overlap = sum(1 for worker_id in result.selected_worker_ids if worker_id in ground_truth_ids)
    return overlap / resolved_k


def mean_of(values: Sequence[float]) -> float:
    """Plain mean with an explicit error for empty input (avoids silent NaN)."""
    values = list(values)
    if not values:
        raise ValueError("cannot average an empty sequence")
    return sum(values) / len(values)


__all__ = ["selection_accuracy", "relative_improvement", "regret", "precision_at_k", "mean_of"]
