"""Dataset statistics (Table II and Table IV).

Table II lists, per dataset, the worker-pool size, the per-batch learning
task count ``Q``, the selection size ``k``, the number of batches and the
total budget ``B``.  Table IV lists, per dataset and domain, the mean and
standard deviation of worker accuracy.  Both are derived here from dataset
specs / instances so the benchmark harness can print them side by side with
the paper's numbers.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.datasets.base import DatasetInstance, DatasetSpec


def dataset_statistics_row(spec: DatasetSpec) -> Dict[str, int]:
    """One Table II row: ``|W|``, ``Q``, ``k``, #batches and ``B``."""
    return {"dataset": spec.name, **spec.statistics()}


def dataset_statistics_table(specs: Sequence[DatasetSpec]) -> List[Dict[str, int]]:
    """Table II for a collection of dataset specs."""
    return [dataset_statistics_row(spec) for spec in specs]


def domain_moments(instance: DatasetInstance) -> Dict[str, Tuple[float, float]]:
    """Per-domain (mean, std) of worker accuracy for one dataset instance.

    Prior-domain moments are computed from the historical profiles and the
    target-domain moments from the latent accuracy after the first batch of
    learning tasks — exactly the quantities Table IV reports ("calculated
    based on the first batch learning task results").
    """
    prior_matrix = instance.prior_accuracy_matrix()
    moments: Dict[str, Tuple[float, float]] = {}
    for column, domain in enumerate(instance.prior_domains):
        values = prior_matrix[:, column]
        values = values[~np.isnan(values)]
        moments[domain] = (float(values.mean()), float(values.std()))
    target = instance.first_batch_target_accuracies()
    moments[instance.target_domain] = (float(target.mean()), float(target.std()))
    return moments


def domain_moments_table(instances: Sequence[DatasetInstance]) -> List[Dict[str, object]]:
    """Table IV: one row per dataset with per-domain (mean, std) pairs.

    Domain names differ across datasets, so the row keys are positional
    (``prior-1`` .. ``prior-D``, ``target``) to match the paper's layout.
    """
    rows: List[Dict[str, object]] = []
    for instance in instances:
        moments = domain_moments(instance)
        row: Dict[str, object] = {"dataset": instance.name}
        for index, domain in enumerate(instance.prior_domains, start=1):
            row[f"prior-{index}"] = moments[domain]
        row["target"] = moments[instance.target_domain]
        rows.append(row)
    return rows


__all__ = [
    "dataset_statistics_row",
    "dataset_statistics_table",
    "domain_moments",
    "domain_moments_table",
]
