"""Dataset registry: the six evaluation datasets plus contamination scenarios.

Any of the paper's datasets can be looked up by name (``"S-1"``, ``"RW-2"``,
...).  A **scenario** qualifies a base dataset with a contamination recipe —
a mix of adversarial worker behaviours from the behaviour registry — using
the grammar::

    <base-dataset> ":" <recipe>
    <recipe>  ::= <token> ("+" <token>)*         e.g. "spam10+drift20"
    <token>   ::= <behavior><percent>            e.g. "spam10", "adversarial20"

``<behavior>`` is any registered behaviour name or alias
(:func:`repro.workers.registry.behavior_names`) and ``<percent>`` the
integer share of the pool (1-90) replaced by it.  A few named recipes
(:data:`SCENARIO_RECIPES`) cover common compositions, e.g. ``"mixed30"``.

>>> from repro.datasets.registry import load_dataset
>>> instance = load_dataset("S-1:spam10", seed=0)
>>> instance.name
'S-1:spammer10'

Scenario pools are *paired* with their base dataset: the contamination draw
consumes randomness after the base population draw and seed derivation uses
the base name, so the clean workers (and the task bank) of ``"S-1:spam10"``
are identical to ``"S-1"`` at the same seed.
"""

from __future__ import annotations

import re
from dataclasses import replace
from typing import Dict, List, Mapping, Optional

from repro.datasets.base import DatasetInstance, DatasetSpec
from repro.datasets.realworld import rw1_spec, rw2_spec
from repro.datasets.synthetic import synthetic_spec
from repro.stats.rng import SeedLike
from repro.workers.registry import resolve_behavior_name

DATASET_NAMES: List[str] = ["RW-1", "RW-2", "S-1", "S-2", "S-3", "S-4"]

#: Separator between a base dataset name and a contamination recipe.
SCENARIO_SEPARATOR = ":"

#: Named contamination recipes (resolved before the token grammar).  Keys are
#: recipe names usable after the ``:`` of any base dataset.
SCENARIO_RECIPES: Dict[str, Mapping[str, float]] = {
    "clean": {},
    "mixed20": {"spammer": 0.05, "adversarial": 0.05, "sleeper": 0.05, "drifter": 0.05},
    "mixed30": {"spammer": 0.1, "adversarial": 0.1, "drifter": 0.1},
    "hostile40": {"spammer": 0.2, "adversarial": 0.2},
}

_TOKEN_PATTERN = re.compile(r"^([a-zA-Z][a-zA-Z_-]*?)([1-9][0-9]?)$")


def parse_scenario(recipe: str) -> Dict[str, float]:
    """Parse a contamination recipe into ``{canonical behaviour: fraction}``.

    Accepts a named recipe (``"mixed30"``) or ``+``-joined behaviour tokens
    (``"spam10+drift20"``).  Raises :class:`ValueError` with the grammar on
    anything else, so CLI ``--scenario`` arguments fail at parse time.
    """
    text = recipe.strip().lower()
    if not text:
        raise ValueError("empty scenario recipe")
    if text in SCENARIO_RECIPES:
        return {
            resolve_behavior_name(name): float(fraction)
            for name, fraction in SCENARIO_RECIPES[text].items()
        }
    mix: Dict[str, float] = {}
    for token in text.split("+"):
        match = _TOKEN_PATTERN.match(token.strip())
        if match is None:
            raise ValueError(
                f"invalid scenario token {token!r}; expected <behavior><percent> "
                f"(e.g. 'spam10') or one of the named recipes: {', '.join(sorted(SCENARIO_RECIPES))}"
            )
        name, percent = match.groups()
        try:
            canonical = resolve_behavior_name(name)
        except KeyError as exc:
            raise ValueError(str(exc.args[0] if exc.args else exc)) from exc
        mix[canonical] = mix.get(canonical, 0.0) + int(percent) / 100.0
    if sum(mix.values()) > 0.9 + 1e-9:
        raise ValueError(
            f"scenario recipe {recipe!r} contaminates {sum(mix.values()):.0%} of the pool; "
            "at most 90% may be contaminated"
        )
    return mix


def format_scenario(mix: Mapping[str, float]) -> str:
    """Canonical recipe string of a behaviour mix (inverse of :func:`parse_scenario`)."""
    return "+".join(f"{name}{round(fraction * 100)}" for name, fraction in sorted(mix.items()))


def scenario_spec(base: DatasetSpec, recipe: str) -> DatasetSpec:
    """A contaminated variant of ``base`` per the given recipe.

    The returned spec's name is canonical (``"S-1:spammer10"``) and its
    ``seed_name`` is the base name, so scenario pools share their clean
    workers and task bank with the base dataset at any seed.
    """
    mix = parse_scenario(recipe)
    if not mix:
        return base
    population = replace(base.population, behavior_mix=mix)
    return base.with_overrides(
        name=f"{base.name}{SCENARIO_SEPARATOR}{format_scenario(mix)}",
        population=population,
        description=(base.description + " " if base.description else "")
        + f"Contaminated: {format_scenario(mix)}.",
        seed_name=base.seed_name if base.seed_name is not None else base.name,
    )


def scenario_names(bases: Optional[List[str]] = None) -> List[str]:
    """Canonical example scenario names (named recipes on every base dataset)."""
    resolved_bases = bases if bases is not None else DATASET_NAMES
    return [
        f"{base}{SCENARIO_SEPARATOR}{recipe}"
        for base in resolved_bases
        for recipe in sorted(SCENARIO_RECIPES)
        if recipe != "clean"
    ]


def get_spec(name: str) -> DatasetSpec:
    """Return the specification of a dataset or scenario by name.

    Plain names (``"S-1"``) resolve to the paper's datasets; qualified names
    (``"S-1:spam10"``) apply a contamination recipe to the base dataset.
    """
    base_name, _, recipe = name.partition(SCENARIO_SEPARATOR)
    canonical = base_name.strip().upper()
    builders = {
        "RW-1": rw1_spec,
        "RW-2": rw2_spec,
        "S-1": lambda: synthetic_spec("S-1"),
        "S-2": lambda: synthetic_spec("S-2"),
        "S-3": lambda: synthetic_spec("S-3"),
        "S-4": lambda: synthetic_spec("S-4"),
    }
    if canonical not in builders:
        raise KeyError(f"unknown dataset {name!r}; available: {', '.join(DATASET_NAMES)}")
    spec = builders[canonical]()
    if recipe:
        spec = scenario_spec(spec, recipe)
    return spec


def dataset_exists(name: str) -> bool:
    """Whether ``name`` is a valid dataset or scenario-qualified dataset name."""
    try:
        get_spec(name)
    except (KeyError, ValueError):
        return False
    return True


def load_dataset(
    name: str,
    seed: SeedLike = 0,
    k: Optional[int] = None,
    tasks_per_batch: Optional[int] = None,
) -> DatasetInstance:
    """Instantiate a dataset or scenario by name with optional ``k`` / ``Q`` overrides."""
    return get_spec(name).instantiate(seed=seed, k=k, tasks_per_batch=tasks_per_batch)


def all_specs() -> Dict[str, DatasetSpec]:
    """All six canonical dataset specifications keyed by name."""
    return {name: get_spec(name) for name in DATASET_NAMES}


__all__ = [
    "DATASET_NAMES",
    "SCENARIO_SEPARATOR",
    "SCENARIO_RECIPES",
    "parse_scenario",
    "format_scenario",
    "scenario_spec",
    "scenario_names",
    "get_spec",
    "dataset_exists",
    "load_dataset",
    "all_specs",
]
