"""Dataset registry: look up any of the six evaluation datasets by name."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.datasets.base import DatasetInstance, DatasetSpec
from repro.datasets.realworld import rw1_spec, rw2_spec
from repro.datasets.synthetic import synthetic_spec
from repro.stats.rng import SeedLike

DATASET_NAMES: List[str] = ["RW-1", "RW-2", "S-1", "S-2", "S-3", "S-4"]


def get_spec(name: str) -> DatasetSpec:
    """Return the specification of a dataset by (case-insensitive) name."""
    canonical = name.strip().upper()
    builders = {
        "RW-1": rw1_spec,
        "RW-2": rw2_spec,
        "S-1": lambda: synthetic_spec("S-1"),
        "S-2": lambda: synthetic_spec("S-2"),
        "S-3": lambda: synthetic_spec("S-3"),
        "S-4": lambda: synthetic_spec("S-4"),
    }
    if canonical not in builders:
        raise KeyError(f"unknown dataset {name!r}; available: {', '.join(DATASET_NAMES)}")
    return builders[canonical]()


def load_dataset(
    name: str,
    seed: SeedLike = 0,
    k: Optional[int] = None,
    tasks_per_batch: Optional[int] = None,
) -> DatasetInstance:
    """Instantiate a dataset by name with optional ``k`` / ``Q`` overrides."""
    return get_spec(name).instantiate(seed=seed, k=k, tasks_per_batch=tasks_per_batch)


def all_specs() -> Dict[str, DatasetSpec]:
    """All six canonical dataset specifications keyed by name."""
    return {name: get_spec(name) for name in DATASET_NAMES}


__all__ = ["DATASET_NAMES", "get_spec", "load_dataset", "all_specs"]
