"""Dataset consistency analysis (Table IV's Pearson check).

The paper validates its synthetic datasets by bucketing workers' initial
target-domain accuracies and requiring the Pearson correlation between the
RW-1 bucket distribution and every synthetic dataset's bucket distribution
to exceed 0.75.  This module reproduces that analysis.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.datasets.base import DatasetInstance
from repro.stats.correlation import bucketed_pearson


def dataset_target_accuracies(instance: DatasetInstance, stage: str = "first-batch") -> np.ndarray:
    """Target-domain accuracies of every worker at a given training stage.

    Parameters
    ----------
    stage:
        ``"first-batch"`` (after the first batch of learning tasks — the
        quantity the paper buckets), ``"initial"`` (before any training) or
        ``"final"`` (after the full training schedule).
    """
    if stage in ("first-batch", "first_batch"):
        return instance.first_batch_target_accuracies()
    if stage == "initial":
        return instance.initial_target_accuracies()
    if stage == "final":
        return instance.final_target_accuracies()
    raise ValueError(f"stage must be 'first-batch', 'initial' or 'final', got {stage!r}")


def consistency_report(
    reference: DatasetInstance,
    candidates: Sequence[DatasetInstance],
    n_buckets: int = 10,
    threshold: float = 0.75,
) -> List[Dict[str, object]]:
    """Pearson consistency of each candidate dataset against a reference.

    Returns one row per candidate with the bucketed Pearson correlation and
    whether it clears the paper's 0.75 threshold.
    """
    reference_accuracies = dataset_target_accuracies(reference)
    rows: List[Dict[str, object]] = []
    for candidate in candidates:
        correlation = bucketed_pearson(
            reference_accuracies,
            dataset_target_accuracies(candidate),
            n_buckets=n_buckets,
        )
        rows.append(
            {
                "reference": reference.name,
                "candidate": candidate.name,
                "pearson": correlation,
                "passes_threshold": bool(correlation > threshold),
            }
        )
    return rows


__all__ = ["consistency_report", "dataset_target_accuracies"]
