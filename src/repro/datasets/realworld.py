"""Simulated RW-1 and RW-2 datasets.

The paper collects two real-world surveys whose raw responses are not
bundled here, so both datasets are *simulated* from the published summary
statistics (DESIGN.md §3 records the substitution):

**RW-1** — 27 workers, ``Q = 10``, ``k = 7``.  Prior domains *Elephant*,
*Clownfish* and *Plane*; target domain *Petunia* (Table III).  Per-domain
accuracy moments come from Table IV; the true cross-domain correlations are
set to the values the paper's CPE recovers (Plane-Flower 0.50, Fish-Flower
0.69, Elephant-Flower 0.65, Section V-H) so that the correlation-recovery
benchmark has a meaningful reference ordering.  Workers start at the
cold-start accuracy 0.5 and learn along the modified IRT curve towards (and
beyond) their sampled first-batch quality, so the Table IV first-batch
moments are matched exactly.  The surveyed humans learned faster than this
logarithmic curve (average accuracy 0.55 -> 0.79 after one batch of 10,
Section V-H); EXPERIMENTS.md records the resulting gap in the training-gain
experiment.

**RW-2** — 35 workers, ``Q = 10``, ``k = 9``.  Prior domains *Peruvian
lily*, *Red fox* and *English marigold*; target domain *Lenten rose*.
Table IV does not list RW-2 moments, so the prior-domain moments are chosen
to reflect the finer-grained, higher-accuracy regime the paper describes
(overall accuracies are high — the ground-truth top-9 reach 1.0), the
first-batch target quality is centred near the reported averages (0.65
pre-training rising to 0.85 after one batch), and the true correlations
follow the recovered ordering (English marigold 0.68 > Peruvian lily 0.23 >
Red fox 0.10).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import DatasetSpec
from repro.irt.rasch import logit
from repro.workers.population import PopulationConfig

# Learning-rate calibration: alpha such that the *average* worker moves from
# ``start`` to ``end`` accuracy after ``n_tasks`` revealed learning tasks on
# the logistic learning curve used by LearningWorker.


def calibrate_learning_rate(start_accuracy: float, end_accuracy: float, n_tasks: int) -> float:
    """Learning rate that lifts ``start_accuracy`` to ``end_accuracy`` after ``n_tasks`` tasks."""
    if not 0.0 < start_accuracy < 1.0 or not 0.0 < end_accuracy < 1.0:
        raise ValueError("accuracies must lie strictly inside (0, 1)")
    if n_tasks <= 0:
        raise ValueError("n_tasks must be positive")
    if end_accuracy <= start_accuracy:
        return 0.0
    return float((logit(end_accuracy) - logit(start_accuracy)) / np.log1p(n_tasks))


# Cross-domain correlations reported / implied by Section V-H.  Order:
# [prior-1, prior-2, prior-3, target].
_RW1_CORRELATIONS = np.array(
    [
        #  Eleph  Clown  Plane  Petunia
        [1.00, 0.55, 0.30, 0.65],
        [0.55, 1.00, 0.30, 0.69],
        [0.30, 0.30, 1.00, 0.50],
        [0.65, 0.69, 0.50, 1.00],
    ]
)

_RW2_CORRELATIONS = np.array(
    [
        #  P.lily R.fox  E.mar  Lenten
        [1.00, 0.15, 0.35, 0.23],
        [0.15, 1.00, 0.20, 0.10],
        [0.35, 0.20, 1.00, 0.68],
        [0.23, 0.10, 0.68, 1.00],
    ]
)


def rw1_spec() -> DatasetSpec:
    """Specification of the simulated RW-1 dataset (27 workers, petunia target)."""
    population = PopulationConfig(
        prior_domains=("elephant", "clownfish", "plane"),
        target_domain="petunia",
        prior_means=(0.70, 0.88, 0.58),
        prior_stds=(0.22, 0.10, 0.25),
        target_mean=0.55,
        target_std=0.17,
        correlations=_RW1_CORRELATIONS,
        prior_task_count=20,  # two batches of 5 learning + 5 working tasks per prior domain
        learning_mode="target_quality",
        start_accuracy=0.5,
        initial_spread=0.4,  # Table IV shows real spread already in the first batch
        initial_noise_std=0.5,  # independent head-start noise creates genuine late bloomers
        reference_exposure=10,  # the sampled quality is the accuracy after the first batch of 10
        gain_scale=1.0,
        learning_rate_noise_std=0.05,
        min_learning_rate=0.0,  # revealed ground truth never makes a survey worker worse
    )
    return DatasetSpec(
        name="RW-1",
        population=population,
        n_workers=27,
        tasks_per_batch=10,
        k=7,
        n_working_tasks=30,
        description=(
            "Simulated stand-in for the RW-1 Qualtrics survey: animal/machine prior domains, "
            "petunia target domain; moments from Table IV, correlations and learning gain from Section V-H."
        ),
    )


def rw2_spec() -> DatasetSpec:
    """Specification of the simulated RW-2 dataset (35 workers, Lenten-rose target)."""
    population = PopulationConfig(
        prior_domains=("peruvian_lily", "red_fox", "english_marigold"),
        target_domain="lenten_rose",
        prior_means=(0.82, 0.75, 0.78),
        prior_stds=(0.14, 0.18, 0.16),
        target_mean=0.70,
        target_std=0.15,
        correlations=_RW2_CORRELATIONS,
        prior_task_count=20,
        learning_mode="target_quality",
        start_accuracy=0.5,
        initial_spread=0.4,
        initial_noise_std=0.5,
        reference_exposure=10,
        gain_scale=1.0,
        learning_rate_noise_std=0.05,
        min_learning_rate=0.0,  # revealed ground truth never makes a survey worker worse
    )
    return DatasetSpec(
        name="RW-2",
        population=population,
        n_workers=35,
        tasks_per_batch=10,
        k=9,
        n_working_tasks=30,
        description=(
            "Simulated stand-in for the RW-2 Qualtrics survey: fine-grained flower/animal prior domains, "
            "Lenten-rose target domain; learning gain 0.65->0.85 per Section V-H."
        ),
    )


__all__ = ["rw1_spec", "rw2_spec", "calibrate_learning_rate"]
