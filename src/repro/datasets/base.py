"""Dataset specification and instantiation.

A :class:`DatasetSpec` is a *recipe*: domain structure, pool size, per-batch
learning-task count ``Q``, target selection size ``k`` and the worker
population configuration.  Instantiating it with a seed draws a concrete
worker pool and task bank, producing a :class:`DatasetInstance` from which
fresh :class:`~repro.platform.session.AnnotationEnvironment` objects can be
created — one per (method, repetition) so runs never share training state.

Figure 6 and Figure 7 vary ``k`` and ``Q`` on the same datasets, so both can
be overridden at instantiation time; the budget then follows Table II's
``B = ceil(log2(|W|/k)) * Q * |W|`` convention automatically.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional

import numpy as np

from repro.platform.budget import BudgetSchedule, compute_budget, default_total_budget, number_of_batches
from repro.platform.session import AnnotationEnvironment
from repro.platform.tasks import TaskBank, generate_task_bank
from repro.stats.rng import SeedLike, derive_seed
from repro.workers.pool import WorkerPool
from repro.workers.population import PopulationConfig, sample_learning_population


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for one of the paper's evaluation datasets.

    Attributes
    ----------
    name:
        Dataset identifier (``"RW-1"``, ``"S-3"``, ...).
    population:
        Worker-population configuration (domains, moments, correlations,
        learning rates).
    n_workers:
        Worker-pool size ``|W|``.
    tasks_per_batch:
        The paper's ``Q`` — learning tasks per batch on the target domain.
    k:
        Default number of workers to select.
    n_working_tasks:
        Size of the working-task set used for evaluation.
    description:
        Human-readable provenance note.
    seed_name:
        Name used for seed derivation when it differs from ``name``.
        Scenario variants (``"S-1:spammer10"``) set this to the base
        dataset's name so the clean portion of a contaminated pool — and
        the task bank — is *identical* to the uncontaminated draw of the
        same seed, making contamination sweeps paired comparisons.
    """

    name: str
    population: PopulationConfig
    n_workers: int
    tasks_per_batch: int
    k: int
    n_working_tasks: int = 100
    description: str = ""
    seed_name: Optional[str] = None

    def __post_init__(self) -> None:
        if self.n_workers <= 0:
            raise ValueError("n_workers must be positive")
        if self.tasks_per_batch <= 0:
            raise ValueError("tasks_per_batch must be positive")
        if self.k <= 0:
            raise ValueError("k must be positive")
        if self.k > self.n_workers:
            raise ValueError("k cannot exceed the pool size")
        if self.n_working_tasks <= 0:
            raise ValueError("n_working_tasks must be positive")

    # ------------------------------------------------------------------ #
    @property
    def prior_domains(self) -> List[str]:
        return list(self.population.prior_domains)

    @property
    def target_domain(self) -> str:
        return self.population.target_domain

    def total_budget(self, k: Optional[int] = None, tasks_per_batch: Optional[int] = None) -> int:
        """Table II's ``B`` for the (possibly overridden) ``k`` and ``Q``."""
        return default_total_budget(
            self.n_workers,
            k if k is not None else self.k,
            tasks_per_batch if tasks_per_batch is not None else self.tasks_per_batch,
        )

    def schedule(self, k: Optional[int] = None, tasks_per_batch: Optional[int] = None) -> BudgetSchedule:
        """Budget schedule for the (possibly overridden) ``k`` and ``Q``."""
        resolved_k = k if k is not None else self.k
        return compute_budget(self.n_workers, resolved_k, self.total_budget(k, tasks_per_batch))

    def statistics(self) -> Dict[str, int]:
        """The Table II row for this dataset."""
        return {
            "workers": self.n_workers,
            "Q": self.tasks_per_batch,
            "k": self.k,
            "batches": number_of_batches(self.n_workers, self.k),
            "B": self.total_budget(),
        }

    def with_overrides(self, **changes: object) -> "DatasetSpec":
        """A copy of the spec with some fields replaced (frozen-dataclass helper)."""
        return replace(self, **changes)

    # ------------------------------------------------------------------ #
    def instantiate(
        self,
        seed: SeedLike = 0,
        k: Optional[int] = None,
        tasks_per_batch: Optional[int] = None,
    ) -> "DatasetInstance":
        """Draw a concrete worker pool and task bank for this spec.

        The same ``seed`` always yields the same pool, so the elimination
        methods compared in one experiment cell face identical workers.
        """
        derivation_name = self.seed_name if self.seed_name is not None else self.name
        pool_seed = derive_seed(seed, derivation_name, "pool")
        task_seed = derive_seed(seed, derivation_name, "tasks")
        # The id prefix follows the seed name so a scenario pool's workers
        # carry the same ids (and thus the same per-worker answer streams)
        # as the base dataset's — contamination sweeps stay paired.
        workers = sample_learning_population(
            self.population,
            n_workers=self.n_workers,
            rng=pool_seed,
            id_prefix=derivation_name.lower(),
        )
        schedule = self.schedule(k=k, tasks_per_batch=tasks_per_batch)
        # Enough distinct golden questions for a never-eliminated worker,
        # plus one extra batch of slack before the bank cycles.
        n_learning = schedule.full_training_exposure + self.tasks_per_batch
        task_bank = generate_task_bank(
            domain=self.target_domain,
            n_learning=max(n_learning, 1),
            n_working=self.n_working_tasks,
            rng=task_seed,
        )
        return DatasetInstance(spec=self, pool=WorkerPool(workers), task_bank=task_bank, schedule=schedule, seed=seed)


@dataclass
class DatasetInstance:
    """A concrete draw of a dataset: worker pool, task bank and schedule."""

    spec: DatasetSpec
    pool: WorkerPool
    task_bank: TaskBank
    schedule: BudgetSchedule
    seed: SeedLike = 0

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def prior_domains(self) -> List[str]:
        return self.spec.prior_domains

    @property
    def target_domain(self) -> str:
        return self.spec.target_domain

    def environment(self, run_seed: SeedLike = None, answer_engine: str = "vectorized") -> AnnotationEnvironment:
        """A fresh environment for one selection run.

        Worker training exposure is reset by the environment constructor, so
        every method / repetition starts from the same untrained pool.
        ``answer_engine`` selects the answer-simulation path (engines are
        bit-identical; ``"reference"`` exists for verification).
        """
        derivation_name = self.spec.seed_name if self.spec.seed_name is not None else self.name
        answer_seed = derive_seed(self.seed, derivation_name, "answers", run_seed if run_seed is not None else 0)
        return AnnotationEnvironment(
            pool=self.pool,
            task_bank=self.task_bank,
            schedule=self.schedule,
            prior_domains=self.prior_domains,
            rng=answer_seed,
            batch_size=self.spec.tasks_per_batch,
            answer_engine=answer_engine,
        )

    # ------------------------------------------------------------------ #
    # Oracle views used by the evaluation and consistency modules
    # ------------------------------------------------------------------ #
    def initial_target_accuracies(self) -> np.ndarray:
        """Latent pre-training target-domain accuracy of every worker."""
        return np.array([w.accuracy_at(0.0) for w in self.pool], dtype=float)

    def first_batch_target_accuracies(self) -> np.ndarray:
        """Latent accuracy after the first batch of ``Q`` learning tasks.

        This is the quantity the paper's Table IV reports for the target
        domain ("calculated based on the first batch learning task results")
        and the one its consistency analysis buckets.
        """
        exposure = float(self.spec.tasks_per_batch)
        return np.array([w.accuracy_at(exposure) for w in self.pool], dtype=float)

    def final_target_accuracies(self) -> np.ndarray:
        """Latent fully trained target-domain accuracy of every worker."""
        exposure = float(self.schedule.full_training_exposure)
        return np.array([w.accuracy_at(exposure) for w in self.pool], dtype=float)

    def prior_accuracy_matrix(self) -> np.ndarray:
        """Historical accuracies over the prior domains (workers x domains)."""
        matrix, _ = self.pool.profile_matrices(self.prior_domains)
        return matrix

    def ground_truth_mean_accuracy(self, k: Optional[int] = None) -> float:
        """The Table V "Ground Truth" row: mean final accuracy of the true top-k."""
        resolved_k = k if k is not None else self.schedule.k
        finals = np.sort(self.final_target_accuracies())[::-1]
        return float(np.mean(finals[: min(resolved_k, finals.size)]))


__all__ = ["DatasetSpec", "DatasetInstance"]
