"""Synthetic datasets S-1 .. S-4 (Section V-A).

The paper generates synthetic worker pools of 40, 50, 80 and 160 workers by

1. fitting a truncated multivariate normal over the three prior domains and
   the target domain to RW-1's moments (Table IV lists the per-dataset
   values actually realised);
2. drawing the inter-domain correlations uniformly at random in ``(0, 1)``;
3. sampling each worker's accuracy vector from the truncated normal, using
   ``h_T`` as the Bernoulli parameter for target-domain answers;
4. attaching modified-IRT learning dynamics so ``h_T`` grows batch by batch.

:func:`synthetic_spec` reproduces that recipe, parameterised by the pool
size; the four canonical configurations use the Table IV moments verbatim.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple


from repro.datasets.base import DatasetSpec
from repro.workers.population import PopulationConfig

# Table IV: (mean, std) per domain for each synthetic dataset.
_TABLE_IV_MOMENTS: Dict[str, Dict[str, Tuple[float, float]]] = {
    "S-1": {
        "prior-1": (0.72, 0.23),
        "prior-2": (0.86, 0.13),
        "prior-3": (0.53, 0.29),
        "target": (0.49, 0.18),
    },
    "S-2": {
        "prior-1": (0.64, 0.27),
        "prior-2": (0.83, 0.15),
        "prior-3": (0.51, 0.25),
        "target": (0.51, 0.20),
    },
    "S-3": {
        "prior-1": (0.66, 0.26),
        "prior-2": (0.87, 0.13),
        "prior-3": (0.54, 0.27),
        "target": (0.50, 0.18),
    },
    "S-4": {
        "prior-1": (0.68, 0.25),
        "prior-2": (0.87, 0.13),
        "prior-3": (0.54, 0.27),
        "target": (0.50, 0.18),
    },
}

# Pool sizes per Table II.
_POOL_SIZES: Dict[str, int] = {"S-1": 40, "S-2": 50, "S-3": 80, "S-4": 160}

_DEFAULT_Q = 20
_DEFAULT_K = 5
_PRIOR_TASK_COUNT = 10  # learning tasks per batch on the prior domains (Section V-A)


def synthetic_spec(
    name: str = "S-1",
    n_workers: Optional[int] = None,
    tasks_per_batch: int = _DEFAULT_Q,
    k: int = _DEFAULT_K,
    correlation_range: Tuple[float, float] = (0.0, 1.0),
    gain_scale: float = 1.0,
) -> DatasetSpec:
    """Build a synthetic dataset specification.

    Parameters
    ----------
    name:
        One of ``"S-1" .. "S-4"`` to use the paper's published moments, or
        any other string to create a custom synthetic dataset (then
        ``n_workers`` must be given and S-1 moments are used as the base).
    n_workers:
        Pool size override; defaults to the Table II value for the named
        dataset.
    tasks_per_batch, k:
        The paper's defaults are ``Q = 20`` and ``k = 5``.
    correlation_range:
        Range of the uniform-random inter-domain correlations.
    gain_scale:
        Multiplier on the inverted IRT learning rate; 1.0 reproduces the
        paper's synthetic recipe exactly.
    """
    moments = _TABLE_IV_MOMENTS.get(name, _TABLE_IV_MOMENTS["S-1"])
    pool_size = n_workers if n_workers is not None else _POOL_SIZES.get(name)
    if pool_size is None:
        raise ValueError(
            f"unknown synthetic dataset {name!r}: pass n_workers explicitly for custom configurations"
        )

    prior_means = tuple(moments[f"prior-{i}"][0] for i in range(1, 4))
    prior_stds = tuple(moments[f"prior-{i}"][1] for i in range(1, 4))
    target_mean, target_std = moments["target"]

    population = PopulationConfig(
        prior_domains=("prior-1", "prior-2", "prior-3"),
        target_domain="target",
        prior_means=prior_means,
        prior_stds=prior_stds,
        target_mean=target_mean,
        target_std=target_std,
        correlations=None,
        correlation_range=correlation_range,
        prior_task_count=_PRIOR_TASK_COUNT,
        learning_mode="target_quality",
        start_accuracy=0.5,
        initial_spread=0.4,
        initial_noise_std=0.5,
        reference_exposure=tasks_per_batch,
        gain_scale=gain_scale,
        learning_rate_noise_std=0.0,
    )
    return DatasetSpec(
        name=name,
        population=population,
        n_workers=pool_size,
        tasks_per_batch=tasks_per_batch,
        k=k,
        n_working_tasks=100,
        description=(
            f"Synthetic dataset {name}: {pool_size} workers drawn from a truncated multivariate normal "
            "matched to RW-1 moments with uniform-random cross-domain correlations (Section V-A)."
        ),
    )


def all_synthetic_specs() -> Dict[str, DatasetSpec]:
    """The four canonical synthetic specifications keyed by name."""
    return {name: synthetic_spec(name) for name in _POOL_SIZES}


__all__ = ["synthetic_spec", "all_synthetic_specs"]
