"""Parsed-module and project-wide context handed to every rule.

Two layers:

:class:`ModuleContext`
    One file: its AST, source lines, derived dotted module name, and an
    import table that resolves ``Name``/``Attribute`` expressions to dotted
    qualified names (``np.random.seed`` -> ``numpy.random.seed``,
    ``b.StaticWorker`` -> ``repro.workers.behavior.StaticWorker``).  The
    table also covers module-level definitions and simple local aliases
    (``registry = GLOBAL_BEHAVIOR_REGISTRY``), which is what lets contract
    rules recognise registration call sites in any style the repo uses.

:class:`ProjectIndex`
    Every class and top-level function across the analyzed tree, with
    method sets and resolved base names, so contract rules can check a
    class registered in one module against its definition in another —
    including inherited methods, walked through the in-project MRO.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

#: Module-name suffix identifying the one module allowed to own global RNG
#: coercion (``as_generator(None)`` draws fresh entropy by design there).
RNG_MODULE_SUFFIX = "repro.stats.rng"

#: Filename fragments marking modules under the fsynced-write discipline.
DURABLE_MODULE_MARKERS = ("journal", "store")

#: Names matching this pattern mark a module as schema-versioned: its
#: payload writers must stamp a ``schema_version`` key.
SCHEMA_VERSION_PATTERN = re.compile(r"SCHEMA_VERSION")

#: External bases that are known to contribute no payload/contract methods;
#: they resolve to "empty" instead of poisoning the MRO walk as unknown.
KNOWN_EMPTY_BASES = frozenset(
    {"abc.ABC", "object", "typing.Protocol", "typing.Generic", "enum.Enum", "enum.IntEnum"}
)


def _base_expr(node: ast.expr) -> ast.expr:
    """Strip subscripts so ``Generic[T]`` resolves like ``Generic``."""
    while isinstance(node, ast.Subscript):
        node = node.value
    return node


@dataclass
class ClassInfo:
    """One class definition: where it lives and what it provides."""

    qualified_name: str
    module_name: str
    #: Names of methods defined directly on the class body.
    methods: Set[str]
    #: Resolved dotted base names; ``None`` entries are unresolvable bases.
    bases: List[Optional[str]]
    #: Parameter names of ``__init__`` (excluding ``self``), if defined.
    init_params: Tuple[str, ...] = ()
    #: Whether ``__init__`` takes ``**kwargs``.
    init_has_kwargs: bool = False


@dataclass
class FunctionInfo:
    """One top-level function definition: its parameter surface."""

    qualified_name: str
    module_name: str
    params: Tuple[str, ...]
    has_kwargs: bool


def _callable_params(node: ast.AST) -> Tuple[Tuple[str, ...], bool]:
    """Parameter names and ``**kwargs`` presence of a function definition."""
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return (), False
    args = node.args
    names = [arg.arg for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]]
    return tuple(names), args.kwarg is not None


class ModuleContext:
    """One parsed source file plus name-resolution helpers."""

    def __init__(self, path: Path, source: str, tree: ast.Module, *, root: Optional[Path] = None) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        self.display_path = self._display_path(path, root)
        self.module_name = self._module_name(self.display_path)
        self._names: Dict[str, str] = {}
        self._build_name_table()

    # ------------------------------------------------------------------ #
    # Identity
    # ------------------------------------------------------------------ #
    @staticmethod
    def _display_path(path: Path, root: Optional[Path]) -> str:
        if root is not None:
            try:
                return path.resolve().relative_to(root.resolve()).as_posix()
            except ValueError:
                pass
        return path.as_posix()

    @staticmethod
    def _module_name(display_path: str) -> str:
        parts = list(Path(display_path).with_suffix("").parts)
        # src-layout: the package root lives under ``src/``.
        if "src" in parts:
            parts = parts[parts.index("src") + 1 :]
        if parts and parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts)

    @property
    def package_name(self) -> str:
        """The package containing this module (for relative imports)."""
        if self.display_path.endswith("__init__.py"):
            return self.module_name
        return self.module_name.rpartition(".")[0]

    @property
    def is_rng_module(self) -> bool:
        """Whether this is the repo's designated RNG-plumbing module."""
        return self.module_name.endswith(RNG_MODULE_SUFFIX)

    @property
    def is_durable_module(self) -> bool:
        """Whether this module is under the fsynced journal/store discipline."""
        stem = self.path.stem.lower()
        return any(marker in stem for marker in DURABLE_MODULE_MARKERS)

    @property
    def is_schema_versioned(self) -> bool:
        """Whether the module defines or imports a ``*SCHEMA_VERSION*`` name."""
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Name) and SCHEMA_VERSION_PATTERN.search(node.id):
                return True
            if isinstance(node, ast.alias) and SCHEMA_VERSION_PATTERN.search(node.name):
                return True
        return False

    # ------------------------------------------------------------------ #
    # Name resolution
    # ------------------------------------------------------------------ #
    def _build_name_table(self) -> None:
        names = self._names
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        names[alias.asname] = alias.name
                    else:
                        # ``import a.b`` binds ``a``; attribute chains walk
                        # the rest (``a.b.c`` resolves as "a" + ".b.c").
                        top = alias.name.split(".", 1)[0]
                        names.setdefault(top, top)
            elif isinstance(node, ast.ImportFrom):
                base = self._resolve_import_from(node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    names[alias.asname or alias.name] = f"{base}.{alias.name}"
        # Module-level definitions join the namespace so intra-module
        # references (``GLOBAL_BEHAVIOR_REGISTRY``, a class registered in
        # its own file) resolve to qualified names.
        prefix = f"{self.module_name}." if self.module_name else ""
        for node in self.tree.body:
            if isinstance(node, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)):
                names.setdefault(node.name, f"{prefix}{node.name}")
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.setdefault(target.id, f"{prefix}{target.id}")
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                names.setdefault(node.target.id, f"{prefix}{node.target.id}")
        # Simple aliasing of already-resolvable values, anywhere in the
        # file (``registry = GLOBAL_BEHAVIOR_REGISTRY`` inside a loader
        # function).  Resolution may overwrite the positional default
        # recorded above, which is exactly what an alias means.
        for node in ast.walk(self.tree):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, (ast.Name, ast.Attribute))
            ):
                resolved = self.resolve(node.value)
                if resolved is not None and resolved != f"{prefix}{node.targets[0].id}":
                    names[node.targets[0].id] = resolved

    def _resolve_import_from(self, node: ast.ImportFrom) -> Optional[str]:
        if node.level == 0:
            return node.module
        package_parts = self.package_name.split(".") if self.package_name else []
        cut = node.level - 1
        if cut > len(package_parts):
            return None
        base_parts = package_parts[: len(package_parts) - cut]
        if node.module:
            base_parts.append(node.module)
        return ".".join(base_parts) if base_parts else None

    def resolve(self, node: ast.expr) -> Optional[str]:
        """Dotted qualified name of a ``Name``/``Attribute`` chain, if known."""
        node = _base_expr(node)
        if isinstance(node, ast.Name):
            return self._names.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self.resolve(node.value)
            if base is None:
                return None
            return f"{base}.{node.attr}"
        return None

    def resolve_call(self, node: ast.Call) -> Optional[str]:
        """Dotted qualified name of a call's target, if known."""
        return self.resolve(node.func)

    def callable_name(self, node: ast.Call) -> Optional[str]:
        """Like :meth:`resolve_call`, falling back to the bare name.

        Builtins (``open``, ``set``, ``sorted``) are never imported, so an
        unresolvable plain ``Name`` call resolves to its own identifier;
        dotted chains still require a resolvable base.
        """
        resolved = self.resolve(node.func)
        if resolved is not None:
            return resolved
        if isinstance(node.func, ast.Name):
            return node.func.id
        return None


class ProjectIndex:
    """Classes and top-level functions across every analyzed module."""

    def __init__(self) -> None:
        self.classes: Dict[str, ClassInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}

    @classmethod
    def build(cls, modules: Sequence[ModuleContext]) -> "ProjectIndex":
        index = cls()
        for module in modules:
            index._index_module(module)
        return index

    def _index_module(self, module: ModuleContext) -> None:
        prefix = f"{module.module_name}." if module.module_name else ""
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef):
                qualified = f"{prefix}{node.name}"
                methods = {
                    item.name
                    for item in node.body
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                }
                init = next(
                    (
                        item
                        for item in node.body
                        if isinstance(item, ast.FunctionDef) and item.name == "__init__"
                    ),
                    None,
                )
                init_params, init_kwargs = _callable_params(init) if init is not None else ((), False)
                self.classes[qualified] = ClassInfo(
                    qualified_name=qualified,
                    module_name=module.module_name,
                    methods=methods,
                    bases=[module.resolve(base) for base in node.bases],
                    init_params=tuple(p for p in init_params if p != "self"),
                    init_has_kwargs=init_kwargs,
                )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                params, has_kwargs = _callable_params(node)
                qualified = f"{prefix}{node.name}"
                self.functions[qualified] = FunctionInfo(
                    qualified_name=qualified,
                    module_name=module.module_name,
                    params=params,
                    has_kwargs=has_kwargs,
                )

    # ------------------------------------------------------------------ #
    # Contract queries
    # ------------------------------------------------------------------ #
    def has_method(self, class_name: str, method: str) -> Optional[bool]:
        """Whether ``class_name`` provides ``method`` through its MRO.

        Returns ``True``/``False`` when the in-project hierarchy settles the
        question and ``None`` when an unresolvable external base leaves it
        open — contract rules treat ``None`` leniently to avoid false
        positives on classes inheriting from outside the analyzed tree.
        """
        seen: Set[str] = set()
        unknown = False
        stack = [class_name]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                if current not in KNOWN_EMPTY_BASES:
                    unknown = True
                continue
            if method in info.methods:
                return True
            for base in info.bases:
                if base is None:
                    unknown = True
                else:
                    stack.append(base)
        return None if unknown else False

    def init_accepts(self, class_name: str, param: str) -> Optional[bool]:
        """Whether the class's ``__init__`` accepts ``param`` (MRO-aware)."""
        seen: Set[str] = set()
        unknown = False
        stack = [class_name]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                if current not in KNOWN_EMPTY_BASES:
                    unknown = True
                continue
            if "__init__" in info.methods:
                return param in info.init_params or info.init_has_kwargs
            for base in info.bases:
                if base is None:
                    unknown = True
                else:
                    stack.append(base)
        return None if unknown else False


__all__ = [
    "ClassInfo",
    "FunctionInfo",
    "ModuleContext",
    "ProjectIndex",
    "RNG_MODULE_SUFFIX",
    "DURABLE_MODULE_MARKERS",
    "KNOWN_EMPTY_BASES",
]
