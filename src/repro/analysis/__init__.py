"""Determinism & contract analyzer: the repo's reproducibility lint engine.

Every layer of this reproduction stakes its correctness on invariants no
generic linter checks: counter-based splitmix64 streams instead of global
random state, ``sort_keys`` JSON and fsynced schema-versioned journals,
and registry contracts for selectors/behaviours/routers.  This package
enforces them *statically*, before an equivalence test has to catch the
fallout:

>>> from repro.analysis import analyze, format_text
>>> report = analyze(["src"])          # doctest: +SKIP
>>> print(format_text(report))         # doctest: +SKIP

The rule pack (see ``repro-crowd lint --list-rules``):

* **D-rules** — determinism: global/unseeded RNG outside
  ``repro/stats/rng.py`` (D001), wall-clock/timer calls (D002),
  ``json.dumps`` without ``sort_keys=True`` (D003), unsynced writes in
  journal/store modules (D004), iteration over sets (D005).
* **C-rules** — contracts: registered behaviour classes implement the
  batched accuracy-curve API (C001), routers implement routing plus the
  membership hooks (C002), selector factories take ``seed`` (C003),
  payload writers in schema-versioned modules stamp ``schema_version``
  (C004).
* **O-rules** — observability: metric registrations must use the
  :mod:`repro.obs.naming` grammar, computed names via ``metric_name``
  (O001).
* **S-rules** — safety: mutable default arguments (S001), swallowed
  bare/``Exception`` handlers (S002).
* **Engine rules** — malformed suppression pragmas (P001/P002) and parse
  failures (E001).

Intentional violations are waived at the site with a mandatory reason
(e.g. the one wall-clock module the whole tree funnels through)::

    # repro: allow-file[D002] -- the single blessed wall-clock site

Custom rules plug in through the registry, mirroring
:mod:`repro.core.registry`::

    from repro.analysis import BaseRule, register_rule

    @register_rule
    class NoPrintRule(BaseRule):
        rule_id = "X001"
        ...
"""

from repro.analysis.base import BaseRule
from repro.analysis.context import ModuleContext, ProjectIndex
from repro.analysis.engine import DEFAULT_LINT_PATHS, AnalysisReport, analyze, discover_files
from repro.analysis.findings import Finding, FindingCounts, Severity
from repro.analysis.pragmas import Pragma, SuppressionSet, parse_suppressions
from repro.analysis.registry import (
    GLOBAL_RULE_REGISTRY,
    RuleRegistry,
    all_rules,
    describe_rule,
    make_rule,
    register_rule,
    resolve_rule_name,
    rule_exists,
    rule_names,
)
from repro.analysis.reporters import (
    LINT_SCHEMA_VERSION,
    format_json,
    format_text,
    report_payload,
)

__all__ = [
    # model
    "Finding",
    "FindingCounts",
    "Severity",
    # rules + registry
    "BaseRule",
    "RuleRegistry",
    "GLOBAL_RULE_REGISTRY",
    "register_rule",
    "make_rule",
    "all_rules",
    "rule_names",
    "rule_exists",
    "resolve_rule_name",
    "describe_rule",
    # engine
    "ModuleContext",
    "ProjectIndex",
    "AnalysisReport",
    "analyze",
    "discover_files",
    "DEFAULT_LINT_PATHS",
    # pragmas
    "Pragma",
    "SuppressionSet",
    "parse_suppressions",
    # reporters
    "LINT_SCHEMA_VERSION",
    "format_text",
    "format_json",
    "report_payload",
]
