"""The finding model: what the analyzer reports and how it is ordered.

A :class:`Finding` is one rule violation anchored to a ``file:line:col``
span.  Findings are value objects — reporters, the CLI and the test suite
all consume the same structure — and they sort deterministically (path,
line, column, rule id) so two runs over the same tree produce byte-identical
reports.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


class Severity(enum.IntEnum):
    """How blocking a finding is.

    ``ERROR`` findings fail the default lint gate; ``WARNING`` findings only
    fail under ``--strict``.  The integer ordering makes severity comparable
    (``Severity.ERROR > Severity.WARNING``).
    """

    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule_id: str
    rule_name: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str
    #: Set when an ``# repro: allow[...]`` pragma silenced this finding.
    suppressed: bool = False
    #: The pragma's mandatory justification (only when ``suppressed``).
    suppression_reason: Optional[str] = None

    @property
    def sort_key(self) -> Tuple[str, int, int, str]:
        """Deterministic report order: path, then line, column, rule id."""
        return (self.path, self.line, self.col, self.rule_id)

    @property
    def location(self) -> str:
        """The clickable ``path:line:col`` prefix used by the text reporter."""
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable representation (stable key set)."""
        return {
            "rule_id": self.rule_id,
            "rule_name": self.rule_name,
            "severity": str(self.severity),
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "suppressed": self.suppressed,
            "suppression_reason": self.suppression_reason,
        }


@dataclass
class FindingCounts:
    """Severity tally used by report summaries."""

    errors: int = 0
    warnings: int = 0
    suppressed: int = 0
    by_rule: Dict[str, int] = field(default_factory=dict)

    def add(self, finding: Finding) -> None:
        if finding.suppressed:
            self.suppressed += 1
            return
        if finding.severity is Severity.ERROR:
            self.errors += 1
        else:
            self.warnings += 1
        self.by_rule[finding.rule_id] = self.by_rule.get(finding.rule_id, 0) + 1

    @property
    def total(self) -> int:
        """Active (non-suppressed) findings."""
        return self.errors + self.warnings


__all__ = ["Severity", "Finding", "FindingCounts"]
