"""Inline suppression pragmas: ``# repro: allow[RULE] -- reason``.

A violation the repo has decided to live with is silenced *at the site*,
with a mandatory justification:

``# repro: allow[D002] -- bench timing loop; never feeds seeds``
    On the flagged line (or the line directly above it): suppresses the
    named rules for that line only.

``# repro: allow-file[D002] -- every timing call here is the measurement``
    Anywhere in the file (conventionally the top): suppresses the named
    rules for the whole file.

Multiple rules share one pragma: ``allow[D001,D003]``.  Rule keys are
case-insensitive and may be ids or registered aliases.  A pragma without a
reason does **not** suppress anything and is itself reported (``P001``);
an unknown rule key is reported too (``P002``) so typos cannot silently
disable the gate.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.base import BaseRule
from repro.analysis.context import ModuleContext, ProjectIndex
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import GLOBAL_RULE_REGISTRY, register_rule

#: The pragma grammar inside a comment.  The reason separator is ``--``.
PRAGMA_PATTERN = re.compile(
    r"repro:\s*(?P<kind>allow-file|allow)\[(?P<rules>[^\]]*)\]\s*(?:--\s*(?P<reason>\S.*?))?\s*$"
)


@dataclass(frozen=True)
class Pragma:
    """One parsed suppression comment."""

    kind: str  # "allow" | "allow-file"
    rule_ids: Tuple[str, ...]  # canonical ids of the recognised keys
    unknown_keys: Tuple[str, ...]  # keys that resolved to no registered rule
    reason: Optional[str]
    line: int  # where the comment sits
    anchor: int  # the source line the pragma governs (== line, or line + 1)
    col: int

    @property
    def effective(self) -> bool:
        """Whether this pragma suppresses anything (reason is mandatory)."""
        return bool(self.reason) and bool(self.rule_ids)


@dataclass
class SuppressionSet:
    """Every pragma of one module, indexed for fast lookup."""

    pragmas: List[Pragma] = field(default_factory=list)
    #: rule id -> file-level pragma governing the whole module.
    file_level: Dict[str, Pragma] = field(default_factory=dict)
    #: (line, rule id) -> inline pragma governing that line.
    by_line: Dict[Tuple[int, str], Pragma] = field(default_factory=dict)

    def lookup(self, rule_id: str, line: int) -> Optional[Pragma]:
        """The pragma suppressing ``rule_id`` at ``line``, if any."""
        inline = self.by_line.get((line, rule_id))
        if inline is not None:
            return inline
        return self.file_level.get(rule_id)


def _iter_comments(source: str) -> Iterator[Tuple[int, int, str, str]]:
    """Yield ``(line, col, text, line_source)`` for every comment token."""
    reader = io.StringIO(source).readline
    try:
        for token in tokenize.generate_tokens(reader):
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.start[1], token.string, token.line
    except (tokenize.TokenError, IndentationError):  # pragma: no cover - ast parsed already
        return


def parse_suppressions(module: ModuleContext) -> SuppressionSet:
    """Parse every pragma in ``module`` and index the effective ones."""
    suppressions = SuppressionSet()
    for line, col, text, line_source in _iter_comments(module.source):
        match = PRAGMA_PATTERN.search(text)
        if match is None:
            continue
        rule_ids: List[str] = []
        unknown: List[str] = []
        for key in match.group("rules").split(","):
            key = key.strip()
            if not key:
                continue
            try:
                rule_ids.append(GLOBAL_RULE_REGISTRY.resolve(key))
            except KeyError:
                unknown.append(key)
        comment_only = line_source[:col].strip() == ""
        pragma = Pragma(
            kind=match.group("kind"),
            rule_ids=tuple(rule_ids),
            unknown_keys=tuple(unknown),
            reason=match.group("reason"),
            line=line,
            # A comment on its own line governs the statement below it; a
            # trailing comment governs its own line.
            anchor=line + 1 if comment_only else line,
            col=col + 1,
        )
        suppressions.pragmas.append(pragma)
        if not pragma.effective:
            continue
        for rule_id in pragma.rule_ids:
            if pragma.kind == "allow-file":
                suppressions.file_level.setdefault(rule_id, pragma)
            else:
                suppressions.by_line.setdefault((pragma.anchor, rule_id), pragma)
    return suppressions


@register_rule
class PragmaReasonRule(BaseRule):
    """A suppression pragma must carry a ``-- reason`` justification."""

    rule_id = "P001"
    name = "pragma-reason"
    severity = Severity.ERROR
    description = "suppression pragma without a '-- reason' (it suppresses nothing)"

    def check(self, module: ModuleContext, project: ProjectIndex) -> Iterator[Finding]:
        # Emitted by the engine from the parsed pragma set, not by walking
        # the AST; the class exists so the id is registered and documented.
        return iter(())

    def from_pragma(self, module: ModuleContext, pragma: Pragma) -> Finding:
        return self.finding_at(
            module,
            pragma.line,
            pragma.col,
            f"pragma '{pragma.kind}[{', '.join(pragma.rule_ids + pragma.unknown_keys)}]' has no "
            f"'-- reason'; a suppression must say why the violation is intentional",
        )


@register_rule
class PragmaUnknownRule(BaseRule):
    """Every rule key named in a pragma must exist."""

    rule_id = "P002"
    name = "pragma-unknown-rule"
    severity = Severity.ERROR
    description = "suppression pragma naming an unregistered rule (typo-proofing the gate)"

    def check(self, module: ModuleContext, project: ProjectIndex) -> Iterator[Finding]:
        return iter(())

    def from_pragma(self, module: ModuleContext, pragma: Pragma) -> Iterator[Finding]:
        for key in pragma.unknown_keys:
            yield self.finding_at(
                module,
                pragma.line,
                pragma.col,
                f"pragma names unknown rule {key!r}; registered rules: "
                f"{', '.join(GLOBAL_RULE_REGISTRY.names())}",
            )


__all__ = [
    "PRAGMA_PATTERN",
    "Pragma",
    "SuppressionSet",
    "parse_suppressions",
    "PragmaReasonRule",
    "PragmaUnknownRule",
]
