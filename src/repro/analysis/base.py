"""The rule interface every analysis check implements.

A rule is a stateless class with identity attributes (``rule_id``,
``name``, ``severity``, ``description``) and one method,
:meth:`BaseRule.check`, that walks a parsed module and yields
:class:`~repro.analysis.findings.Finding` objects.  Rules never read the
filesystem themselves — the engine hands them a
:class:`~repro.analysis.context.ModuleContext` (one file's AST plus import
resolution) and the :class:`~repro.analysis.context.ProjectIndex` (every
class and function across the analyzed tree, for cross-module contract
checks).
"""

from __future__ import annotations

import abc
import ast
from typing import TYPE_CHECKING, Iterator

from repro.analysis.findings import Finding, Severity

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.analysis.context import ModuleContext, ProjectIndex


class BaseRule(abc.ABC):
    """Interface every analysis rule implements."""

    #: Canonical id: one letter (family) + three digits, e.g. ``"D003"``.
    rule_id: str = ""
    #: Human-readable kebab-case alias, e.g. ``"unsorted-json"``.
    name: str = ""
    #: Blocking level (see :class:`~repro.analysis.findings.Severity`).
    severity: Severity = Severity.ERROR
    #: One-line summary shown by ``repro-crowd lint --list-rules``.
    description: str = ""

    @abc.abstractmethod
    def check(self, module: "ModuleContext", project: "ProjectIndex") -> Iterator[Finding]:
        """Yield one finding per violation in ``module``."""

    def finding(self, module: "ModuleContext", node: ast.AST, message: str) -> Finding:
        """Build a finding anchored at ``node`` with this rule's identity."""
        return Finding(
            rule_id=self.rule_id,
            rule_name=self.name,
            severity=self.severity,
            path=module.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )

    def finding_at(self, module: "ModuleContext", line: int, col: int, message: str) -> Finding:
        """Build a finding at an explicit location (pragma/parse findings)."""
        return Finding(
            rule_id=self.rule_id,
            rule_name=self.name,
            severity=self.severity,
            path=module.display_path,
            line=line,
            col=col,
            message=message,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(rule_id={self.rule_id!r}, name={self.name!r})"


__all__ = ["BaseRule"]
