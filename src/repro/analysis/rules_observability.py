"""O-rules: the observability discipline.

Metric identity is an API: the catalog, the Prometheus exposition and
the byte-stable snapshots all key on the dotted metric name, so a name
that dodges the :mod:`repro.obs.naming` grammar (or is glued together
with string arithmetic the grammar never sees) silently forks the
telemetry namespace.

``O001`` metric registrations must pass a literal name that satisfies
the grammar, or build one through :func:`repro.obs.naming.metric_name`.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.base import BaseRule
from repro.analysis.context import ModuleContext, ProjectIndex
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import register_rule
from repro.obs.naming import METRIC_NAME_PATTERN

#: Registry methods whose first argument is a metric name.
REGISTRATION_METHODS = frozenset({"counter", "gauge", "histogram"})

#: The blessed constructor for computed metric names.
NAMING_HELPER = "repro.obs.naming.metric_name"


def _name_argument(node: ast.Call) -> Optional[ast.expr]:
    """The metric-name argument of a registration call, if present."""
    if node.args:
        return node.args[0]
    for keyword in node.keywords:
        if keyword.arg == "name":
            return keyword.value
    return None


def _is_string_assembly(node: ast.expr) -> bool:
    """Whether ``node`` glues a string together at the call site."""
    if isinstance(node, ast.JoinedStr):
        return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Mod)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        return node.func.attr in ("format", "join")
    return False


@register_rule
class MetricNamingRule(BaseRule):
    """Metric names follow one grammar, enforced at the registration call."""

    rule_id = "O001"
    name = "metric-naming"
    severity = Severity.ERROR
    description = (
        "metric registered under an invalid or hand-assembled name; "
        "use the repro.obs.naming grammar (metric_name for computed names)"
    )

    def check(self, module: ModuleContext, project: ProjectIndex) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute) or func.attr not in REGISTRATION_METHODS:
                continue
            name_arg = _name_argument(node)
            if name_arg is None:
                continue
            message = self._violation(module, func.attr, name_arg)
            if message is not None:
                yield self.finding(module, name_arg, message)

    @staticmethod
    def _violation(module: ModuleContext, method: str, name_arg: ast.expr) -> Optional[str]:
        if isinstance(name_arg, ast.Constant):
            if not isinstance(name_arg.value, str):
                return f".{method}() metric name must be a string, got {name_arg.value!r}"
            if METRIC_NAME_PATTERN.match(name_arg.value) is None:
                return (
                    f"metric name {name_arg.value!r} breaks the naming grammar "
                    f"(dotted lowercase, at least two segments)"
                )
            return None
        if isinstance(name_arg, ast.Call):
            qualified = module.resolve_call(name_arg)
            if qualified == NAMING_HELPER or (
                qualified is not None and qualified.endswith(".metric_name")
            ):
                return None
            if _is_string_assembly(name_arg):
                return (
                    f"computed .{method}() metric name; build it with "
                    f"repro.obs.naming.metric_name so the grammar is enforced"
                )
            # An opaque helper call: trust it (the registry re-validates at
            # runtime) — only visible string assembly is worth flagging.
            return None
        if _is_string_assembly(name_arg):
            return (
                f"hand-assembled .{method}() metric name; build it with "
                f"repro.obs.naming.metric_name so the grammar is enforced"
            )
        # A plain variable/attribute reference: resolvable only at runtime,
        # where MetricsRegistry validates against the same grammar.
        return None


__all__ = ["MetricNamingRule", "REGISTRATION_METHODS", "NAMING_HELPER"]
