"""D-rules: the determinism discipline.

Everything this repo claims — bit-identical engines, byte-identical
journals, order-independent shards — rests on a handful of coding
invariants that no generic linter checks.  The D-rules encode them:

``D001`` global or unseeded RNG outside :mod:`repro.stats.rng`
``D002`` wall-clock / timing calls outside :mod:`repro.obs.timing`
``D003`` ``json.dumps``/``json.dump`` without ``sort_keys=True``
``D004`` file writes in journal/store modules not paired with ``os.fsync``
``D005`` iteration over a ``set`` expression (unordered -> irreproducible)
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.base import BaseRule
from repro.analysis.context import ModuleContext, ProjectIndex
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import register_rule

#: Legacy ``numpy.random`` module-level samplers (the shared global state).
NUMPY_GLOBAL_FNS = frozenset(
    {
        "seed", "rand", "randn", "randint", "random", "random_sample", "ranf",
        "sample", "choice", "shuffle", "permutation", "uniform", "normal",
        "binomial", "beta", "gamma", "poisson", "exponential", "bytes",
        "standard_normal", "standard_cauchy", "standard_exponential",
        "standard_gamma", "standard_t", "get_state", "set_state",
        "multivariate_normal", "dirichlet", "laplace", "logistic",
        "lognormal", "geometric", "hypergeometric", "multinomial",
        "negative_binomial", "pareto", "power", "rayleigh", "triangular",
        "vonmises", "wald", "weibull", "zipf", "chisquare", "gumbel",
    }
)

#: Stdlib ``random`` module-level functions (also shared global state).
STDLIB_RANDOM_FNS = frozenset(
    {
        "seed", "random", "randint", "randrange", "choice", "choices",
        "shuffle", "sample", "uniform", "triangular", "betavariate",
        "expovariate", "gammavariate", "gauss", "lognormvariate",
        "normalvariate", "vonmisesvariate", "paretovariate",
        "weibullvariate", "getrandbits", "randbytes", "getstate", "setstate",
    }
)

#: Non-deterministic clock reads.  The monotonic timers are listed too:
#: they are legitimate *only* behind :mod:`repro.obs.timing` (the single
#: file-waived site), whose wrappers timing-report code imports instead.
CLOCK_CALLS = frozenset(
    {
        "time.time", "time.time_ns", "time.localtime", "time.gmtime",
        "time.ctime", "time.asctime", "time.strftime",
        "time.perf_counter", "time.perf_counter_ns",
        "time.monotonic", "time.monotonic_ns",
        "time.process_time", "time.process_time_ns", "time.thread_time",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
    }
)

#: Methods whose call means "bytes hit a file" in a durable module.
WRITE_METHODS = frozenset({"write", "writelines"})

#: Path convenience writers that can never be fsynced before closing.
UNSYNCABLE_WRITE_METHODS = frozenset({"write_text", "write_bytes"})


def _is_unseeded(node: ast.Call) -> bool:
    """Whether a generator-constructing call pins no seed."""
    if not node.args and not node.keywords:
        return True
    if node.args and isinstance(node.args[0], ast.Constant) and node.args[0].value is None:
        return True
    for keyword in node.keywords:
        if keyword.arg == "seed" and isinstance(keyword.value, ast.Constant) and keyword.value.value is None:
            return True
    return False


@register_rule
class GlobalRngRule(BaseRule):
    """No global or unseeded RNG outside the designated RNG module."""

    rule_id = "D001"
    name = "global-rng"
    severity = Severity.ERROR
    description = (
        "global numpy/stdlib random state or unseeded generator outside repro/stats/rng.py"
    )

    def check(self, module: ModuleContext, project: ProjectIndex) -> Iterator[Finding]:
        if module.is_rng_module:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = module.resolve_call(node)
            if qualified is None:
                continue
            message = self._violation(qualified, node)
            if message is not None:
                yield self.finding(module, node, message)

    @staticmethod
    def _violation(qualified: str, node: ast.Call) -> Optional[str]:
        if qualified.startswith("numpy.random."):
            tail = qualified[len("numpy.random."):]
            if tail in NUMPY_GLOBAL_FNS:
                return (
                    f"call to the global numpy RNG '{qualified}'; draw from a seeded "
                    f"Generator (repro.stats.rng.as_generator) instead"
                )
            if tail == "RandomState":
                return (
                    "legacy 'numpy.random.RandomState'; use a seeded "
                    "numpy.random.Generator via repro.stats.rng.as_generator"
                )
            if tail == "default_rng" and _is_unseeded(node):
                return (
                    "'numpy.random.default_rng()' without a seed draws fresh OS entropy; "
                    "pass an explicit seed (or thread one through repro.stats.rng)"
                )
        elif qualified.startswith("random."):
            tail = qualified[len("random."):]
            if tail in STDLIB_RANDOM_FNS:
                return (
                    f"call to the stdlib global RNG '{qualified}'; use a seeded "
                    f"numpy Generator from repro.stats.rng instead"
                )
            if tail in ("Random", "SystemRandom") and (tail == "SystemRandom" or _is_unseeded(node)):
                return f"'{qualified}' without a fixed seed is irreproducible"
        elif qualified == "as_generator" or qualified.endswith(".as_generator"):
            if _is_unseeded(node):
                return (
                    "'as_generator()' with no seed draws fresh entropy; outside "
                    "repro/stats/rng.py every stream must be explicitly seeded"
                )
        return None


@register_rule
class WallClockRule(BaseRule):
    """Clock reads are non-deterministic; timing-report sites must say so."""

    rule_id = "D002"
    name = "wall-clock"
    severity = Severity.ERROR
    description = (
        "direct wall-clock or timer call; go through repro.obs.timing (the one waived site)"
    )

    def check(self, module: ModuleContext, project: ProjectIndex) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = module.resolve_call(node)
            if qualified in CLOCK_CALLS:
                yield self.finding(
                    module,
                    node,
                    f"clock read '{qualified}' is non-deterministic; import the clock "
                    f"from repro.obs.timing (the one blessed wall-clock module) so "
                    f"timing stays out of engine state",
                )


@register_rule
class UnsortedJsonRule(BaseRule):
    """Serialized JSON must be key-ordered or artifacts stop being comparable."""

    rule_id = "D003"
    name = "unsorted-json"
    severity = Severity.ERROR
    description = "json.dumps/json.dump without sort_keys=True (artifact bytes become dict-order-dependent)"

    def check(self, module: ModuleContext, project: ProjectIndex) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = module.resolve_call(node)
            if qualified not in ("json.dumps", "json.dump"):
                continue
            sort_keys = next((kw.value for kw in node.keywords if kw.arg == "sort_keys"), None)
            if sort_keys is None:
                yield self.finding(
                    module, node, f"'{qualified}' without sort_keys=True; artifact bytes must not depend on dict insertion order"
                )
            elif isinstance(sort_keys, ast.Constant) and sort_keys.value is not True:
                yield self.finding(
                    module, node, f"'{qualified}' with sort_keys={sort_keys.value!r}; artifacts must serialize with sort_keys=True"
                )


@register_rule
class UnsyncedWriteRule(BaseRule):
    """Durable modules pair every file write with an ``os.fsync``."""

    rule_id = "D004"
    name = "unsynced-write"
    severity = Severity.ERROR
    description = "file write in a journal/store module not paired with os.fsync in the same function"

    def check(self, module: ModuleContext, project: ProjectIndex) -> Iterator[Finding]:
        if not module.is_durable_module:
            return
        for scope in self._scopes(module.tree):
            yield from self._check_scope(module, scope)

    @staticmethod
    def _scopes(tree: ast.Module) -> Iterator[ast.AST]:
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node
        # Module-level statements form one pseudo-scope (defs excluded:
        # their bodies were already yielded above).
        top = ast.Module(
            body=[
                stmt
                for stmt in tree.body
                if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
            ],
            type_ignores=[],
        )
        yield top

    def _check_scope(self, module: ModuleContext, scope: ast.AST) -> Iterator[Finding]:
        opens_for_write = False
        has_fsync = False
        write_calls = []
        unsyncable_calls = []
        for node in ast.walk(scope):
            if not isinstance(node, ast.Call):
                continue
            name = module.callable_name(node)
            if name == "open" and self._write_mode(node):
                opens_for_write = True
            elif name == "os.fsync" or name == "fsync":
                has_fsync = True
            elif isinstance(node.func, ast.Attribute):
                if node.func.attr in WRITE_METHODS:
                    write_calls.append(node)
                elif node.func.attr in UNSYNCABLE_WRITE_METHODS:
                    unsyncable_calls.append((node, node.func.attr))
        if opens_for_write and not has_fsync:
            for call in write_calls:
                yield self.finding(
                    module,
                    call,
                    "write to a file opened for writing with no os.fsync in the same "
                    "function; journal/store appends must be durable before they count",
                )
        for call, attr in unsyncable_calls:
            yield self.finding(
                module,
                call,
                f"'{attr}' cannot fsync before closing; use open() + write + "
                f"flush + os.fsync in durable modules",
            )

    @staticmethod
    def _write_mode(node: ast.Call) -> bool:
        mode = None
        if len(node.args) >= 2:
            mode = node.args[1]
        for keyword in node.keywords:
            if keyword.arg == "mode":
                mode = keyword.value
        if mode is None:
            return False  # default "r"
        if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
            return any(flag in mode.value for flag in "wax+")
        return True  # dynamic mode: assume the worst


@register_rule
class SetIterationRule(BaseRule):
    """Iterating a set feeds unordered data into downstream state."""

    rule_id = "D005"
    name = "set-iteration"
    severity = Severity.ERROR
    description = "iteration over a set expression; wrap in sorted(...) so the order is pinned"

    def check(self, module: ModuleContext, project: ProjectIndex) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            for iterable in self._iteration_exprs(module, node):
                if self._is_set_expr(module, iterable):
                    yield self.finding(
                        module,
                        iterable,
                        "iteration over an unordered set; any consumer (serialization, "
                        "seed derivation, accumulation) becomes hash-order-dependent — "
                        "wrap in sorted(...)",
                    )

    @staticmethod
    def _iteration_exprs(module: ModuleContext, node: ast.AST) -> Iterator[ast.expr]:
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node.iter
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for generator in node.generators:
                yield generator.iter
        elif isinstance(node, ast.Call) and node.args:
            if module.callable_name(node) in ("list", "tuple"):
                yield node.args[0]

    @staticmethod
    def _is_set_expr(module: ModuleContext, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            return module.callable_name(node) in ("set", "frozenset")
        return False


__all__ = [
    "GlobalRngRule",
    "WallClockRule",
    "UnsortedJsonRule",
    "UnsyncedWriteRule",
    "SetIterationRule",
    "NUMPY_GLOBAL_FNS",
    "STDLIB_RANDOM_FNS",
    "CLOCK_CALLS",
]
