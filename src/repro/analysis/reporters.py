"""Reporters: render an analysis run as text or as a JSON artifact.

The text form is for humans at a terminal; the JSON form is the CI
artifact (schema-versioned, key-sorted, byte-stable for a given tree — the
reporter obeys the same D-rules it reports on).
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.analysis.engine import AnalysisReport
from repro.analysis.findings import Severity

#: Bump when the JSON report layout changes shape (same discipline as
#: ``RECORD_SCHEMA_VERSION`` in :mod:`repro.experiments.store`).
LINT_SCHEMA_VERSION = 1


def format_text(report: AnalysisReport, *, show_suppressed: bool = False) -> str:
    """Human-readable findings, one ``path:line:col`` line each, plus a tally."""
    lines: List[str] = []
    for finding in report.active:
        lines.append(
            f"{finding.location}: {finding.rule_id} [{finding.severity}] "
            f"{finding.message} ({finding.rule_name})"
        )
    if show_suppressed:
        for finding in report.suppressed:
            lines.append(
                f"{finding.location}: {finding.rule_id} [suppressed] "
                f"{finding.message} — waived: {finding.suppression_reason}"
            )
    counts = report.counts()
    if counts.total == 0:
        lines.append(
            f"clean: {report.n_files} files, {len(report.rule_ids)} rules, "
            f"{counts.suppressed} waived"
        )
    else:
        lines.append(
            f"{counts.total} findings ({counts.errors} errors, {counts.warnings} warnings) "
            f"across {report.n_files} files; {counts.suppressed} waived"
        )
    return "\n".join(lines)


def report_payload(report: AnalysisReport) -> Dict[str, object]:
    """The JSON-serialisable report (suppressed findings included, flagged)."""
    counts = report.counts()
    return {
        "schema_version": LINT_SCHEMA_VERSION,
        "paths": list(report.paths),
        "rules": list(report.rule_ids),
        "n_files": report.n_files,
        "findings": [finding.to_dict() for finding in report.findings],
        "summary": {
            "errors": counts.errors,
            "warnings": counts.warnings,
            "suppressed": counts.suppressed,
            "total": counts.total,
            "by_rule": dict(counts.by_rule),
            "clean": counts.total == 0,
        },
    }


def format_json(report: AnalysisReport) -> str:
    """The CI artifact: schema-versioned, key-sorted, byte-stable JSON."""
    return json.dumps(report_payload(report), indent=2, sort_keys=True)


def severity_counts(report: AnalysisReport) -> Dict[str, int]:
    """Active findings per severity name (for programmatic consumers)."""
    tally = {str(Severity.WARNING): 0, str(Severity.ERROR): 0}
    for finding in report.active:
        tally[str(finding.severity)] += 1
    return tally


__all__ = ["LINT_SCHEMA_VERSION", "format_text", "format_json", "report_payload", "severity_counts"]
