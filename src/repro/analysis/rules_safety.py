"""S-rules: safety checks that commonly corrupt reproducibility sideways.

``S001`` mutable default arguments (state leaks across calls — and across
repetitions, which silently couples "independent" runs)
``S002`` swallowed bare/``Exception`` handlers (an error that should have
failed a run instead yields a silently-wrong artifact)

``E001`` is the engine's parse-failure channel: a file that does not parse
cannot be certified by any rule, so it is itself a finding.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import BaseRule
from repro.analysis.context import ModuleContext, ProjectIndex
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import register_rule

#: Constructor calls producing a fresh mutable object per evaluation —
#: which, in a default, is exactly once.
MUTABLE_FACTORIES = ("list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter", "OrderedDict")


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else func.attr if isinstance(func, ast.Attribute) else None
        return name in MUTABLE_FACTORIES
    return False


@register_rule
class MutableDefaultRule(BaseRule):
    """Default argument values are evaluated once and shared forever."""

    rule_id = "S001"
    name = "mutable-default"
    severity = Severity.ERROR
    description = "mutable default argument (shared across calls; use None + in-body construction)"

    def check(self, module: ModuleContext, project: ProjectIndex) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = [*node.args.defaults, *[d for d in node.args.kw_defaults if d is not None]]
            for default in defaults:
                if _is_mutable_default(default):
                    label = getattr(node, "name", "<lambda>")
                    yield self.finding(
                        module,
                        default,
                        f"mutable default argument in '{label}'; the object is created once "
                        f"and mutations leak across calls — default to None and build inside",
                    )


@register_rule
class SwallowedExceptionRule(BaseRule):
    """Broad handlers that neither re-raise nor narrow hide real failures."""

    rule_id = "S002"
    name = "swallowed-exception"
    severity = Severity.WARNING
    description = "bare/broad except that swallows the error (no raise, no narrowing)"

    def check(self, module: ModuleContext, project: ProjectIndex) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    module,
                    node,
                    "bare 'except:' catches everything including KeyboardInterrupt/"
                    "SystemExit; name the exceptions this handler is for",
                )
                continue
            if self._is_broad(node.type) and not self._reraises(node):
                yield self.finding(
                    module,
                    node,
                    "'except Exception' without re-raising swallows real failures into "
                    "silently-wrong results; narrow the exception or re-raise",
                )

    @staticmethod
    def _is_broad(type_node: ast.expr) -> bool:
        names = []
        if isinstance(type_node, ast.Tuple):
            names = [e.id for e in type_node.elts if isinstance(e, ast.Name)]
        elif isinstance(type_node, ast.Name):
            names = [type_node.id]
        return any(name in ("Exception", "BaseException") for name in names)

    @staticmethod
    def _reraises(handler: ast.ExceptHandler) -> bool:
        return any(isinstance(node, ast.Raise) for node in ast.walk(handler))


@register_rule
class SyntaxErrorRule(BaseRule):
    """A file that fails to parse cannot be certified clean."""

    rule_id = "E001"
    name = "syntax-error"
    severity = Severity.ERROR
    description = "file failed to parse; no rule can certify it"

    def check(self, module: ModuleContext, project: ProjectIndex) -> Iterator[Finding]:
        # Parse failures never reach the rule stage; the engine reports
        # them through from_error on the unparsed file.
        return iter(())

    def from_error(self, display_path: str, error: SyntaxError) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            rule_name=self.name,
            severity=self.severity,
            path=display_path,
            line=error.lineno or 1,
            col=error.offset or 1,
            message=f"syntax error: {error.msg}",
        )


__all__ = ["MutableDefaultRule", "SwallowedExceptionRule", "SyntaxErrorRule", "MUTABLE_FACTORIES"]
