"""Rule registry: look up any analysis rule by id or name.

Mirrors :mod:`repro.core.registry` for the *static-analysis* axis: every
rule class registers itself under its canonical id (``D001``, ``C002``, …)
plus a human-readable alias (``global-rng``, ``router-contract``), so the
CLI, the pragma parser and the test suite all resolve rules through one
case-insensitive lookup with friendly unknown-rule errors:

>>> from repro.analysis.registry import make_rule, resolve_rule_name
>>> resolve_rule_name("unsorted-json")
'D003'
>>> make_rule("d003").rule_id
'D003'

Registering a custom rule is one decorator:

>>> from repro.analysis.registry import register_rule
>>> from repro.analysis.base import BaseRule
>>> @register_rule
... class MyRule(BaseRule):
...     rule_id = "X001"
...     name = "my-rule"
...     ...
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Type

from repro.analysis.base import BaseRule

#: A rule registration target: the rule class itself (instantiated lazily).
RuleClass = Type[BaseRule]


class RuleRegistry:
    """An id -> rule-class mapping with aliases and friendly errors."""

    def __init__(self) -> None:
        self._rules: Dict[str, RuleClass] = {}
        self._aliases: Dict[str, str] = {}

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def register(
        self,
        rule: Optional[RuleClass] = None,
        *,
        aliases: Iterable[str] = (),
        replace: bool = False,
    ):
        """Register a rule class (usable bare: ``@register_rule``).

        The canonical key is ``rule.rule_id``; ``rule.name`` and any extra
        ``aliases`` become lookup aliases.  Duplicate ids raise unless
        ``replace=True`` — silently shadowing a shipped rule would defeat
        the lint gate.
        """

        def _register(target: RuleClass) -> RuleClass:
            canonical = self._canonical(target.rule_id)
            if not canonical:
                raise ValueError(f"rule class {target.__name__} has an empty rule_id")
            if not replace and (canonical in self._rules or canonical in self._aliases):
                raise ValueError(
                    f"rule {target.rule_id!r} is already registered (pass replace=True to override)"
                )
            self._aliases.pop(canonical, None)
            self._rules[canonical] = target
            for alias in [target.name, *aliases]:
                alias_key = self._canonical(alias)
                if not alias_key or alias_key == canonical:
                    continue
                if alias_key in self._rules:
                    raise ValueError(
                        f"alias {alias_key!r} collides with the registered rule {alias_key!r}; "
                        f"re-register that rule instead"
                    )
                existing = self._aliases.get(alias_key)
                if not replace and existing is not None and existing != canonical:
                    raise ValueError(f"alias {alias_key!r} already points at rule {existing!r}")
                self._aliases[alias_key] = canonical
            return target

        if rule is not None:
            return _register(rule)
        return _register

    def unregister(self, name: str) -> None:
        """Remove a registration and every alias pointing at it."""
        canonical = self._canonical(self.resolve(name))
        del self._rules[canonical]
        for alias in [a for a, target in self._aliases.items() if target == canonical]:
            del self._aliases[alias]

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    @staticmethod
    def _canonical(name: str) -> str:
        return name.strip().lower()

    def resolve(self, name: str) -> str:
        """Canonical rule id for ``name`` (follows aliases); KeyError if unknown."""
        key = self._canonical(name)
        key = self._aliases.get(key, key)
        if key not in self._rules:
            raise KeyError(f"unknown rule {name!r}; registered rules: {', '.join(self.names())}")
        return self._rules[key].rule_id

    def __contains__(self, name: str) -> bool:
        key = self._canonical(name)
        return self._aliases.get(key, key) in self._rules

    def names(self) -> List[str]:
        """Canonical ids of every registered rule, sorted."""
        return sorted(self._rules[key].rule_id for key in self._rules)

    def describe(self, name: str) -> str:
        """One-line human-readable description: id, name, severity, summary."""
        rule = self._rules[self._canonical(self.resolve(name))]
        return f"{rule.rule_id} ({rule.name}) [{rule.severity}] — {rule.description}"

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def create(self, name: str) -> BaseRule:
        """Instantiate the rule registered under ``name`` (id or alias)."""
        return self._rules[self._canonical(self.resolve(name))]()

    def create_all(self) -> List[BaseRule]:
        """One instance of every registered rule, ordered by rule id."""
        return [self._rules[self._canonical(rule_id)]() for rule_id in self.names()]


#: The process-wide registry used by :func:`make_rule` and the engine.
GLOBAL_RULE_REGISTRY = RuleRegistry()

_BUILTINS_LOADED = False


def _load_builtin_rules() -> None:
    """Import the modules whose import side effect registers the rule pack."""
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    import repro.analysis.pragmas  # noqa: F401  (registers P001, P002)
    import repro.analysis.rules_contracts  # noqa: F401  (registers C001-C004)
    import repro.analysis.rules_determinism  # noqa: F401  (registers D001-D005)
    import repro.analysis.rules_observability  # noqa: F401  (registers O001)
    import repro.analysis.rules_safety  # noqa: F401  (registers E001, S001, S002)

    _BUILTINS_LOADED = True


def register_rule(
    rule: Optional[RuleClass] = None,
    *,
    aliases: Iterable[str] = (),
    replace: bool = False,
):
    """Register a rule class in the global registry (decorator-friendly)."""
    return GLOBAL_RULE_REGISTRY.register(rule, aliases=aliases, replace=replace)


def make_rule(name: str) -> BaseRule:
    """Instantiate a registered rule by id or alias (case-insensitive)."""
    _load_builtin_rules()
    return GLOBAL_RULE_REGISTRY.create(name)


def rule_names() -> List[str]:
    """Canonical ids of every registered rule."""
    _load_builtin_rules()
    return GLOBAL_RULE_REGISTRY.names()


def rule_exists(name: str) -> bool:
    """Whether ``name`` (an id or an alias of one) is registered."""
    _load_builtin_rules()
    return name in GLOBAL_RULE_REGISTRY


def resolve_rule_name(name: str) -> str:
    """Canonical registered id for ``name`` (follows aliases, fixes case)."""
    _load_builtin_rules()
    return GLOBAL_RULE_REGISTRY.resolve(name)


def describe_rule(name: str) -> str:
    """Human-readable one-liner for a registered rule."""
    _load_builtin_rules()
    return GLOBAL_RULE_REGISTRY.describe(name)


def all_rules() -> List[BaseRule]:
    """One instance of every registered rule, ordered by rule id."""
    _load_builtin_rules()
    return GLOBAL_RULE_REGISTRY.create_all()


__all__ = [
    "RuleClass",
    "RuleRegistry",
    "GLOBAL_RULE_REGISTRY",
    "register_rule",
    "make_rule",
    "rule_names",
    "rule_exists",
    "resolve_rule_name",
    "describe_rule",
    "all_rules",
]
