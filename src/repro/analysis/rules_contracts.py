"""C-rules: the registry contracts.

The repo's plugin axes — selectors (:mod:`repro.core.registry`), worker
behaviours (:mod:`repro.workers.registry`) and routing policies
(:mod:`repro.serving.routing`) — are stringly-typed registries: nothing at
import time proves a registered class actually implements the API its
registry will call.  The C-rules close that gap statically, resolving
registration sites in *any* style the repo uses (``@register_behavior``
decorators, ``register_router(name, Cls)`` calls, or
``registry.register(...)`` through a local alias of a global registry) and
checking the target against the cross-module :class:`ProjectIndex`:

``C001`` behaviour classes implement ``curve_params`` + ``batch_accuracy``
``C002`` router classes implement ``route`` and the membership hooks
``C003`` selector factories accept the conventional ``seed`` keyword
``C004`` payload writers in schema-versioned modules stamp ``schema_version``
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from repro.analysis.base import BaseRule
from repro.analysis.context import ModuleContext, ProjectIndex
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import register_rule

#: Registrar function name -> contract axis.
REGISTRAR_AXES = {
    "register_behavior": "behavior",
    "register_router": "router",
    "register_selector": "selector",
}

#: ``<GLOBAL_*_REGISTRY>.register`` method calls, by registry global name.
REGISTRY_GLOBAL_AXES = {
    "GLOBAL_BEHAVIOR_REGISTRY": "behavior",
    "GLOBAL_ROUTER_REGISTRY": "router",
    "GLOBAL_SELECTOR_REGISTRY": "selector",
}

#: Methods a registered behaviour class must provide (PR 5's batched
#: accuracy-curve contract: the vectorized answer engine calls both).
BEHAVIOR_METHODS = ("curve_params", "batch_accuracy")

#: Methods a registered router class must provide: routing plus the full
#: pool change-event protocol — membership hooks the marketplace calls on
#: churn, and the index-invalidation hooks (qualification/load changes)
#: the serving pool dispatches on every demotion, re-qualification and
#: assignment charge.  Inheriting the no-op defaults from
#: ``repro.serving.routing.BaseRouter`` satisfies the contract.
ROUTER_METHODS = (
    "route",
    "on_worker_added",
    "on_worker_removed",
    "on_qualification_changed",
    "on_load_changed",
)

#: Method names treated as schema-versioned payload writers.
PAYLOAD_METHODS = ("to_dict", "trace_dict")


def _registrar_axis(qualified: Optional[str]) -> Optional[str]:
    """The contract axis of a call target, or ``None`` if not a registrar."""
    if qualified is None:
        return None
    parts = qualified.split(".")
    axis = REGISTRAR_AXES.get(parts[-1])
    if axis is not None:
        return axis
    if parts[-1] == "register" and len(parts) >= 2:
        return REGISTRY_GLOBAL_AXES.get(parts[-2])
    return None


def _registration_sites(module: ModuleContext) -> Iterator[Tuple[str, ast.AST, Optional[ast.expr], str]]:
    """Yield ``(axis, anchor_node, target_expr, registered_name)`` per site.

    ``target_expr`` is ``None`` when the registration decorates a definition
    in this module — the decorated node itself is the target then.
    """
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)):
            for decorator in node.decorator_list:
                call = decorator if isinstance(decorator, ast.Call) else None
                func = call.func if call is not None else decorator
                axis = _registrar_axis(module.resolve(func))
                if axis is not None:
                    yield axis, node, None, _registered_name(call)
        elif isinstance(node, ast.Call):
            axis = _registrar_axis(module.resolve_call(node))
            if axis is None:
                continue
            target = node.args[1] if len(node.args) >= 2 else None
            if target is None:
                target = next((kw.value for kw in node.keywords if kw.arg == "factory"), None)
            if target is not None:
                yield axis, node, target, _registered_name(node)


def _registered_name(call: Optional[ast.Call]) -> str:
    if call is not None and call.args and isinstance(call.args[0], ast.Constant):
        value = call.args[0].value
        if isinstance(value, str):
            return value
    return "<dynamic>"


def _accepts(params: Tuple[str, ...], has_kwargs: bool, param: str) -> bool:
    return param in params or has_kwargs


class _RegistrationRule(BaseRule):
    """Shared walk over registration sites for one contract axis."""

    axis: str = ""

    def check(self, module: ModuleContext, project: ProjectIndex) -> Iterator[Finding]:
        prefix = f"{module.module_name}." if module.module_name else ""
        for axis, anchor, target, registered_name in _registration_sites(module):
            if axis != self.axis:
                continue
            if target is None:
                # Decorated definition in this module.
                qualified = f"{prefix}{anchor.name}"  # type: ignore[attr-defined]
            else:
                if isinstance(target, ast.Lambda):
                    yield from self._check_lambda(module, anchor, target, registered_name)
                    continue
                resolved = module.resolve(target)
                if resolved is None:
                    continue
                qualified = resolved
            yield from self._check_target(module, project, anchor, qualified, registered_name)

    def _check_lambda(
        self, module: ModuleContext, anchor: ast.AST, target: ast.Lambda, registered_name: str
    ) -> Iterator[Finding]:
        return iter(())

    def _check_target(
        self,
        module: ModuleContext,
        project: ProjectIndex,
        anchor: ast.AST,
        qualified: str,
        registered_name: str,
    ) -> Iterator[Finding]:
        raise NotImplementedError

    def _missing_methods(
        self, project: ProjectIndex, class_name: str, required: Tuple[str, ...]
    ) -> List[str]:
        missing = []
        for method in required:
            if project.has_method(class_name, method) is False:
                missing.append(method)
        return missing


@register_rule
class BehaviorContractRule(_RegistrationRule):
    """Registered behaviours must satisfy the batched accuracy-curve API."""

    rule_id = "C001"
    name = "behavior-contract"
    severity = Severity.ERROR
    axis = "behavior"
    description = (
        "class registered as a worker behavior missing curve_params/batch_accuracy"
    )

    def _check_target(self, module, project, anchor, qualified, registered_name):
        info = project.classes.get(qualified)
        if info is not None:
            missing = self._missing_methods(project, qualified, BEHAVIOR_METHODS)
            if missing:
                yield self.finding(
                    module,
                    anchor,
                    f"class '{qualified}' registered as behavior {registered_name!r} does not "
                    f"implement {', '.join(missing)}; the vectorized answer engine calls both "
                    f"(see repro.workers.behavior.WorkerBehavior)",
                )
            return
        factory = project.functions.get(qualified)
        if factory is not None and not _accepts(factory.params, factory.has_kwargs, "profile"):
            yield self.finding(
                module,
                anchor,
                f"behavior factory '{qualified}' registered as {registered_name!r} does not "
                f"accept the 'profile' argument the registry passes",
            )


@register_rule
class RouterContractRule(_RegistrationRule):
    """Registered routers must route and honour the membership hooks."""

    rule_id = "C002"
    name = "router-contract"
    severity = Severity.ERROR
    axis = "router"
    description = (
        "class registered as a router missing route or a pool change-event hook "
        "(on_worker_added/on_worker_removed/on_qualification_changed/on_load_changed)"
    )

    def _check_target(self, module, project, anchor, qualified, registered_name):
        info = project.classes.get(qualified)
        if info is not None:
            missing = self._missing_methods(project, qualified, ROUTER_METHODS)
            if missing:
                yield self.finding(
                    module,
                    anchor,
                    f"class '{qualified}' registered as router {registered_name!r} does not "
                    f"implement {', '.join(missing)}; the pool change-event bus dispatches "
                    f"every membership/qualification/load mutation to these hooks "
                    f"(see repro.serving.routing.BaseRouter, whose no-op defaults satisfy them)",
                )
            return
        factory = project.functions.get(qualified)
        if factory is not None and not factory.params and not factory.has_kwargs:
            yield self.finding(
                module,
                anchor,
                f"router factory '{qualified}' registered as {registered_name!r} takes no "
                f"arguments; the registry calls it with the serving pool",
            )


@register_rule
class SelectorSeedRule(_RegistrationRule):
    """Selector factories must accept the conventional ``seed`` keyword."""

    rule_id = "C003"
    name = "selector-seed"
    severity = Severity.ERROR
    axis = "selector"
    description = "selector factory without a 'seed' parameter (the registry's seeding convention)"

    def _check_lambda(self, module, anchor, target, registered_name):
        params = tuple(arg.arg for arg in target.args.args)
        if not _accepts(params, target.args.kwarg is not None, "seed"):
            yield self.finding(
                module,
                anchor,
                f"selector factory registered as {registered_name!r} does not accept "
                f"'seed'; every selector factory must take the seed keyword so runs "
                f"stay reproducible",
            )

    def _check_target(self, module, project, anchor, qualified, registered_name):
        factory = project.functions.get(qualified)
        if factory is not None:
            if not _accepts(factory.params, factory.has_kwargs, "seed"):
                yield self.finding(
                    module,
                    anchor,
                    f"selector factory '{qualified}' registered as {registered_name!r} does "
                    f"not accept 'seed'; every selector factory must take the seed keyword",
                )
            return
        if qualified in project.classes and project.init_accepts(qualified, "seed") is False:
            yield self.finding(
                module,
                anchor,
                f"selector class '{qualified}' registered as {registered_name!r} has an "
                f"__init__ without 'seed'; every selector factory must take the seed keyword",
            )


@register_rule
class SchemaVersionRule(BaseRule):
    """Payload writers in schema-versioned modules stamp their version."""

    rule_id = "C004"
    name = "schema-version"
    severity = Severity.ERROR
    description = (
        "to_dict/trace_dict in a schema-versioned module that emits no schema_version key"
    )

    def check(self, module: ModuleContext, project: ProjectIndex) -> Iterator[Finding]:
        if not module.is_schema_versioned:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for item in node.body:
                if (
                    isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and item.name in PAYLOAD_METHODS
                    and not self._emits_schema_version(item)
                ):
                    yield self.finding(
                        module,
                        item,
                        f"'{node.name}.{item.name}' writes a payload in a schema-versioned "
                        f"module but never emits a 'schema_version' key (directly, via a "
                        f"*_SCHEMA_VERSION constant, or by delegating to a sibling writer)",
                    )

    @staticmethod
    def _emits_schema_version(method: ast.AST) -> bool:
        for node in ast.walk(method):
            if isinstance(node, ast.Constant) and node.value == "schema_version":
                return True
            if isinstance(node, ast.Name) and "SCHEMA_VERSION" in node.id:
                return True
            if isinstance(node, ast.Attribute) and "SCHEMA_VERSION" in node.attr:
                return True
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "self"
                and node.func.attr in PAYLOAD_METHODS
            ):
                return True
        return False


__all__ = [
    "BehaviorContractRule",
    "RouterContractRule",
    "SelectorSeedRule",
    "SchemaVersionRule",
    "BEHAVIOR_METHODS",
    "ROUTER_METHODS",
    "PAYLOAD_METHODS",
]
