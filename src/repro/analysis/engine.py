"""The analysis engine: discover files, run rules, apply suppressions.

Two passes, mirroring how the contract rules need to see the world:

1. **Parse everything.** Every ``*.py`` file under the requested paths is
   parsed into a :class:`~repro.analysis.context.ModuleContext`; the
   project-wide :class:`~repro.analysis.context.ProjectIndex` is built from
   all of them, so a class registered in one module is checked against its
   definition in another.  Files that fail to parse become ``E001``
   findings instead of crashing the run.
2. **Check and suppress.** Every selected rule walks every module;
   ``# repro: allow[...]`` pragmas then mark matching findings as
   suppressed (they stay in the report, flagged, so JSON artifacts show
   *what* was waived and *why*) and malformed pragmas become ``P001`` /
   ``P002`` findings of their own.

The result is deterministic: files are visited in sorted order and
findings sort by ``(path, line, col, rule id)``, so two runs over the same
tree produce byte-identical reports.
"""

from __future__ import annotations

import ast
import dataclasses
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Union

from repro.analysis.context import ModuleContext, ProjectIndex
from repro.analysis.findings import Finding, FindingCounts, Severity
from repro.analysis.pragmas import PragmaReasonRule, PragmaUnknownRule, parse_suppressions
from repro.analysis.registry import all_rules, make_rule
from repro.analysis.rules_safety import SyntaxErrorRule

#: Directory names never descended into during discovery.
SKIPPED_DIRS = ("__pycache__", ".git", ".venv", "node_modules")

#: The repo's lint surface: what ``repro-crowd lint`` checks by default.
DEFAULT_LINT_PATHS = ("src", "benchmarks", "examples")

PathLike = Union[str, Path]


def discover_files(paths: Sequence[PathLike]) -> List[Path]:
    """Every ``*.py`` file under ``paths`` (files kept, dirs walked), sorted."""
    files = []
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                if not any(part in SKIPPED_DIRS or part.startswith(".") for part in candidate.parts):
                    files.append(candidate)
        elif path.suffix == ".py":
            files.append(path)
        elif not path.exists():
            raise FileNotFoundError(f"lint path {path} does not exist")
    return sorted(set(files))


@dataclass
class AnalysisReport:
    """Outcome of one analysis run (JSON-serialisable via the reporters)."""

    findings: List[Finding]
    n_files: int
    rule_ids: List[str]
    paths: List[str] = field(default_factory=list)

    @property
    def active(self) -> List[Finding]:
        """Findings not waived by a pragma — what the gate counts."""
        return [finding for finding in self.findings if not finding.suppressed]

    @property
    def suppressed(self) -> List[Finding]:
        """Findings a pragma waived (kept for report transparency)."""
        return [finding for finding in self.findings if finding.suppressed]

    def counts(self) -> FindingCounts:
        counts = FindingCounts()
        for finding in self.findings:
            counts.add(finding)
        return counts

    def exit_code(self, strict: bool = False) -> int:
        """Process exit status: errors always fail; warnings fail under strict."""
        if strict:
            return 1 if self.active else 0
        return 1 if any(f.severity is Severity.ERROR for f in self.active) else 0


def analyze(
    paths: Optional[Sequence[PathLike]] = None,
    *,
    rules: Optional[Iterable[str]] = None,
    root: Optional[PathLike] = None,
) -> AnalysisReport:
    """Run the rule pack over ``paths`` and return the finding report.

    Parameters
    ----------
    paths:
        Files or directories to analyze (default: the repo's lint surface,
        ``src``/``benchmarks``/``examples``, resolved against ``root``).
    rules:
        Rule ids or aliases to run (default: every registered rule).
        Pragma/parse findings (``P001``, ``P002``, ``E001``) are emitted
        only when selected, so a filtered run reports exactly what it was
        asked about.
    root:
        Paths in findings are reported relative to this directory
        (default: the current working directory).
    """
    root_path = Path(root) if root is not None else Path.cwd()
    if paths is None:
        paths = [root_path / entry for entry in DEFAULT_LINT_PATHS if (root_path / entry).is_dir()]
    if rules is None:
        selected = all_rules()
    else:
        by_id = {}
        for name in rules:
            rule = make_rule(name)
            by_id[rule.rule_id] = rule
        selected = [by_id[rule_id] for rule_id in sorted(by_id)]
    selected_ids = {rule.rule_id for rule in selected}

    findings: List[Finding] = []
    modules: List[ModuleContext] = []
    syntax_rule = SyntaxErrorRule()
    files = discover_files(paths)
    for file_path in files:
        source = file_path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(file_path))
        except SyntaxError as error:
            if syntax_rule.rule_id in selected_ids:
                display = ModuleContext._display_path(file_path, root_path)
                findings.append(syntax_rule.from_error(display, error))
            continue
        modules.append(ModuleContext(file_path, source, tree, root=root_path))

    project = ProjectIndex.build(modules)
    reason_rule = PragmaReasonRule()
    unknown_rule = PragmaUnknownRule()
    for module in modules:
        raw: List[Finding] = []
        for rule in selected:
            raw.extend(rule.check(module, project))
        suppressions = parse_suppressions(module)
        for pragma in suppressions.pragmas:
            if pragma.reason is None and reason_rule.rule_id in selected_ids:
                raw.append(reason_rule.from_pragma(module, pragma))
            if unknown_rule.rule_id in selected_ids:
                raw.extend(unknown_rule.from_pragma(module, pragma))
        for finding in raw:
            pragma = suppressions.lookup(finding.rule_id, finding.line)
            if pragma is not None:
                finding = dataclasses.replace(
                    finding, suppressed=True, suppression_reason=pragma.reason
                )
            findings.append(finding)

    findings.sort(key=lambda finding: finding.sort_key)
    return AnalysisReport(
        findings=findings,
        n_files=len(files),
        rule_ids=sorted(selected_ids),
        paths=[Path(p).as_posix() for p in paths],
    )


__all__ = ["AnalysisReport", "analyze", "discover_files", "DEFAULT_LINT_PATHS", "SKIPPED_DIRS"]
