"""repro — Cross-domain-aware worker selection with training (ICDE 2024 reproduction).

A production-quality Python reproduction of *"Cross-domain-aware Worker
Selection with Training for Crowdsourced Annotation"* (Sun et al., ICDE
2024).  The package contains the paper's proposed selection pipeline (CPE +
LGE + budgeted Median Elimination), every baseline it compares against, a
crowdsourcing-platform simulator, the six evaluation datasets and an
experiment harness that regenerates every table and figure of the paper's
evaluation section.

Quickstart
----------
The :class:`~repro.campaign.Campaign` facade runs one annotation campaign —
dataset, selector and budget protocol — end to end:

>>> from repro import Campaign
>>> report = Campaign(dataset="S-1", selector="ours", k=5, seed=0).run()
>>> len(report.selected_worker_ids)
5
>>> 0.0 <= report.mean_accuracy <= 1.0
True

Every selection strategy is string-addressable through the selector
registry (``repro.selector_names()`` lists them), and new strategies plug
in with the ``@register_selector`` decorator:

>>> from repro import make_selector
>>> make_selector("me", seed=7).name
'me'

A finished campaign hands off to the serving layer — routing policies,
online aggregation and drift detection over the selected pool:

>>> from repro import Campaign
>>> serving = Campaign(dataset="S-1", selector="ours", k=5, seed=0).serve(n_tasks=50)
>>> serving.n_tasks_routed
50

Routing policies are registry-addressable too (``repro.router_names()``)
and extend with the ``@register_router`` decorator.

Above single-campaign serving sits the marketplace layer
(:mod:`repro.marketplace`): a :class:`~repro.marketplace.MarketplaceOrchestrator`
runs several campaigns concurrently against one shared, churning worker
marketplace under a deterministic, crash-recoverable journaled tick loop.

Both layers emit into a deterministic telemetry core (:mod:`repro.obs`):
pass ``create_telemetry()`` into ``serve``/the orchestrator and read back
byte-stable, schema-versioned metrics snapshots (``repro-crowd metrics``
lists the catalog).  Telemetry is off by default and never changes a
run's outputs.

Worker *behaviours* have their own registry (``repro.behavior_names()``,
``@register_behavior``): beyond the paper's learning workers, pools can be
contaminated with spammers, adversarial, fatigued, sleeper and drifting
workers via scenario-qualified dataset names:

>>> report = Campaign(dataset="S-1:spam10", selector="ours", k=5, seed=0).run()
>>> len(report.selected_worker_ids)
5

The lower-level objects (datasets, environments, selector classes) remain
available for harness-style use:

>>> from repro import load_dataset, OursSelector
>>> dataset = load_dataset("S-1", seed=0)
>>> environment = dataset.environment(run_seed=0)
>>> result = OursSelector(rng=0).select(environment)
>>> outcome = environment.evaluate_selection(result.selected_worker_ids)
>>> 0.0 <= outcome.mean_accuracy <= 1.0
True
"""

from repro.baselines import (
    LiRegressionSelector,
    MeCpeSelector,
    MedianEliminationSelector,
    OracleSelector,
    OursSelector,
    RandomSelector,
    UniformSamplingSelector,
)
from repro.campaign import Campaign, CampaignEvent, CampaignReport
from repro.config import BENCHMARK_CONFIG, METHOD_LABELS, METHOD_ORDER, ExperimentConfig
from repro.core import (
    CPEConfig,
    CrossDomainPerformanceEstimator,
    CrossDomainWorkerSelector,
    LGEConfig,
    LearningGainEstimator,
    SelectionResult,
    SelectorRegistry,
    make_selector,
    median_eliminate,
    register_selector,
    selector_exists,
    selector_names,
)
from repro.datasets import (
    DATASET_NAMES,
    SCENARIO_RECIPES,
    DatasetInstance,
    DatasetSpec,
    load_dataset,
    parse_scenario,
    scenario_names,
    scenario_spec,
)
from repro.evaluation import compare_selectors, evaluate_selector, ground_truth_accuracy
from repro.marketplace import (
    CampaignHandle,
    CampaignPhase,
    CampaignSpec,
    ChurnConfig,
    EventJournal,
    Marketplace,
    MarketplaceConfig,
    MarketplaceOrchestrator,
    MarketplaceReport,
)
from repro.platform import AnnotationEnvironment, BudgetSchedule, compute_budget
from repro.serving import (
    AnnotationService,
    DriftConfig,
    IncrementalDawidSkene,
    OnlineMajorityVote,
    QualificationPolicy,
    QualificationTier,
    QualityTracker,
    ServingConfig,
    ServingPool,
    ServingReport,
    make_router,
    register_router,
    router_exists,
    router_names,
)
from repro.workers import (
    AdversarialWorker,
    DrifterWorker,
    FatigueWorker,
    LearningWorker,
    SleeperWorker,
    SpammerWorker,
    StaticWorker,
    WorkerPool,
    WorkerProfile,
    behavior_exists,
    behavior_names,
    make_behavior,
    register_behavior,
)

__version__ = "1.10.0"

__all__ = [
    "__version__",
    # Campaign facade
    "Campaign",
    "CampaignEvent",
    "CampaignReport",
    # Selector registry
    "SelectorRegistry",
    "register_selector",
    "make_selector",
    "selector_names",
    "selector_exists",
    # Core algorithm
    "CrossDomainWorkerSelector",
    "CrossDomainPerformanceEstimator",
    "LearningGainEstimator",
    "CPEConfig",
    "LGEConfig",
    "SelectionResult",
    "median_eliminate",
    # Baselines
    "UniformSamplingSelector",
    "MedianEliminationSelector",
    "LiRegressionSelector",
    "MeCpeSelector",
    "OursSelector",
    "RandomSelector",
    "OracleSelector",
    # Datasets + scenarios
    "DATASET_NAMES",
    "SCENARIO_RECIPES",
    "DatasetSpec",
    "DatasetInstance",
    "load_dataset",
    "parse_scenario",
    "scenario_spec",
    "scenario_names",
    # Platform / workers
    "AnnotationEnvironment",
    "BudgetSchedule",
    "compute_budget",
    "WorkerPool",
    "WorkerProfile",
    "LearningWorker",
    "StaticWorker",
    # Behavior registry + contamination behaviors
    "register_behavior",
    "make_behavior",
    "behavior_names",
    "behavior_exists",
    "SpammerWorker",
    "AdversarialWorker",
    "FatigueWorker",
    "SleeperWorker",
    "DrifterWorker",
    # Serving layer
    "AnnotationService",
    "DriftConfig",
    "IncrementalDawidSkene",
    "OnlineMajorityVote",
    "QualificationPolicy",
    "QualificationTier",
    "QualityTracker",
    "ServingConfig",
    "ServingPool",
    "ServingReport",
    "make_router",
    "register_router",
    "router_exists",
    "router_names",
    # Marketplace orchestration
    "CampaignHandle",
    "CampaignPhase",
    "CampaignSpec",
    "ChurnConfig",
    "EventJournal",
    "Marketplace",
    "MarketplaceConfig",
    "MarketplaceOrchestrator",
    "MarketplaceReport",
    # Evaluation / configuration
    "compare_selectors",
    "evaluate_selector",
    "ground_truth_accuracy",
    "ExperimentConfig",
    "METHOD_LABELS",
    "METHOD_ORDER",
    "BENCHMARK_CONFIG",
]
