"""Command-line interface: run one annotation campaign or regenerate paper artefacts.

Examples
--------
Run a single campaign with the proposed method and print the selection as JSON::

    repro-crowd run --dataset S-1 --selector ours --k 5 --json

Stream per-round progress of a campaign::

    repro-crowd run --dataset RW-1 --selector me-cpe --stream

Select workers on S-1 and serve 200 working tasks through the selected pool::

    repro-crowd serve --dataset S-1 --selector ours --router domain_affinity --tasks 200

Run two concurrent campaigns against one churning marketplace with a
crash-recoverable event journal::

    repro-crowd marketplace --datasets S-1 S-2 --ticks 50 --journal run.jsonl

Run a campaign on a contaminated pool (10% spammers)::

    repro-crowd run --dataset S-1 --scenario spam10 --selector ours

Sweep contamination rates and compare every method's robustness::

    repro-crowd robustness --datasets S-1 --behavior spammer --rates 0 0.1 0.2 0.4

List the registered worker behaviors / scenario recipes::

    repro-crowd behaviors
    repro-crowd scenarios

Run the main results table on the two real-world datasets with 3 repetitions::

    repro-crowd table5 --datasets RW-1 RW-2 --repetitions 3

Run the comparison grid over 4 worker processes with a resumable store::

    repro-crowd experiments --datasets S-1 S-2 --n-jobs 4 --store grid.jsonl --resume

Print the dataset statistics (Table II)::

    repro-crowd table2

Sweep the initial target accuracy (Figure 5) on S-1::

    repro-crowd figure5 --datasets S-1 --repetitions 2
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.analysis import rule_exists, rule_names
from repro.campaign import Campaign
from repro.config import ExperimentConfig
from repro.core.registry import selector_exists, selector_names
from repro.datasets.registry import (
    DATASET_NAMES,
    SCENARIO_RECIPES,
    SCENARIO_SEPARATOR,
    parse_scenario,
)
from repro.platform.answers import ANSWER_ENGINES
from repro.serving.routing import known_routing_engines, router_exists, router_names
from repro.workers.registry import behavior_names, describe_behavior

# ``repro-crowd serve`` exits with this status (not 0) when the drift
# detector recommends re-selection, so shell pipelines can branch on the
# signal without parsing the report.
RESELECTION_EXIT_CODE = 3

EXPERIMENTS = (
    "table2",
    "table4",
    "table5",
    "figure5",
    "figure6",
    "figure7",
    "runtime",
    "correlation",
    "training-gain",
)


def _dataset_name(value: str) -> str:
    """Argparse type: canonicalise a dataset (or scenario) name at parse time."""
    base, _, recipe = value.partition(SCENARIO_SEPARATOR)
    canonical = base.strip().upper()
    if canonical not in DATASET_NAMES:
        raise argparse.ArgumentTypeError(
            f"unknown dataset {base!r}; choose from: {', '.join(DATASET_NAMES)}"
        )
    if recipe:
        try:
            parse_scenario(recipe)
        except ValueError as exc:
            raise argparse.ArgumentTypeError(str(exc))
        return f"{canonical}{SCENARIO_SEPARATOR}{recipe.strip().lower()}"
    return canonical


def _scenario_recipe(value: str) -> str:
    """Argparse type: validate a contamination recipe against the grammar."""
    try:
        parse_scenario(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc))
    return value.strip().lower()


def _apply_scenario(dataset: str, scenario: Optional[str]) -> str:
    """Qualify ``dataset`` with ``--scenario`` unless it already carries one."""
    if not scenario:
        return dataset
    if SCENARIO_SEPARATOR in dataset:
        raise ValueError(
            f"dataset {dataset!r} already carries a scenario; drop --scenario or the ':<recipe>' suffix"
        )
    return f"{dataset}{SCENARIO_SEPARATOR}{scenario}"


def _selector_name(value: str) -> str:
    """Argparse type: validate a selector name against the registry."""
    if not selector_exists(value):
        raise argparse.ArgumentTypeError(
            f"unknown selector {value!r}; registered selectors: {', '.join(selector_names())}"
        )
    return value.strip().lower()


def _router_name(value: str) -> str:
    """Argparse type: validate a routing-policy name against the registry."""
    if not router_exists(value):
        raise argparse.ArgumentTypeError(
            f"unknown router {value!r}; registered routers: {', '.join(router_names())}"
        )
    return value.strip().lower()


def _rule_name(value: str) -> str:
    """Argparse type: validate a lint-rule id/alias against the rule registry."""
    if not rule_exists(value):
        raise argparse.ArgumentTypeError(
            f"unknown rule {value!r}; registered rules: {', '.join(rule_names())}"
        )
    return value.strip().lower()


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for the ``repro-crowd`` entry point."""
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro-crowd",
        description=(
            "Cross-domain-aware worker selection: run annotation campaigns and "
            "regenerate the paper's tables and figures."
        ),
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    subparsers = parser.add_subparsers(dest="experiment", required=True, metavar="command")

    artefact_options = argparse.ArgumentParser(add_help=False)
    artefact_options.add_argument(
        "--datasets",
        nargs="+",
        type=_dataset_name,
        default=None,
        metavar="NAME",
        help=f"datasets to include (default depends on the experiment); choices: {', '.join(DATASET_NAMES)}",
    )
    artefact_options.add_argument(
        "--repetitions", type=int, default=3, help="repetitions per cell (default 3)"
    )
    artefact_options.add_argument("--seed", type=int, default=7, help="base random seed (default 7)")
    artefact_options.add_argument(
        "--at", type=float, default=0.5, help="initial target-domain accuracy a_T (default 0.5)"
    )
    artefact_options.add_argument(
        "--n-jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the comparison grid (default 1; results are identical at any value)",
    )
    for experiment in EXPERIMENTS:
        subparsers.add_parser(
            experiment,
            parents=[artefact_options],
            help=f"regenerate the paper's {experiment.replace('-', ' ')} artefact",
        )

    experiments_parser = subparsers.add_parser(
        "experiments",
        parents=[artefact_options],
        help="run the raw (dataset x method x repetition) comparison grid",
        description=(
            "Run the shared comparison protocol directly: every (dataset, "
            "method, repetition, k, q) work unit is executed — optionally "
            "sharded over --n-jobs processes — and the per-method mean "
            "accuracies are printed.  With --store, one JSONL record is "
            "appended per completed unit so an interrupted sweep can be "
            "finished later with --resume."
        ),
    )
    experiments_parser.add_argument(
        "--methods",
        nargs="+",
        type=_selector_name,
        default=None,
        metavar="NAME",
        help=f"methods to run (default: the Table V roster); choices: {', '.join(selector_names())}",
    )
    experiments_parser.add_argument(
        "--k", type=int, default=None, help="selection-size override (default: each dataset's k)"
    )
    experiments_parser.add_argument(
        "--q", type=int, default=None, help="per-batch task-count override (default: each dataset's Q)"
    )
    experiments_parser.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="JSONL result store: one atomic record per completed work unit",
    )
    experiments_parser.add_argument(
        "--resume",
        action="store_true",
        help="skip work units already recorded in --store (requires --store)",
    )
    experiments_parser.add_argument(
        "--progress", action="store_true", help="print one line per completed work unit to stderr"
    )
    experiments_parser.add_argument(
        "--scenario",
        type=_scenario_recipe,
        default=None,
        metavar="RECIPE",
        help="contaminate every dataset with a scenario recipe (e.g. 'spam10', 'mixed30')",
    )

    robustness_parser = subparsers.add_parser(
        "robustness",
        parents=[artefact_options],
        help="sweep pool-contamination rates and compare every method's selection quality",
        description=(
            "Contamination robustness sweep: for each dataset and each "
            "--rates value r, run the comparison grid on the scenario "
            "'<dataset>:<behavior><r*100>' (r=0 is the clean pool) and "
            "report selection accuracy and precision@k per method."
        ),
    )
    robustness_parser.add_argument(
        "--behavior",
        default="spammer",
        metavar="NAME",
        help=f"behavior injected into the pool (default 'spammer'); choices: {', '.join(behavior_names())}",
    )
    robustness_parser.add_argument(
        "--rates",
        nargs="+",
        type=float,
        default=None,
        metavar="RATE",
        help="contamination rates as fractions (default: 0 0.1 0.2 0.4)",
    )
    robustness_parser.add_argument(
        "--methods",
        nargs="+",
        type=_selector_name,
        default=None,
        metavar="NAME",
        help="methods to run (default: the Table V roster)",
    )
    robustness_parser.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="JSONL result store: one atomic record per completed work unit",
    )
    robustness_parser.add_argument(
        "--resume",
        action="store_true",
        help="skip work units already recorded in --store (requires --store)",
    )
    robustness_parser.add_argument(
        "--progress", action="store_true", help="print one line per completed work unit to stderr"
    )

    behaviors_parser = subparsers.add_parser(
        "behaviors",
        help="list the registered worker behaviors",
        description="List every registered worker behavior with its factory signature.",
    )
    behaviors_parser.add_argument("--json", action="store_true", help="print the list as JSON")

    scenarios_parser = subparsers.add_parser(
        "scenarios",
        help="list the named scenario recipes and the recipe grammar",
        description=(
            "List the named contamination recipes and explain the scenario "
            "grammar '<dataset>:<behavior><percent>[+<behavior><percent>...]'."
        ),
    )
    scenarios_parser.add_argument("--json", action="store_true", help="print the list as JSON")

    metrics_parser = subparsers.add_parser(
        "metrics",
        help="list the telemetry metric catalog",
        description=(
            "Print the static metric catalog: every counter, gauge and "
            "histogram an instrumented run can emit (enable collection "
            "with --metrics-out on serve/marketplace), with labels and "
            "the emitting module."
        ),
    )
    metrics_parser.add_argument("--json", action="store_true", help="print the catalog as JSON")

    lint_parser = subparsers.add_parser(
        "lint",
        help="run the determinism & contract analyzer over the repo's sources",
        description=(
            "Statically check the reproducibility discipline: unseeded RNG, "
            "wall-clock reads, unsorted JSON artifacts, unsynced journal "
            "writes, registry contracts, and more.  Intentional violations "
            "are waived inline with '# repro: allow[RULE] -- <reason>'."
        ),
    )
    lint_parser.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="files or directories to analyze (default: src benchmarks examples)",
    )
    lint_parser.add_argument(
        "--rules",
        nargs="+",
        type=_rule_name,
        default=None,
        metavar="RULE",
        help="run only these rules (ids or aliases, case-insensitive)",
    )
    lint_parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default text; json is the schema-versioned CI artifact)",
    )
    lint_parser.add_argument(
        "--strict",
        action="store_true",
        help="fail on warnings too, not only errors",
    )
    lint_parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also list findings waived by pragmas (text format only)",
    )
    lint_parser.add_argument(
        "--list-rules",
        action="store_true",
        help="describe every registered rule and exit",
    )

    run_parser = subparsers.add_parser(
        "run",
        help="run one annotation campaign (select k workers on one dataset)",
        description=(
            "Run a single worker-selection campaign: load a dataset, run the "
            "chosen selector under the paper's budget protocol, and report the "
            "selected workers with their evaluated working-task accuracy."
        ),
    )
    run_parser.add_argument("--dataset", type=_dataset_name, default="S-1", help="dataset name (default S-1)")
    run_parser.add_argument(
        "--selector",
        type=_selector_name,
        default="ours",
        help=f"registered selector (default 'ours'); choices: {', '.join(selector_names())}",
    )
    run_parser.add_argument("--k", type=int, default=None, help="workers to select (default: the dataset's k)")
    run_parser.add_argument("--seed", type=int, default=0, help="campaign seed (default 0)")
    run_parser.add_argument(
        "--scenario",
        type=_scenario_recipe,
        default=None,
        metavar="RECIPE",
        help="contaminate the dataset's pool (e.g. 'spam10', 'adversarial20+drift10', 'mixed30')",
    )
    run_parser.add_argument(
        "--answer-engine",
        choices=ANSWER_ENGINES,
        default="vectorized",
        help="answer-simulation engine (default 'vectorized'; engines are bit-identical)",
    )
    run_parser.add_argument(
        "--tasks-per-batch", type=int, default=None, help="override the dataset's per-batch task count Q"
    )
    run_parser.add_argument(
        "--at",
        type=float,
        default=None,
        help="initial target-domain accuracy a_T (rejected if the selector does not model it)",
    )
    run_parser.add_argument("--json", action="store_true", help="print the full campaign report as JSON")
    run_parser.add_argument("--stream", action="store_true", help="print one line per elimination round")

    serve_parser = subparsers.add_parser(
        "serve",
        help="select k workers, then serve working tasks through the selected pool",
        description=(
            "Run one selection campaign and hand the selected workers to the "
            "serving layer: route a stream of working tasks with the chosen "
            "policy, aggregate the answers online and report labels, drift "
            "events and the re-selection signal.  Exits with status "
            f"{RESELECTION_EXIT_CODE} (instead of 0) when the drift detector "
            "recommends re-selecting the pool."
        ),
    )
    serve_parser.add_argument("--dataset", type=_dataset_name, default="S-1", help="dataset name (default S-1)")
    serve_parser.add_argument(
        "--selector",
        type=_selector_name,
        default="ours",
        help=f"registered selector (default 'ours'); choices: {', '.join(selector_names())}",
    )
    serve_parser.add_argument("--k", type=int, default=None, help="workers to select (default: the dataset's k)")
    serve_parser.add_argument("--seed", type=int, default=0, help="campaign + serving seed (default 0)")
    serve_parser.add_argument(
        "--scenario",
        type=_scenario_recipe,
        default=None,
        metavar="RECIPE",
        help="contaminate the dataset's pool (e.g. 'drift20' exercises the drift detector)",
    )
    serve_parser.add_argument(
        "--router",
        type=_router_name,
        default="domain_affinity",
        help=f"routing policy (default 'domain_affinity'); choices: {', '.join(router_names())}",
    )
    serve_parser.add_argument(
        "--routing-engine",
        choices=known_routing_engines(),
        default="indexed",
        help=(
            "ranking engine for routers that support one (forwarded only to the "
            "router that understands it): domain_affinity ships 'indexed' / "
            "'reference', least_loaded ships 'heap' / 'bucket'; every engine "
            "pair produces byte-identical traces (default indexed)"
        ),
    )
    serve_parser.add_argument(
        "--votes", type=int, default=3, help="distinct workers asked per working task (default 3)"
    )
    serve_parser.add_argument(
        "--tasks", type=int, default=None, help="working tasks to serve (default: the dataset's working set)"
    )
    serve_parser.add_argument(
        "--budget", type=int, default=None, help="serving budget in vote units (default: unlimited)"
    )
    serve_parser.add_argument(
        "--aggregator",
        choices=("dawid_skene", "majority"),
        default="dawid_skene",
        help="online label aggregator (default dawid_skene)",
    )
    serve_parser.add_argument(
        "--reselect-fraction",
        type=float,
        default=None,
        metavar="FRACTION",
        help="fraction of the pool that must drift on one domain before re-selection is recommended (default 0.5)",
    )
    serve_parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help=(
            "enable telemetry and write the byte-stable metrics snapshot "
            "(sorted JSON) to PATH after serving; the trace stays identical"
        ),
    )
    serve_parser.add_argument("--json", action="store_true", help="print the full serving report as JSON")

    marketplace_parser = subparsers.add_parser(
        "marketplace",
        help="run N concurrent campaigns against one shared, churning worker marketplace",
        description=(
            "Multi-campaign marketplace orchestration: run one campaign per "
            "--datasets entry concurrently against a shared worker marketplace "
            "with open-world churn (seeded arrivals with prestudy "
            "qualification, departures with in-flight vote invalidation) under "
            "a deterministic batched-tick event loop.  With --journal, every "
            "tick is appended to a crash-recoverable JSONL journal whose bytes "
            "are identical at any --tick-batch; --resume replays a prefix and "
            "continues."
        ),
    )
    marketplace_parser.add_argument(
        "--datasets",
        nargs="+",
        type=_dataset_name,
        default=["S-1", "S-2"],
        metavar="NAME",
        help="one campaign per dataset (default: S-1 S-2)",
    )
    marketplace_parser.add_argument(
        "--selector",
        type=_selector_name,
        default="us",
        help=f"selector used by every campaign (default 'us'); choices: {', '.join(selector_names())}",
    )
    marketplace_parser.add_argument(
        "--k", type=int, default=None, help="workers to select per campaign (default: each dataset's k)"
    )
    marketplace_parser.add_argument("--seed", type=int, default=0, help="marketplace seed (default 0)")
    marketplace_parser.add_argument("--ticks", type=int, default=50, help="ticks to run (default 50)")
    marketplace_parser.add_argument(
        "--tick-batch",
        type=int,
        default=8,
        metavar="N",
        help="ticks buffered per journal fsync (default 8; bytes are identical at any value)",
    )
    marketplace_parser.add_argument(
        "--tasks-per-tick", type=int, default=2, help="tasks each serving campaign submits per tick (default 2)"
    )
    marketplace_parser.add_argument(
        "--votes", type=int, default=3, help="distinct workers asked per working task (default 3)"
    )
    marketplace_parser.add_argument(
        "--router",
        type=_router_name,
        default="least_loaded",
        help=f"routing policy shared by every campaign (default 'least_loaded'); choices: {', '.join(router_names())}",
    )
    marketplace_parser.add_argument(
        "--routing-engine",
        choices=known_routing_engines(),
        default="indexed",
        help=(
            "ranking engine shared by every campaign's router, forwarded only "
            "where understood (default indexed)"
        ),
    )
    marketplace_parser.add_argument(
        "--tick-engine",
        choices=("reference", "sharded"),
        default="reference",
        help=(
            "tick execution engine: 'sharded' partitions campaigns across "
            "worker processes and merges at a serial commit phase; journal "
            "bytes and final state are identical to 'reference' (the default)"
        ),
    )
    marketplace_parser.add_argument(
        "--n-shards",
        type=int,
        default=1,
        metavar="N",
        help="campaign shards for --tick-engine sharded (default 1)",
    )
    marketplace_parser.add_argument(
        "--arrival-rate", type=float, default=0.5, help="expected worker arrivals per tick (default 0.5)"
    )
    marketplace_parser.add_argument(
        "--departure-rate",
        type=float,
        default=0.02,
        help="per-present-worker departure probability per tick (default 0.02)",
    )
    marketplace_parser.add_argument(
        "--total-tasks",
        type=int,
        default=None,
        help="tasks each campaign must label before DONE (default: the dataset's working set)",
    )
    marketplace_parser.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="append-only JSONL event journal (crash-recoverable; fsynced per tick batch)",
    )
    marketplace_parser.add_argument(
        "--resume",
        action="store_true",
        help="replay an existing --journal prefix and continue the run (requires --journal)",
    )
    marketplace_parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help=(
            "enable telemetry and write the byte-stable metrics snapshot "
            "(sorted JSON) to PATH after the run; journal bytes stay identical"
        ),
    )
    marketplace_parser.add_argument(
        "--json", action="store_true", help="print the full marketplace report as JSON"
    )
    return parser


def _config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    return ExperimentConfig(
        n_repetitions=args.repetitions,
        base_seed=args.seed,
        target_initial_accuracy=args.at,
        n_jobs=args.n_jobs,
    )


def _run_experiments(args: argparse.Namespace) -> int:
    """The ``repro-crowd experiments`` subcommand: the raw comparison grid."""
    from repro.experiments import comparison_rows, format_table, run_method_comparison
    from repro.experiments.runner import WorkUnit

    if args.resume and args.store is None:
        print("repro-crowd experiments: error: --resume requires --store", file=sys.stderr)
        return 2

    datasets = args.datasets if args.datasets is not None else list(DATASET_NAMES)
    if args.scenario:
        try:
            datasets = [_apply_scenario(dataset, args.scenario) for dataset in datasets]
        except ValueError as exc:
            print(f"repro-crowd experiments: error: {exc}", file=sys.stderr)
            return 2
    methods = args.methods

    def _progress(done: int, total: int, unit: Optional[WorkUnit]) -> None:
        if unit is None:
            print(f"resumed: {done}/{total} work units already in {args.store}", file=sys.stderr)
        else:
            print(
                f"[{done}/{total}] {unit.dataset} {unit.method} "
                f"rep={unit.repetition} k={unit.k} q={unit.q}",
                file=sys.stderr,
            )

    try:
        results = run_method_comparison(
            datasets,
            config=_config_from_args(args),
            methods=methods,
            k_override=args.k,
            q_override=args.q,
            store_path=args.store,
            resume=args.resume,
            progress=_progress if args.progress else None,
        )
    except ValueError as exc:
        # Store/config mismatches and bad overrides are user errors.
        print(f"repro-crowd experiments: error: {exc}", file=sys.stderr)
        return 2
    print(format_table(comparison_rows(results, methods=methods)))
    return 0


def _run_campaign(args: argparse.Namespace) -> int:
    selector_config = {}
    if args.at is not None:
        selector_config["target_initial_accuracy"] = args.at
    try:
        # Campaign construction validates the dataset, the selector name and
        # its configuration, and the k/Q overrides eagerly; failures here are
        # user errors, not crashes.  Errors past this point are real bugs and
        # keep their tracebacks.
        campaign = Campaign(
            dataset=_apply_scenario(args.dataset, args.scenario),
            selector=args.selector,
            k=args.k,
            seed=args.seed,
            tasks_per_batch=args.tasks_per_batch,
            answer_engine=args.answer_engine,
            selector_config=selector_config,
        )
    except (KeyError, TypeError, ValueError) as exc:
        message = exc.args[0] if exc.args and isinstance(exc.args[0], str) else exc
        print(f"repro-crowd run: error: {message}", file=sys.stderr)
        return 2
    return _report_campaign(campaign, args)


def _report_campaign(campaign: Campaign, args: argparse.Namespace) -> int:
    if args.stream:
        # Under --json, stdout must stay a single valid JSON document, so the
        # per-round progress goes to stderr.
        stream_sink = sys.stderr if args.json else sys.stdout
        print(
            f"campaign {campaign.dataset_name} / {campaign.selector_name}: "
            f"k={campaign.k}, {campaign.n_rounds} rounds, seed={campaign.seed}",
            file=stream_sink,
        )
        for event in campaign.steps():
            print(
                f"  round {event.round_index}/{event.n_rounds}: "
                f"{len(event.worker_ids)} -> {len(event.survivors)} workers, "
                f"{event.tasks_per_worker} tasks/worker, budget {event.spent_budget} spent",
                file=stream_sink,
            )
    report = campaign.run()
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        return 0
    print(f"selected workers ({len(report.selected_worker_ids)} of k={report.k}):")
    for worker_id in report.selected_worker_ids:
        accuracy = report.per_worker_accuracy.get(worker_id, float("nan"))
        print(f"  {worker_id}: final accuracy {accuracy:.3f}")
    print(f"mean working-task accuracy: {report.mean_accuracy:.3f}")
    print(f"ground-truth top-{report.k} accuracy: {report.ground_truth_accuracy:.3f}")
    print(f"overlap with true top-k: {report.precision_at_k:.0%}")
    print(f"budget: {report.spent_budget}/{report.total_budget} over {report.n_rounds} rounds")
    return 0


def _write_metrics_snapshot(path: str, telemetry) -> None:
    """Write a telemetry bundle's byte-stable snapshot JSON to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(telemetry.snapshot_json())
        handle.write("\n")


def _serve_campaign(args: argparse.Namespace) -> int:
    """The ``repro-crowd serve`` subcommand: selection + serving handoff."""
    overrides = {}
    if args.reselect_fraction is not None:
        overrides["reselect_fraction"] = args.reselect_fraction
    telemetry = None
    if args.metrics_out is not None:
        from repro.obs import create_telemetry

        telemetry = create_telemetry()
    try:
        campaign = Campaign(
            dataset=_apply_scenario(args.dataset, args.scenario),
            selector=args.selector,
            k=args.k,
            seed=args.seed,
        )
        report = campaign.serve(
            n_tasks=args.tasks,
            router=args.router,
            routing_engine=args.routing_engine,
            votes_per_task=args.votes,
            max_assignments=args.budget,
            aggregator=args.aggregator,
            seed=args.seed,
            telemetry=telemetry,
            **overrides,
        )
    except (KeyError, TypeError, ValueError) as exc:
        message = exc.args[0] if exc.args and isinstance(exc.args[0], str) else exc
        print(f"repro-crowd serve: error: {message}", file=sys.stderr)
        return 2
    if telemetry is not None:
        _write_metrics_snapshot(args.metrics_out, telemetry)
    exit_code = RESELECTION_EXIT_CODE if report.reselection_recommended else 0
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        return exit_code
    print(
        f"served {report.n_tasks_routed} working tasks via {report.router} "
        f"({report.n_answers} answers, {report.aggregator} aggregation)"
    )
    if report.label_accuracy is not None:
        print(f"aggregated label accuracy: {report.label_accuracy:.3f}")
    if report.max_assignments is not None:
        exhausted = " (exhausted)" if report.budget_exhausted else ""
        print(f"serving budget: {report.spent_assignments}/{report.max_assignments}{exhausted}")
    print("worker load (assigned/completed):")
    for worker_id, load in report.worker_load.items():
        print(f"  {worker_id}: {load['assigned_total']}/{load['completed_total']}")
    if report.drift_events:
        print(f"drift events ({len(report.drift_events)}):")
        for event in report.drift_events:
            print(
                f"  {event.worker_id} on {event.domain}: ewma {event.ewma:.3f} "
                f"(baseline {event.baseline:.3f}) after {event.n_observations} answers"
            )
    else:
        print("drift events: none")
    if report.reselection_recommended:
        domains = ", ".join(report.reselection_domains)
        print(f"re-selection recommended: yes ({domains}) — exiting {RESELECTION_EXIT_CODE}")
    else:
        print("re-selection recommended: no")
    return exit_code


def _run_marketplace(args: argparse.Namespace) -> int:
    """The ``repro-crowd marketplace`` subcommand: the multi-campaign orchestrator."""
    from repro.marketplace import (
        CampaignSpec,
        ChurnConfig,
        JournalError,
        MarketplaceConfig,
        MarketplaceOrchestrator,
    )
    from repro.stats.rng import derive_seed

    if args.resume and args.journal is None:
        print("repro-crowd marketplace: error: --resume requires --journal", file=sys.stderr)
        return 2
    telemetry = None
    if args.metrics_out is not None:
        from repro.obs import create_telemetry

        telemetry = create_telemetry()
    try:
        # Campaign names must be journal-safe (no scenario separator) and
        # unique even when the same dataset appears twice, so they are
        # index-prefixed sanitised dataset names: "c0-s-1", "c1-s-1:drift20"
        # becomes "c1-s-1-drift20".
        specs = [
            CampaignSpec(
                name=f"c{index}-{dataset.lower().replace(SCENARIO_SEPARATOR, '-')}",
                dataset=dataset,
                selector=args.selector,
                k=args.k,
                seed=derive_seed(args.seed, "marketplace", "campaign", index, dataset),
            )
            for index, dataset in enumerate(args.datasets)
        ]
        orchestrator = MarketplaceOrchestrator(
            specs,
            config=MarketplaceConfig(
                router=args.router,
                routing_engine=args.routing_engine,
                votes_per_task=args.votes,
                tasks_per_tick=args.tasks_per_tick,
                total_tasks=args.total_tasks,
                tick_engine=args.tick_engine,
                n_shards=args.n_shards,
            ),
            churn=ChurnConfig(arrival_rate=args.arrival_rate, departure_rate=args.departure_rate),
            journal_path=args.journal,
            seed=args.seed,
            telemetry=telemetry,
        )
        report = orchestrator.run(args.ticks, tick_batch=args.tick_batch, resume=args.resume)
    except (JournalError, KeyError, TypeError, ValueError) as exc:
        message = exc.args[0] if exc.args and isinstance(exc.args[0], str) else exc
        print(f"repro-crowd marketplace: error: {message}", file=sys.stderr)
        return 2
    if telemetry is not None:
        _write_metrics_snapshot(args.metrics_out, telemetry)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        return 0
    market = report.marketplace
    print(
        f"ran {len(report.campaigns)} campaigns for {report.n_ticks} ticks "
        f"in {report.elapsed_s:.2f}s"
    )
    print(
        f"marketplace churn: {market['arrivals_admitted']} admitted, "
        f"{market['arrivals_rejected']} rejected, {market['departures']} departed "
        f"({market['workers_present']}/{market['workers_total']} workers present)"
    )
    for campaign in report.campaigns:
        accuracy = campaign["label_accuracy"]
        accuracy_text = "n/a" if accuracy is None else f"{accuracy:.3f}"
        print(
            f"  {campaign['name']} [{campaign['phase']}]: "
            f"{campaign['tasks_routed']} tasks routed, {campaign['n_labels']} labels "
            f"(accuracy {accuracy_text}), {campaign['reselections']} re-selections, "
            f"{campaign['invalidated_votes']} votes invalidated"
        )
    if args.journal is not None:
        print(f"journal: {args.journal}")
    return 0


def _run_robustness(args: argparse.Namespace) -> int:
    """The ``repro-crowd robustness`` subcommand: the contamination sweep."""
    from repro.experiments import format_table
    from repro.experiments.robustness import DEFAULT_CONTAMINATION_RATES, run_robustness
    from repro.experiments.runner import WorkUnit

    if args.resume and args.store is None:
        print("repro-crowd robustness: error: --resume requires --store", file=sys.stderr)
        return 2
    rates = args.rates if args.rates is not None else list(DEFAULT_CONTAMINATION_RATES)

    def _progress(done: int, total: int, unit: Optional[WorkUnit]) -> None:
        if unit is None:
            print(f"resumed: {done}/{total} work units already in {args.store}", file=sys.stderr)
        else:
            print(f"[{done}/{total}] {unit.dataset} {unit.method} rep={unit.repetition}", file=sys.stderr)

    try:
        rows = run_robustness(
            args.datasets,
            behavior=args.behavior,
            contamination_rates=rates,
            config=_config_from_args(args),
            methods=args.methods,
            store_path=args.store,
            resume=args.resume,
            progress=_progress if args.progress else None,
        )
    except (KeyError, ValueError) as exc:
        message = exc.args[0] if exc.args and isinstance(exc.args[0], str) else exc
        print(f"repro-crowd robustness: error: {message}", file=sys.stderr)
        return 2
    print(format_table(rows))
    return 0


def _list_behaviors(args: argparse.Namespace) -> int:
    """The ``repro-crowd behaviors`` subcommand: registry listing."""
    names = behavior_names()
    if args.json:
        print(json.dumps({name: describe_behavior(name) for name in names}, indent=2, sort_keys=True))
        return 0
    print("registered worker behaviors:")
    for name in names:
        print(f"  {describe_behavior(name)}")
    return 0


def _list_scenarios(args: argparse.Namespace) -> int:
    """The ``repro-crowd scenarios`` subcommand: recipes + grammar."""
    if args.json:
        print(
            json.dumps(
                {name: dict(mix) for name, mix in sorted(SCENARIO_RECIPES.items())},
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    print("named scenario recipes (usable as '<dataset>:<recipe>' or --scenario <recipe>):")
    for name, mix in sorted(SCENARIO_RECIPES.items()):
        composition = ", ".join(f"{int(f * 100)}% {b}" for b, f in sorted(mix.items())) or "no contamination"
        print(f"  {name}: {composition}")
    print()
    print("recipe grammar: <behavior><percent> joined with '+', e.g. 'spam10' or 'adversarial20+drift10'")
    print(f"behaviors: {', '.join(behavior_names())} (aliases: spam, adv, drift, sleep)")
    print("examples: repro-crowd run --dataset S-1 --scenario spam10")
    print("          repro-crowd robustness --datasets S-1 --behavior adversarial --rates 0 0.2 0.4")
    return 0


def _list_metrics(args: argparse.Namespace) -> int:
    """The ``repro-crowd metrics`` subcommand: the telemetry catalog."""
    from repro.obs.catalog import catalog_json, catalog_rows

    if args.json:
        print(catalog_json())
        return 0
    rows = catalog_rows()
    print(f"metric catalog ({len(rows)} metrics; collect with --metrics-out on serve/marketplace):")
    for row in rows:
        labels = f" [{', '.join(row['labels'])}]" if row["labels"] else ""
        volatile = " (volatile)" if row["volatile"] else ""
        print(f"  {row['name']} ({row['kind']}{volatile}){labels}: {row['help']}")
        print(f"    emitted by {row['module']}")
    return 0


def _run_lint(args: argparse.Namespace) -> int:
    """The ``repro-crowd lint`` subcommand: the determinism & contract gate."""
    from repro.analysis import analyze, describe_rule, format_json, format_text, resolve_rule_name

    if args.list_rules:
        for rule_id in rule_names():
            print(describe_rule(rule_id))
        return 0
    try:
        report = analyze(
            args.paths or None,
            rules=[resolve_rule_name(name) for name in args.rules] if args.rules else None,
        )
    except FileNotFoundError as exc:
        print(f"repro-crowd lint: error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(format_json(report))
    else:
        print(format_text(report, show_suppressed=args.show_suppressed))
    return report.exit_code(strict=args.strict)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)

    if args.experiment == "run":
        return _run_campaign(args)
    if args.experiment == "serve":
        return _serve_campaign(args)
    if args.experiment == "marketplace":
        return _run_marketplace(args)
    if args.experiment == "experiments":
        return _run_experiments(args)
    if args.experiment == "robustness":
        return _run_robustness(args)
    if args.experiment == "behaviors":
        return _list_behaviors(args)
    if args.experiment == "scenarios":
        return _list_scenarios(args)
    if args.experiment == "metrics":
        return _list_metrics(args)
    if args.experiment == "lint":
        return _run_lint(args)

    # Artefact regeneration commands share ExperimentConfig-shaped options.
    from repro.experiments import (
        format_table,
        results_to_markdown,
        run_correlation_recovery,
        run_figure5,
        run_figure6,
        run_figure7,
        run_runtime,
        run_table2,
        run_table4,
        run_table5,
        run_training_gain,
    )

    try:
        # ExperimentConfig validates n_repetitions / n_jobs eagerly; a bad
        # value is a user error, not a crash.
        config = _config_from_args(args)
    except ValueError as exc:
        print(f"repro-crowd {args.experiment}: error: {exc}", file=sys.stderr)
        return 2
    datasets: Optional[List[str]] = args.datasets

    if args.experiment == "table2":
        print(format_table(run_table2(datasets)))
    elif args.experiment == "table4":
        output = run_table4(datasets)
        print("Per-domain moments (mean, std):")
        print(format_table(output["moments"]))
        print()
        print("Consistency against RW-1 (bucketed Pearson):")
        print(format_table(output["consistency"]))
    elif args.experiment == "table5":
        results = run_table5(datasets, config=config)
        print(results_to_markdown(results))
    elif args.experiment == "figure5":
        print(format_table(run_figure5(datasets, config=config)))
    elif args.experiment == "figure6":
        print(format_table(run_figure6(datasets, config=config)))
    elif args.experiment == "figure7":
        print(format_table(run_figure7(datasets, config=config)))
    elif args.experiment == "runtime":
        print(format_table(run_runtime(datasets, config=config)))
    elif args.experiment == "correlation":
        print(format_table(run_correlation_recovery(datasets, config=config)))
    elif args.experiment == "training-gain":
        print(format_table(run_training_gain(datasets, config=config)))
    else:  # pragma: no cover - argparse restricts the choices
        print(f"unknown command {args.experiment!r}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
