"""Command-line interface: regenerate any table or figure of the paper.

Examples
--------
Run the main results table on the two real-world datasets with 3 repetitions::

    repro-crowd table5 --datasets RW-1 RW-2 --repetitions 3

Print the dataset statistics (Table II)::

    repro-crowd table2

Sweep the initial target accuracy (Figure 5) on S-1::

    repro-crowd figure5 --datasets S-1 --repetitions 2
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.config import ExperimentConfig
from repro.datasets.registry import DATASET_NAMES
from repro.experiments import (
    format_table,
    results_to_markdown,
    run_correlation_recovery,
    run_figure5,
    run_figure6,
    run_figure7,
    run_runtime,
    run_table2,
    run_table4,
    run_table5,
    run_training_gain,
)

EXPERIMENTS = (
    "table2",
    "table4",
    "table5",
    "figure5",
    "figure6",
    "figure7",
    "runtime",
    "correlation",
    "training-gain",
)


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for the ``repro-crowd`` entry point."""
    parser = argparse.ArgumentParser(
        prog="repro-crowd",
        description="Regenerate the tables and figures of the cross-domain worker-selection paper.",
    )
    parser.add_argument("experiment", choices=EXPERIMENTS, help="which artefact to regenerate")
    parser.add_argument(
        "--datasets",
        nargs="+",
        default=None,
        metavar="NAME",
        help=f"datasets to include (default depends on the experiment); choices: {', '.join(DATASET_NAMES)}",
    )
    parser.add_argument("--repetitions", type=int, default=3, help="repetitions per cell (default 3)")
    parser.add_argument("--seed", type=int, default=7, help="base random seed (default 7)")
    parser.add_argument(
        "--at", type=float, default=0.5, help="initial target-domain accuracy a_T (default 0.5)"
    )
    return parser


def _config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    return ExperimentConfig(
        n_repetitions=args.repetitions,
        base_seed=args.seed,
        target_initial_accuracy=args.at,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    config = _config_from_args(args)
    datasets: Optional[List[str]] = args.datasets

    if args.experiment == "table2":
        print(format_table(run_table2(datasets)))
    elif args.experiment == "table4":
        output = run_table4(datasets)
        print("Per-domain moments (mean, std):")
        print(format_table(output["moments"]))
        print()
        print("Consistency against RW-1 (bucketed Pearson):")
        print(format_table(output["consistency"]))
    elif args.experiment == "table5":
        results = run_table5(datasets, config=config)
        print(results_to_markdown(results))
    elif args.experiment == "figure5":
        print(format_table(run_figure5(datasets, config=config)))
    elif args.experiment == "figure6":
        print(format_table(run_figure6(datasets, config=config)))
    elif args.experiment == "figure7":
        print(format_table(run_figure7(datasets, config=config)))
    elif args.experiment == "runtime":
        print(format_table(run_runtime(datasets, config=config)))
    elif args.experiment == "correlation":
        print(format_table(run_correlation_recovery(datasets, config=config)))
    elif args.experiment == "training-gain":
        print(format_table(run_training_gain(datasets, config=config)))
    else:  # pragma: no cover - argparse restricts the choices
        print(f"unknown experiment {args.experiment!r}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
