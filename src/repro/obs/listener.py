"""Pool-event metrics: a listener for the ``POOL_EVENT_HOOKS`` bus.

:class:`PoolMetricsListener` turns membership, qualification and
(optionally) load events into counters on a shared registry.  The bus
only carries ``(worker_id, domain)`` on qualification changes, so the
listener keeps a per-worker tier cache — primed at attach time and on
arrivals, dropped on departures — to label transitions with both the
``from_tier`` and the ``to_tier``.

Load events fire on every single vote (begin/complete/release), so they
are opt-in: when ``load_events`` is false the listener simply does not
define ``on_load_changed`` and the pool's pre-bound dispatch skips it
entirely (see :func:`repro.serving.pool.pool_event_noop`).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.serving.qualification import QualificationTier

#: ``from_tier`` label for a transition on a worker/domain the listener
#: had no prior tier for (e.g. a domain gained after attach).
UNSEEN_TIER = "unseen"


def _tier_label(tier: QualificationTier) -> str:
    return tier.name.lower()


class PoolMetricsListener:
    """Counts pool change events into a :class:`MetricsRegistry`."""

    def __init__(self, registry, *, load_events: bool = False) -> None:
        self._registry = registry
        self._pool = None
        self._tiers: Dict[str, Dict[str, str]] = {}
        self._added = registry.counter(
            "pool.workers.added", "workers added to the serving pool"
        )
        self._removed = registry.counter(
            "pool.workers.removed", "workers removed from the serving pool"
        )
        self._transitions = registry.counter(
            "pool.qualification.transitions",
            "qualification tier transitions seen on the pool event bus",
            ("domain", "from_tier", "to_tier"),
        )
        if load_events:
            self._load_events = registry.counter(
                "pool.load.events",
                "load-change events (opt-in: TelemetryConfig.pool_load_events)",
            )
            # Bound as an instance attribute only when opted in, so the
            # pool's hook pre-binding sees no on_load_changed otherwise.
            self.on_load_changed = self._on_load_changed

    # ------------------------------------------------------------------ #
    # Wiring
    # ------------------------------------------------------------------ #
    def attach(self, pool) -> "PoolMetricsListener":
        """Subscribe to ``pool`` and prime the tier cache from its state."""
        self._pool = pool
        for worker in pool.workers:
            self._prime(worker)
        pool.add_listener(self)
        return self

    def _prime(self, worker) -> None:
        self._tiers[worker.worker_id] = {
            domain: _tier_label(qualification.tier)
            for domain, qualification in worker.qualifications.items()
        }

    # ------------------------------------------------------------------ #
    # POOL_EVENT_HOOKS
    # ------------------------------------------------------------------ #
    def on_worker_added(self, worker_id: str) -> None:
        self._added.inc()
        if self._pool is not None:
            worker = self._pool.get(worker_id)
            if worker is not None:
                self._prime(worker)

    def on_worker_removed(self, worker_id: str) -> None:
        self._removed.inc()
        self._tiers.pop(worker_id, None)

    def on_qualification_changed(self, worker_id: str, domain: str) -> None:
        to_tier = UNSEEN_TIER
        if self._pool is not None:
            worker = self._pool.get(worker_id)
            if worker is not None:
                to_tier = _tier_label(worker.tier_on(domain))
        cache = self._tiers.setdefault(worker_id, {})
        from_tier = cache.get(domain, UNSEEN_TIER)
        cache[domain] = to_tier
        self._transitions.labels(domain, from_tier, to_tier).inc()

    def _on_load_changed(self, worker_id: str) -> None:
        self._load_events.inc()


__all__ = ["PoolMetricsListener", "UNSEEN_TIER"]
