"""The static metric catalog: every metric the tree can emit, declared once.

This is the single source of truth behind ``repro-crowd metrics`` and the
README's metric table.  A test asserts that every name an instrumented
run actually registers appears here, so the catalog cannot silently
drift from the code.

``volatile`` marks metrics whose values depend on wall clock or on
execution shape (batch sizes, flush cadence) — they are excluded from
the default byte-stable snapshot.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Dict, List, Tuple

from repro.obs.naming import validate_label_names, validate_metric_name

#: Version stamp on the catalog listing payload.
CATALOG_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class MetricSpec:
    """One catalog row: identity, shape, and the module that emits it."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    help: str
    labels: Tuple[str, ...]
    module: str  # dotted module path of the emitting code
    volatile: bool = False

    def __post_init__(self) -> None:
        validate_metric_name(self.name)
        validate_label_names(self.labels)
        if self.kind not in ("counter", "gauge", "histogram"):
            raise ValueError(f"unknown metric kind {self.kind!r} for {self.name!r}")


METRIC_CATALOG: Tuple[MetricSpec, ...] = (
    # --- serving: routing (repro.serving.routing) ---------------------- #
    MetricSpec(
        name="serving.route.outcomes",
        kind="counter",
        help="route() calls by outcome: full quorum, short (fewer than requested), exhausted (no eligible worker)",
        labels=("router", "outcome"),
        module="repro.serving.routing",
    ),
    MetricSpec(
        name="serving.route.latency_seconds",
        kind="histogram",
        help="sampled wall-clock latency of route() calls",
        labels=("router",),
        module="repro.serving.routing",
        volatile=True,
    ),
    # --- serving: service (repro.serving.service) ---------------------- #
    MetricSpec(
        name="serving.tasks.submitted",
        kind="counter",
        help="tasks accepted by AnnotationService.submit()",
        labels=(),
        module="repro.serving.service",
    ),
    MetricSpec(
        name="serving.votes.requested",
        kind="counter",
        help="votes requested across submitted tasks (before budget clamping)",
        labels=(),
        module="repro.serving.service",
    ),
    MetricSpec(
        name="serving.votes.assigned",
        kind="counter",
        help="vote assignments actually routed to workers",
        labels=(),
        module="repro.serving.service",
    ),
    MetricSpec(
        name="serving.answers.recorded",
        kind="counter",
        help="worker answers ingested by record_answer()",
        labels=(),
        module="repro.serving.service",
    ),
    MetricSpec(
        name="serving.answers.agreement",
        kind="counter",
        help="per-answer agreement with the finalized task label",
        labels=("agreed",),
        module="repro.serving.service",
    ),
    MetricSpec(
        name="serving.tasks.finalized",
        kind="counter",
        help="tasks finalized with a label",
        labels=(),
        module="repro.serving.service",
    ),
    MetricSpec(
        name="serving.votes.invalidated",
        kind="counter",
        help="in-flight votes invalidated by worker departure/demotion",
        labels=(),
        module="repro.serving.service",
    ),
    MetricSpec(
        name="serving.votes.reassigned",
        kind="counter",
        help="invalidated votes successfully re-routed to replacement workers",
        labels=(),
        module="repro.serving.service",
    ),
    MetricSpec(
        name="serving.drift.demotions",
        kind="counter",
        help="drift-triggered qualification demotions applied by the service",
        labels=("domain",),
        module="repro.serving.service",
    ),
    MetricSpec(
        name="serving.serve.elapsed_seconds",
        kind="gauge",
        help="wall-clock duration of the last serve() run",
        labels=(),
        module="repro.serving.service",
        volatile=True,
    ),
    # --- serving: quality (repro.serving.quality) ---------------------- #
    MetricSpec(
        name="quality.observations",
        kind="counter",
        help="answer observations folded into EWMA quality state",
        labels=(),
        module="repro.serving.quality",
    ),
    MetricSpec(
        name="quality.drift.detections",
        kind="counter",
        help="drift events raised by the EWMA tracker",
        labels=("domain",),
        module="repro.serving.quality",
    ),
    # --- serving: aggregation (repro.serving.aggregation) -------------- #
    MetricSpec(
        name="aggregation.votes.ingested",
        kind="counter",
        help="votes ingested by streaming aggregators",
        labels=("aggregator",),
        module="repro.serving.aggregation",
    ),
    MetricSpec(
        name="aggregation.converge.runs",
        kind="counter",
        help="aggregator convergence runs by outcome",
        labels=("aggregator", "converged"),
        module="repro.serving.aggregation",
    ),
    MetricSpec(
        name="aggregation.converge.iterations",
        kind="histogram",
        help="EM iterations per convergence run",
        labels=("aggregator",),
        module="repro.serving.aggregation",
    ),
    # --- pool events (repro.obs.listener via POOL_EVENT_HOOKS) --------- #
    MetricSpec(
        name="pool.workers.added",
        kind="counter",
        help="workers added to the serving pool",
        labels=(),
        module="repro.obs.listener",
    ),
    MetricSpec(
        name="pool.workers.removed",
        kind="counter",
        help="workers removed from the serving pool",
        labels=(),
        module="repro.obs.listener",
    ),
    MetricSpec(
        name="pool.qualification.transitions",
        kind="counter",
        help="qualification tier transitions seen on the pool event bus",
        labels=("domain", "from_tier", "to_tier"),
        module="repro.obs.listener",
    ),
    MetricSpec(
        name="pool.load.events",
        kind="counter",
        help="load-change events (opt-in: TelemetryConfig.pool_load_events)",
        labels=(),
        module="repro.obs.listener",
    ),
    # --- marketplace (repro.marketplace.orchestrator) ------------------ #
    MetricSpec(
        name="marketplace.ticks",
        kind="counter",
        help="marketplace ticks executed",
        labels=(),
        module="repro.marketplace.orchestrator",
    ),
    MetricSpec(
        name="marketplace.arrivals.admitted",
        kind="counter",
        help="churn arrivals admitted into the marketplace",
        labels=(),
        module="repro.marketplace.orchestrator",
    ),
    MetricSpec(
        name="marketplace.arrivals.rejected",
        kind="counter",
        help="churn arrivals turned away by the prestudy qualification",
        labels=(),
        module="repro.marketplace.orchestrator",
    ),
    MetricSpec(
        name="marketplace.departures",
        kind="counter",
        help="workers departed from the marketplace",
        labels=(),
        module="repro.marketplace.orchestrator",
    ),
    MetricSpec(
        name="marketplace.invalidations",
        kind="counter",
        help="in-flight vote invalidations caused by departures",
        labels=(),
        module="repro.marketplace.orchestrator",
    ),
    MetricSpec(
        name="marketplace.campaign.events",
        kind="counter",
        help="per-campaign lifecycle events journaled each tick",
        labels=("type",),
        module="repro.marketplace.orchestrator",
    ),
    MetricSpec(
        name="marketplace.journal.events",
        kind="counter",
        help="events appended to the tick journal",
        labels=(),
        module="repro.marketplace.orchestrator",
    ),
    MetricSpec(
        name="marketplace.journal.flushes",
        kind="counter",
        help="journal flush batches (depends on tick_batch; excluded from stable snapshots)",
        labels=(),
        module="repro.marketplace.orchestrator",
        volatile=True,
    ),
    MetricSpec(
        name="marketplace.run.elapsed_seconds",
        kind="gauge",
        help="wall-clock duration of the last orchestrator run",
        labels=(),
        module="repro.marketplace.orchestrator",
        volatile=True,
    ),
    # --- marketplace sharding (repro.marketplace.sharding) ------------- #
    MetricSpec(
        name="marketplace.shard.ticks",
        kind="counter",
        help="campaign steps executed in shard parallel phases",
        labels=(),
        module="repro.marketplace.sharding",
    ),
    MetricSpec(
        name="marketplace.shard.merge_conflicts",
        kind="counter",
        help="commit-phase routing stalls (shared-worker capacity conflicts)",
        labels=(),
        module="repro.marketplace.sharding",
    ),
    MetricSpec(
        name="marketplace.shard.reroutes",
        kind="counter",
        help="replacement votes re-routed deterministically at commit",
        labels=(),
        module="repro.marketplace.sharding",
    ),
    MetricSpec(
        name="marketplace.shard.phase_seconds",
        kind="gauge",
        help="wall-clock seconds of the last tick's phases (volatile)",
        labels=("phase",),
        module="repro.marketplace.sharding",
        volatile=True,
    ),
)

#: name -> spec for quick membership checks.
CATALOG_BY_NAME: Dict[str, MetricSpec] = {spec.name: spec for spec in METRIC_CATALOG}

if len(CATALOG_BY_NAME) != len(METRIC_CATALOG):  # pragma: no cover - load-time guard
    raise RuntimeError("duplicate metric names in METRIC_CATALOG")


def catalog_rows() -> List[dict]:
    """Catalog as sorted JSON-ready rows (for the CLI and docs)."""
    return [asdict(CATALOG_BY_NAME[name]) for name in sorted(CATALOG_BY_NAME)]


def catalog_payload() -> dict:
    """Schema-versioned catalog listing payload."""
    rows = catalog_rows()
    for row in rows:
        row["labels"] = list(row["labels"])
    return {"schema_version": CATALOG_SCHEMA_VERSION, "metrics": rows}


def catalog_json() -> str:
    return json.dumps(catalog_payload(), sort_keys=True, indent=2)


__all__ = [
    "CATALOG_SCHEMA_VERSION",
    "MetricSpec",
    "METRIC_CATALOG",
    "CATALOG_BY_NAME",
    "catalog_rows",
    "catalog_payload",
    "catalog_json",
]
