"""Canonical metric naming: dotted, lowercase, validated once at registry time.

Every subsystem that emits telemetry builds its metric names through
:func:`metric_name` so the whole catalog shares one grammar:

    ``<subsystem>.<noun>[.<noun>...]`` — e.g. ``serving.route.outcomes``

Segments are lowercase ``[a-z][a-z0-9_]*`` and joined with dots; anything
else raises at registration time rather than surfacing as a malformed
exposition line in production.  The O001 analyzer rule enforces that
modules constructing metric names go through this helper (or pass a
literal that already satisfies the grammar), which keeps name/label
cardinality from drifting between subsystems.
"""

from __future__ import annotations

import re
from typing import Tuple

#: A full metric name: two or more dotted lowercase segments.
METRIC_NAME_PATTERN = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$")

#: One segment of a metric name (no dots).
METRIC_SEGMENT_PATTERN = re.compile(r"^[a-z][a-z0-9_]*$")

#: A label name: same grammar as a segment.
LABEL_NAME_PATTERN = METRIC_SEGMENT_PATTERN


def validate_metric_name(name: str) -> str:
    """Return ``name`` if it satisfies the metric grammar, else raise.

    >>> validate_metric_name("serving.route.outcomes")
    'serving.route.outcomes'
    """
    if not isinstance(name, str) or not METRIC_NAME_PATTERN.match(name):
        raise ValueError(
            f"invalid metric name {name!r}: expected two or more dotted "
            "lowercase segments matching [a-z][a-z0-9_]* "
            "(build names with repro.obs.naming.metric_name)"
        )
    return name


def metric_name(*parts: str) -> str:
    """Join ``parts`` into a validated dotted metric name.

    >>> metric_name("serving", "route", "outcomes")
    'serving.route.outcomes'
    """
    if len(parts) < 2:
        raise ValueError(
            f"metric_name needs at least two segments, got {parts!r}"
        )
    for part in parts:
        if not isinstance(part, str) or not METRIC_SEGMENT_PATTERN.match(part):
            raise ValueError(
                f"invalid metric name segment {part!r}: expected lowercase "
                "[a-z][a-z0-9_]* with no dots"
            )
    return ".".join(parts)


def validate_label_names(labels: Tuple[str, ...]) -> Tuple[str, ...]:
    """Validate a tuple of label names (lowercase segments, no duplicates)."""
    seen = set()
    for label in labels:
        if not isinstance(label, str) or not LABEL_NAME_PATTERN.match(label):
            raise ValueError(
                f"invalid label name {label!r}: expected lowercase "
                "[a-z][a-z0-9_]* with no dots"
            )
        if label in seen:
            raise ValueError(f"duplicate label name {label!r}")
        seen.add(label)
    return tuple(labels)


__all__ = [
    "METRIC_NAME_PATTERN",
    "METRIC_SEGMENT_PATTERN",
    "LABEL_NAME_PATTERN",
    "metric_name",
    "validate_metric_name",
    "validate_label_names",
]
