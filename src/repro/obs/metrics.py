"""Deterministic metrics: counters, gauges, fixed-bound histograms.

The registry is built for two consumers at once:

* **Determinism tests** — :meth:`MetricsRegistry.snapshot` returns a
  schema-versioned dict whose every list is sorted (metric families by
  name, samples by label values, label maps by key), so
  ``snapshot_json()`` is byte-stable across runs and safe to assert on.
* **Hot paths** — ``family.labels(...)`` returns a cached child object
  with ``__slots__`` whose ``inc``/``observe`` is a single attribute
  bump, so instrumented code pre-binds children once and pays no dict
  lookup per event.

Metrics that depend on wall clock or on *execution shape* (e.g. journal
flush counts, which vary with ``tick_batch`` while the journal contents
do not) are registered with ``volatile=True`` and excluded from the
default snapshot; ``snapshot(include_volatile=True)`` opts back in.

:class:`NullRegistry` is the disabled-telemetry stand-in: every factory
returns a shared no-op metric, so code can be written against one API
and a single ``is None`` / identity check keeps the disabled route path
free of any per-call work.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from typing import Dict, List, Optional, Tuple, Union

from repro.obs.naming import validate_label_names, validate_metric_name

#: Version stamp on every snapshot payload; bump on shape changes.
METRICS_SCHEMA_VERSION = 1

#: Default histogram bounds (seconds-ish scale, but unitless).
DEFAULT_HISTOGRAM_BOUNDS: Tuple[float, ...] = (
    0.000001,
    0.00001,
    0.0001,
    0.001,
    0.01,
    0.1,
    1.0,
    10.0,
)

Number = Union[int, float]


class CounterChild:
    """One (label-values) series of a counter; monotonically increasing."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got inc({amount!r})")
        self.value += amount


class GaugeChild:
    """One (label-values) series of a gauge; settable to any number."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value

    def inc(self, amount: Number = 1) -> None:
        self.value += amount

    def dec(self, amount: Number = 1) -> None:
        self.value -= amount


class HistogramChild:
    """One (label-values) series of a fixed-bound histogram."""

    __slots__ = ("bounds", "buckets", "count", "total")

    def __init__(self, bounds: Tuple[float, ...]) -> None:
        self.bounds = bounds
        # One bucket per bound plus the +inf overflow bucket.
        self.buckets = [0] * (len(bounds) + 1)
        self.count = 0
        self.total: Number = 0

    def observe(self, value: Number) -> None:
        self.buckets[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value


_CHILD_TYPES = {
    "counter": CounterChild,
    "gauge": GaugeChild,
    "histogram": HistogramChild,
}


class Metric:
    """A metric family: a name/kind/help plus one child per label-values."""

    __slots__ = ("name", "kind", "help", "label_names", "volatile", "bounds", "_children")

    def __init__(
        self,
        name: str,
        kind: str,
        help: str,
        label_names: Tuple[str, ...] = (),
        *,
        volatile: bool = False,
        bounds: Optional[Tuple[float, ...]] = None,
    ) -> None:
        if kind not in _CHILD_TYPES:
            raise ValueError(f"unknown metric kind {kind!r}")
        self.name = validate_metric_name(name)
        self.kind = kind
        self.help = help
        self.label_names = validate_label_names(tuple(label_names))
        self.volatile = volatile
        if kind == "histogram":
            bounds = tuple(bounds if bounds is not None else DEFAULT_HISTOGRAM_BOUNDS)
            if not bounds or list(bounds) != sorted(set(bounds)):
                raise ValueError(f"histogram bounds must be strictly increasing, got {bounds!r}")
            self.bounds = bounds
        else:
            if bounds is not None:
                raise ValueError(f"bounds only apply to histograms, not {kind!r}")
            self.bounds = None
        self._children: Dict[Tuple[str, ...], object] = {}

    # ------------------------------------------------------------------ #
    # Child access
    # ------------------------------------------------------------------ #
    def labels(self, *values: str):
        """The child series for ``values`` (created on first use, cached)."""
        if len(values) != len(self.label_names):
            raise ValueError(
                f"metric {self.name!r} takes {len(self.label_names)} label "
                f"value(s) {self.label_names!r}, got {len(values)}"
            )
        key = tuple(str(v) for v in values)
        child = self._children.get(key)
        if child is None:
            if self.kind == "histogram":
                child = HistogramChild(self.bounds)
            else:
                child = _CHILD_TYPES[self.kind]()
            self._children[key] = child
        return child

    def _default_child(self):
        if self.label_names:
            raise ValueError(
                f"metric {self.name!r} is labelled {self.label_names!r}; "
                "call .labels(...) first"
            )
        return self.labels()

    # Convenience passthroughs for label-less families.
    def inc(self, amount: Number = 1) -> None:
        self._default_child().inc(amount)

    def dec(self, amount: Number = 1) -> None:
        self._default_child().dec(amount)

    def set(self, value: Number) -> None:
        self._default_child().set(value)

    def observe(self, value: Number) -> None:
        self._default_child().observe(value)

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #
    def samples(self) -> List[dict]:
        """Sorted, JSON-ready samples for this family."""
        out: List[dict] = []
        for key in sorted(self._children):
            child = self._children[key]
            labels = {name: value for name, value in zip(self.label_names, key)}
            if self.kind == "histogram":
                out.append(
                    {
                        "labels": labels,
                        "count": child.count,
                        "sum": child.total,
                        "buckets": [
                            {"le": bound, "count": count}
                            for bound, count in zip(
                                list(self.bounds) + ["+inf"], child.buckets
                            )
                        ],
                    }
                )
            else:
                out.append({"labels": labels, "value": child.value})
        return out


class MetricsRegistry:
    """Instrument factory + deterministic snapshot/exposition writer."""

    #: Identity check used by instrumented code: ``if registry.enabled:``.
    enabled = True

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    # ------------------------------------------------------------------ #
    # Factories (idempotent: re-declaring an identical metric returns it)
    # ------------------------------------------------------------------ #
    def _declare(
        self,
        name: str,
        kind: str,
        help: str,
        labels: Tuple[str, ...],
        volatile: bool,
        bounds: Optional[Tuple[float, ...]] = None,
    ) -> Metric:
        metric = Metric(name, kind, help, labels, volatile=volatile, bounds=bounds)
        existing = self._metrics.get(metric.name)
        if existing is not None:
            if (
                existing.kind != metric.kind
                or existing.label_names != metric.label_names
                or existing.bounds != metric.bounds
            ):
                raise ValueError(
                    f"metric {metric.name!r} re-declared with a different "
                    f"kind/labels/bounds than its first registration"
                )
            return existing
        self._metrics[metric.name] = metric
        return metric

    def counter(
        self,
        name: str,
        help: str = "",
        labels: Tuple[str, ...] = (),
        *,
        volatile: bool = False,
    ) -> Metric:
        return self._declare(name, "counter", help, labels, volatile)

    def gauge(
        self,
        name: str,
        help: str = "",
        labels: Tuple[str, ...] = (),
        *,
        volatile: bool = False,
    ) -> Metric:
        return self._declare(name, "gauge", help, labels, volatile)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Tuple[str, ...] = (),
        *,
        volatile: bool = False,
        bounds: Optional[Tuple[float, ...]] = None,
    ) -> Metric:
        return self._declare(name, "histogram", help, labels, volatile, bounds)

    # ------------------------------------------------------------------ #
    # Introspection / export
    # ------------------------------------------------------------------ #
    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def snapshot(self, include_volatile: bool = False) -> dict:
        """Schema-versioned, fully sorted snapshot of every sample.

        Volatile metrics (wall-clock or execution-shape dependent) are
        excluded by default so the payload is byte-stable across runs.
        """
        metrics = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if metric.volatile and not include_volatile:
                continue
            metrics.append(
                {
                    "name": metric.name,
                    "kind": metric.kind,
                    "help": metric.help,
                    "labels": list(metric.label_names),
                    "volatile": metric.volatile,
                    "samples": metric.samples(),
                }
            )
        return {"schema_version": METRICS_SCHEMA_VERSION, "metrics": metrics}

    def snapshot_json(self, include_volatile: bool = False) -> str:
        """The snapshot as canonical (sorted-keys, compact) JSON text."""
        return json.dumps(
            self.snapshot(include_volatile=include_volatile),
            sort_keys=True,
            separators=(",", ":"),
        )

    def exposition(self, include_volatile: bool = True) -> str:
        """Prometheus-style text exposition (dots become underscores)."""
        lines: List[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if metric.volatile and not include_volatile:
                continue
            flat = metric.name.replace(".", "_")
            if metric.help:
                lines.append(f"# HELP {flat} {metric.help}")
            lines.append(f"# TYPE {flat} {metric.kind}")
            for sample in metric.samples():
                labelled = _format_labels(sample["labels"])
                if metric.kind == "histogram":
                    cumulative = 0
                    for bucket in sample["buckets"]:
                        cumulative += bucket["count"]
                        bucket_labels = _format_labels(dict(sample["labels"], le=bucket["le"]))
                        lines.append(f"{flat}_bucket{bucket_labels} {cumulative}")
                    lines.append(f"{flat}_sum{labelled} {sample['sum']}")
                    lines.append(f"{flat}_count{labelled} {sample['count']}")
                else:
                    lines.append(f"{flat}{labelled} {sample['value']}")
        return "\n".join(lines) + ("\n" if lines else "")


def _format_labels(labels: Dict[str, object]) -> str:
    if not labels:
        return ""
    parts = [f'{key}="{labels[key]}"' for key in sorted(labels)]
    return "{" + ",".join(parts) + "}"


class _NullMetric:
    """Shared no-op metric: accepts any child/update call and does nothing."""

    __slots__ = ()

    def labels(self, *values: str) -> "_NullMetric":
        return self

    def inc(self, amount: Number = 1) -> None:
        pass

    def dec(self, amount: Number = 1) -> None:
        pass

    def set(self, value: Number) -> None:
        pass

    def observe(self, value: Number) -> None:
        pass


#: The single shared no-op metric instance.
NULL_METRIC = _NullMetric()


class NullRegistry:
    """Disabled-telemetry registry: every factory returns :data:`NULL_METRIC`.

    Snapshots are empty but still schema-versioned, so export code does
    not need to special-case the disabled state.
    """

    enabled = False

    def counter(self, name: str, help: str = "", labels: Tuple[str, ...] = (), **_: object):
        return NULL_METRIC

    def gauge(self, name: str, help: str = "", labels: Tuple[str, ...] = (), **_: object):
        return NULL_METRIC

    def histogram(self, name: str, help: str = "", labels: Tuple[str, ...] = (), **_: object):
        return NULL_METRIC

    def __contains__(self, name: str) -> bool:
        return False

    def get(self, name: str) -> None:
        return None

    def names(self) -> List[str]:
        return []

    def snapshot(self, include_volatile: bool = False) -> dict:
        return {"schema_version": METRICS_SCHEMA_VERSION, "metrics": []}

    def snapshot_json(self, include_volatile: bool = False) -> str:
        return json.dumps(
            self.snapshot(include_volatile=include_volatile),
            sort_keys=True,
            separators=(",", ":"),
        )

    def exposition(self, include_volatile: bool = True) -> str:
        return ""


__all__ = [
    "METRICS_SCHEMA_VERSION",
    "DEFAULT_HISTOGRAM_BOUNDS",
    "CounterChild",
    "GaugeChild",
    "HistogramChild",
    "Metric",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_METRIC",
]
