"""Deterministic telemetry: metrics, logical-clock traces, blessed timing.

The observability layer the serving and marketplace subsystems report
through:

``repro.obs.naming``
    One grammar for metric names (dotted lowercase), enforced at
    registration time and by analyzer rule O001.
``repro.obs.metrics``
    :class:`MetricsRegistry` — counters, gauges, fixed-bound histograms
    with sorted, schema-versioned, byte-stable snapshots; and
    :class:`NullRegistry`, the no-op stand-in for disabled telemetry.
``repro.obs.timing``
    The single module allowed to read the wall clock (the one D002
    waiver site in the tree).
``repro.obs.tracing``
    Logical-clock trace spans keyed by (tick, task, worker).
``repro.obs.config``
    :class:`TelemetryConfig` / :class:`Telemetry` — the runtime bundle
    instrumented constructors take as a separate ``telemetry=`` argument
    (never a field of the fingerprinted Serving/Marketplace configs).
``repro.obs.catalog``
    The static :data:`METRIC_CATALOG` behind ``repro-crowd metrics``.
``repro.obs.listener``
    :class:`PoolMetricsListener` for the pool change-event bus.

Telemetry is opt-in and must be inert when off: with ``telemetry=None``
every instrumented path reduces to one ``is None`` check, and serving
traces / marketplace journals stay byte-identical to an uninstrumented
run.
"""

from repro.obs.catalog import CATALOG_BY_NAME, METRIC_CATALOG, MetricSpec
from repro.obs.config import Telemetry, TelemetryConfig, create_telemetry
from repro.obs.metrics import (
    METRICS_SCHEMA_VERSION,
    MetricsRegistry,
    NullRegistry,
    NULL_METRIC,
)
from repro.obs.listener import PoolMetricsListener
from repro.obs.naming import metric_name, validate_metric_name
from repro.obs.tracing import TRACE_SCHEMA_VERSION, TraceRecorder

__all__ = [
    "CATALOG_BY_NAME",
    "METRIC_CATALOG",
    "MetricSpec",
    "Telemetry",
    "TelemetryConfig",
    "create_telemetry",
    "METRICS_SCHEMA_VERSION",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_METRIC",
    "PoolMetricsListener",
    "metric_name",
    "validate_metric_name",
    "TRACE_SCHEMA_VERSION",
    "TraceRecorder",
]
