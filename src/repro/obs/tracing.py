"""Logical-clock trace spans: ordered by sequence number, not wall time.

A span is keyed by the simulation coordinates that make it meaningful —
``(tick, task, worker)`` — plus a monotonically increasing sequence
number assigned at span start.  No wall clock is read anywhere in this
module, so a trace of a deterministic run is itself deterministic and
can be diffed byte-for-byte across machines.

>>> tracer = TraceRecorder()
>>> with tracer.span("route", tick=3, task="t-1"):
...     tracer.event("picked", tick=3, task="t-1", worker="w-9")
>>> [s["name"] for s in tracer.spans()]
['route', 'picked']
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from typing import Iterator, List, Optional

#: Version stamp on trace payloads; bump on shape changes.
TRACE_SCHEMA_VERSION = 1


class TraceRecorder:
    """Collects spans and point events in logical (sequence) order."""

    __slots__ = ("_spans", "_seq")

    def __init__(self) -> None:
        self._spans: List[dict] = []
        self._seq = 0

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def event(
        self,
        name: str,
        *,
        tick: Optional[int] = None,
        task: Optional[str] = None,
        worker: Optional[str] = None,
        **attrs: object,
    ) -> None:
        """Record a point event (a span with no duration)."""
        record = {"seq": self._next_seq(), "name": name}
        if tick is not None:
            record["tick"] = tick
        if task is not None:
            record["task"] = task
        if worker is not None:
            record["worker"] = worker
        if attrs:
            record["attrs"] = {k: attrs[k] for k in sorted(attrs)}
        self._spans.append(record)

    @contextmanager
    def span(
        self,
        name: str,
        *,
        tick: Optional[int] = None,
        task: Optional[str] = None,
        worker: Optional[str] = None,
        **attrs: object,
    ) -> Iterator[dict]:
        """A span covering the enclosed block; ``seq_end`` marks exit order."""
        record = {"seq": self._next_seq(), "name": name}
        if tick is not None:
            record["tick"] = tick
        if task is not None:
            record["task"] = task
        if worker is not None:
            record["worker"] = worker
        if attrs:
            record["attrs"] = {k: attrs[k] for k in sorted(attrs)}
        self._spans.append(record)
        try:
            yield record
        finally:
            record["seq_end"] = self._next_seq()

    def spans(self) -> List[dict]:
        """Every recorded span/event in start order."""
        return list(self._spans)

    def snapshot(self) -> dict:
        """Schema-versioned trace payload, byte-stable for a given run."""
        return {"schema_version": TRACE_SCHEMA_VERSION, "spans": self.spans()}

    def snapshot_json(self) -> str:
        return json.dumps(self.snapshot(), sort_keys=True, separators=(",", ":"))

    def clear(self) -> None:
        self._spans.clear()
        self._seq = 0


__all__ = ["TRACE_SCHEMA_VERSION", "TraceRecorder"]
