# repro: allow-file[D002] -- the single blessed wall-clock site; every other
# module imports perf_counter/wall_time from here so timing stays out of state.
"""The one place in the tree that is allowed to read the wall clock.

Determinism rule D002 flags every ``time.perf_counter`` / ``time.time``
call site outside this module.  Code that legitimately needs elapsed-time
*reporting* (benchmark loops, ``elapsed_s`` report fields, volatile
latency metrics) imports from here instead of ``time``:

    from repro.obs.timing import perf_counter

That keeps the waiver surface at exactly one file and makes every
wall-clock dependency greppable.  Nothing in this module may feed values
back into simulation or serving *state* — wall time is for reports and
volatile metrics only.
"""

from __future__ import annotations

import time

__all__ = ["perf_counter", "wall_time", "monotonic"]


def perf_counter() -> float:
    """High-resolution elapsed-time clock (see :func:`time.perf_counter`)."""
    return time.perf_counter()


def wall_time() -> float:
    """Seconds since the epoch (see :func:`time.time`); reports only."""
    return time.time()


def monotonic() -> float:
    """Monotonic clock (see :func:`time.monotonic`); reports only."""
    return time.monotonic()
