"""Telemetry configuration and the runtime bundle it builds.

``TelemetryConfig`` is deliberately **not** part of ``ServingConfig`` or
``MarketplaceConfig``: those configs are fingerprinted into traces and
journal headers, and turning telemetry on or off must never change a
run's observable outputs.  Instrumented constructors instead take a
separate ``telemetry=`` argument carrying a :class:`Telemetry` bundle
(or ``None``), so the disabled state costs one ``is None`` check at
construction time and nothing per event.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.obs.metrics import MetricsRegistry, NullRegistry
from repro.obs.tracing import TraceRecorder


@dataclass(frozen=True)
class TelemetryConfig:
    """What to collect.  Disabled by default; everything opt-in.

    ``route_latency_sample_every`` bounds the wall-clock reads on the
    route hot path: the (volatile) latency histogram records every Nth
    call instead of every call, which keeps enabled-telemetry routing
    overhead inside the benchmarked budget.  ``pool_load_events`` is off
    by default because load changes fire per assignment (several per
    routed task) — turning it on is cheap but measurable.
    """

    enabled: bool = False
    #: Record logical-clock trace spans (off: metrics only).
    trace: bool = False
    #: Sample the route latency histogram every Nth route() call (>= 1).
    route_latency_sample_every: int = 64
    #: Count pool load-change events (fires per assignment; opt-in).
    pool_load_events: bool = False

    def __post_init__(self) -> None:
        if self.route_latency_sample_every < 1:
            raise ValueError(
                f"route_latency_sample_every must be >= 1, got "
                f"{self.route_latency_sample_every}"
            )


class Telemetry:
    """Runtime bundle: one registry (+ optional tracer) per run.

    Build one per serving run / marketplace run and hand it to every
    instrumented constructor; all subsystems then share a single
    registry, so one ``snapshot()`` covers the whole run.
    """

    __slots__ = ("config", "registry", "tracer")

    def __init__(self, config: Optional[TelemetryConfig] = None) -> None:
        self.config = config if config is not None else TelemetryConfig()
        if self.config.enabled:
            self.registry = MetricsRegistry()
            self.tracer = TraceRecorder() if self.config.trace else None
        else:
            self.registry = NullRegistry()
            self.tracer = None

    @property
    def enabled(self) -> bool:
        return self.config.enabled

    def snapshot(self, include_volatile: bool = False) -> dict:
        return self.registry.snapshot(include_volatile=include_volatile)

    def snapshot_json(self, include_volatile: bool = False) -> str:
        return self.registry.snapshot_json(include_volatile=include_volatile)

    def exposition(self, include_volatile: bool = True) -> str:
        return self.registry.exposition(include_volatile=include_volatile)


def create_telemetry(
    enabled: bool = True,
    *,
    trace: bool = False,
    route_latency_sample_every: int = 64,
    pool_load_events: bool = False,
) -> Telemetry:
    """Convenience constructor used by the CLI and benchmarks."""
    return Telemetry(
        TelemetryConfig(
            enabled=enabled,
            trace=trace,
            route_latency_sample_every=route_latency_sample_every,
            pool_load_events=pool_load_events,
        )
    )


__all__ = ["TelemetryConfig", "Telemetry", "create_telemetry"]
