"""Shared experiment configuration and the canonical method roster.

The paper compares five methods on every dataset (Table V): Uniform
Sampling, Median Elimination, Li et al., the ME-CPE ablation and the
proposed method, plus the ground-truth upper bound.  This module centralises
how those methods are constructed so every table/figure runner, benchmark
and example instantiates exactly the same configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.cpe import CPEConfig
from repro.core.lge import LGEConfig
from repro.core.registry import make_selector, selector_exists, selector_names
from repro.core.selector import BaseWorkerSelector

# Display names used in tables (keys are the internal method identifiers).
METHOD_LABELS: Dict[str, str] = {
    "us": "US",
    "me": "ME",
    "li": "Li et al.",
    "me-cpe": "ME-CPE",
    "ours": "Ours",
    "ground-truth": "Ground Truth",
}

#: Order in which methods appear in every reproduced table.
METHOD_ORDER: List[str] = ["us", "me", "li", "me-cpe", "ours"]


@dataclass
class ExperimentConfig:
    """Knobs shared by all experiment runners.

    Attributes
    ----------
    n_repetitions:
        Repetitions per (dataset, method) cell; results report the mean.
    base_seed:
        Root seed from which all per-cell seeds are derived.
    target_initial_accuracy:
        The paper's ``a_T`` (0.5 by default; Figure 5 sweeps it).
    cpe_epochs:
        Gradient-descent epochs per CPE update (the paper's ``G = 50``).
    n_jobs:
        Worker processes for the comparison grid (1 = in-process serial).
        Every work unit derives its own seeds from the full
        ``(dataset, method, repetition, k, q)`` key, so ``n_jobs > 1``
        produces results identical to the serial run.
    """

    n_repetitions: int = 3
    base_seed: int = 7
    target_initial_accuracy: float = 0.5
    cpe_epochs: int = 50
    n_jobs: int = 1

    def __post_init__(self) -> None:
        if self.n_repetitions <= 0:
            raise ValueError("n_repetitions must be positive")
        if self.n_jobs <= 0:
            raise ValueError("n_jobs must be positive")

    def cpe_config(self) -> CPEConfig:
        """CPE configuration implied by this experiment configuration."""
        return CPEConfig(
            initial_target_mean=self.target_initial_accuracy,
            n_epochs=self.cpe_epochs,
        )

    def lge_config(self) -> LGEConfig:
        """LGE configuration implied by this experiment configuration."""
        return LGEConfig(target_initial_accuracy=self.target_initial_accuracy)

    def make_selector(self, method: str, seed: Optional[int] = None) -> BaseWorkerSelector:
        """Build one registered selector with this configuration's shared knobs.

        Knobs a selector does not accept (e.g. ``cpe_epochs`` for Uniform
        Sampling) are dropped, so one configuration drives a heterogeneous
        method roster.
        """
        return make_selector(
            method,
            seed=seed,
            target_initial_accuracy=self.target_initial_accuracy,
            cpe_epochs=self.cpe_epochs,
            ignore_unsupported=True,
        )

    def selector_factories(
        self,
        methods: Optional[List[str]] = None,
    ) -> Dict[str, Callable[[int], BaseWorkerSelector]]:
        """Factories for the requested methods (default: the Table V roster).

        Thin delegation to :mod:`repro.core.registry`: every factory maps a
        seed to ``make_selector(method, seed=..., <shared knobs>)``.
        """
        requested = methods if methods is not None else list(METHOD_ORDER)
        factories: Dict[str, Callable[[int], BaseWorkerSelector]] = {}
        for method in requested:
            if not selector_exists(method):
                raise KeyError(
                    f"unknown method {method!r}; registered selectors: {', '.join(selector_names())}"
                )
            factories[method] = lambda seed, method=method: self.make_selector(method, seed=seed)
        return factories


#: Configuration used by the benchmark suite: small repetition count so the
#: full table regenerates in minutes on a laptop.
BENCHMARK_CONFIG = ExperimentConfig(n_repetitions=2)

__all__ = ["ExperimentConfig", "METHOD_LABELS", "METHOD_ORDER", "BENCHMARK_CONFIG"]
