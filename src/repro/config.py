"""Shared experiment configuration and the canonical method roster.

The paper compares five methods on every dataset (Table V): Uniform
Sampling, Median Elimination, Li et al., the ME-CPE ablation and the
proposed method, plus the ground-truth upper bound.  This module centralises
how those methods are constructed so every table/figure runner, benchmark
and example instantiates exactly the same configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.baselines import (
    LiRegressionSelector,
    MeCpeSelector,
    MedianEliminationSelector,
    OursSelector,
    UniformSamplingSelector,
)
from repro.core.cpe import CPEConfig
from repro.core.lge import LGEConfig
from repro.core.selector import BaseWorkerSelector

# Display names used in tables (keys are the internal method identifiers).
METHOD_LABELS: Dict[str, str] = {
    "us": "US",
    "me": "ME",
    "li": "Li et al.",
    "me-cpe": "ME-CPE",
    "ours": "Ours",
    "ground-truth": "Ground Truth",
}

#: Order in which methods appear in every reproduced table.
METHOD_ORDER: List[str] = ["us", "me", "li", "me-cpe", "ours"]


@dataclass
class ExperimentConfig:
    """Knobs shared by all experiment runners.

    Attributes
    ----------
    n_repetitions:
        Repetitions per (dataset, method) cell; results report the mean.
    base_seed:
        Root seed from which all per-cell seeds are derived.
    target_initial_accuracy:
        The paper's ``a_T`` (0.5 by default; Figure 5 sweeps it).
    cpe_epochs:
        Gradient-descent epochs per CPE update (the paper's ``G = 50``).
    """

    n_repetitions: int = 3
    base_seed: int = 7
    target_initial_accuracy: float = 0.5
    cpe_epochs: int = 50

    def cpe_config(self) -> CPEConfig:
        """CPE configuration implied by this experiment configuration."""
        return CPEConfig(
            initial_target_mean=self.target_initial_accuracy,
            n_epochs=self.cpe_epochs,
        )

    def lge_config(self) -> LGEConfig:
        """LGE configuration implied by this experiment configuration."""
        return LGEConfig(target_initial_accuracy=self.target_initial_accuracy)

    def selector_factories(
        self,
        methods: Optional[List[str]] = None,
    ) -> Dict[str, Callable[[int], BaseWorkerSelector]]:
        """Factories for the requested methods (default: the Table V roster)."""
        requested = methods if methods is not None else list(METHOD_ORDER)
        factories: Dict[str, Callable[[int], BaseWorkerSelector]] = {}
        for method in requested:
            if method == "us":
                factories[method] = lambda seed: UniformSamplingSelector()
            elif method == "me":
                factories[method] = lambda seed: MedianEliminationSelector(rng=seed)
            elif method == "li":
                factories[method] = lambda seed: LiRegressionSelector()
            elif method == "me-cpe":
                factories[method] = lambda seed, cfg=self: MeCpeSelector(cpe_config=cfg.cpe_config(), rng=seed)
            elif method == "ours":
                factories[method] = lambda seed, cfg=self: OursSelector(
                    cpe_config=cfg.cpe_config(), lge_config=cfg.lge_config(), rng=seed
                )
            else:
                raise KeyError(f"unknown method {method!r}; known: {sorted(METHOD_LABELS)}")
        return factories


#: Configuration used by the benchmark suite: small repetition count so the
#: full table regenerates in minutes on a laptop.
BENCHMARK_CONFIG = ExperimentConfig(n_repetitions=2)

__all__ = ["ExperimentConfig", "METHOD_LABELS", "METHOD_ORDER", "BENCHMARK_CONFIG"]
