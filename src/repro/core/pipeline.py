"""The full cross-domain-aware worker selection pipeline (Algorithm 4).

Each elimination round the pipeline

1. assigns every remaining worker the shared batch of learning tasks and
   collects the answers (worker training, Definition 3);
2. updates the CPE model with the observed correct/wrong counts and predicts
   every remaining worker's target-domain accuracy (Algorithm 1);
3. refits every worker's learning curve and projects the accuracy to the end
   of the current round (Algorithm 2);
4. keeps the best half of the workers (Algorithm 3).

After ``n = ceil(log2(|W| / k))`` rounds, the ``k`` workers with the highest
final estimate are returned.  The two estimation components can be switched
off independently, which yields the paper's ablation variants:

* ``use_cpe=False, use_lge=False`` — plain budgeted Median Elimination;
* ``use_cpe=True,  use_lge=False`` — the ME-CPE ablation;
* ``use_cpe=True,  use_lge=True``  — the full proposed method.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional

import numpy as np

from repro.core.cpe import CPEConfig, CrossDomainPerformanceEstimator
from repro.core.elimination import median_eliminate
from repro.core.lge import LGEConfig, LearningGainEstimator
from repro.core.registry import register_selector
from repro.core.selector import BaseWorkerSelector, SelectionResult, run_stepwise, top_k_by_score
from repro.platform.session import AnnotationEnvironment
from repro.stats.rng import SeedLike, as_generator


@dataclass
class RoundDiagnostics:
    """Per-round record of what the pipeline observed and decided."""

    round_index: int
    worker_ids: List[str]
    tasks_per_worker: int
    observed_accuracies: Dict[str, float] = field(default_factory=dict)
    cpe_estimates: Dict[str, float] = field(default_factory=dict)
    lge_estimates: Dict[str, float] = field(default_factory=dict)
    survivors: List[str] = field(default_factory=list)


class CrossDomainWorkerSelector(BaseWorkerSelector):
    """The paper's proposed selector (and, via flags, its ablations)."""

    def __init__(
        self,
        cpe_config: Optional[CPEConfig] = None,
        lge_config: Optional[LGEConfig] = None,
        use_cpe: bool = True,
        use_lge: bool = True,
        rng: SeedLike = None,
        name: Optional[str] = None,
    ) -> None:
        self._cpe_config = cpe_config or CPEConfig()
        self._lge_config = lge_config or LGEConfig()
        self._use_cpe = use_cpe
        self._use_lge = use_lge
        self._rng = as_generator(rng)
        if name is not None:
            self.name = name
        elif use_cpe and use_lge:
            self.name = "ours"
        elif use_cpe:
            self.name = "me-cpe"
        else:
            self.name = "me"

    # ------------------------------------------------------------------ #
    @property
    def use_cpe(self) -> bool:
        return self._use_cpe

    @property
    def use_lge(self) -> bool:
        return self._use_lge

    # ------------------------------------------------------------------ #
    def select(self, environment: AnnotationEnvironment, k: Optional[int] = None) -> SelectionResult:
        _, result = run_stepwise(self.stepwise(environment, k))
        return result

    def stepwise(
        self, environment: AnnotationEnvironment, k: Optional[int] = None
    ) -> Generator[RoundDiagnostics, None, SelectionResult]:
        """One elimination round per ``next()``; returns the final result.

        Yields the :class:`RoundDiagnostics` of every round *after* its
        elimination decision, so a caller that stops consuming between
        yields observes a consistent mid-run state (survivors decided,
        budget charged).  :meth:`select` is exactly this generator driven
        to completion.
        """
        k = self.resolve_k(environment, k)
        schedule = environment.schedule
        prior_domains = environment.prior_domains
        all_ids = environment.worker_ids
        accuracy_matrix, count_matrix = environment.historical_profiles()
        row_of: Dict[str, int] = {worker_id: index for index, worker_id in enumerate(all_ids)}

        cpe: Optional[CrossDomainPerformanceEstimator] = None
        if self._use_cpe:
            cpe = CrossDomainPerformanceEstimator(prior_domains, self._cpe_config, rng=self._rng)
            cpe.initialize(accuracy_matrix)

        lge: Optional[LearningGainEstimator] = None
        if self._use_lge:
            prior_means = [
                float(np.nanmean(accuracy_matrix[:, column]))
                if np.any(~np.isnan(accuracy_matrix[:, column]))
                else 0.5
                for column in range(accuracy_matrix.shape[1])
            ]
            lge = LearningGainEstimator(prior_domains, prior_means, self._lge_config)

        remaining: List[str] = list(all_ids)
        cpe_histories: Dict[str, List[float]] = {worker_id: [] for worker_id in all_ids}
        cumulative_exposures: List[float] = [0.0]
        diagnostics: List[RoundDiagnostics] = []
        previous_round_estimates: Dict[str, float] = {}
        last_estimates: Dict[str, float] = {}

        for round_index in range(1, schedule.n_rounds + 1):
            tasks_per_worker = schedule.round_budget // max(len(remaining), 1)
            record = environment.run_learning_round(remaining, tasks_per_worker, round_index=round_index)
            correct_by_id = record.correct_counts()
            wrong_by_id = record.wrong_counts()
            observed_accuracy = record.accuracies()

            rows = np.asarray([row_of[worker_id] for worker_id in remaining], dtype=int)
            round_accuracy_matrix = accuracy_matrix[rows]
            round_count_matrix = count_matrix[rows]
            correct = np.asarray([correct_by_id[worker_id] for worker_id in remaining], dtype=float)
            wrong = np.asarray([wrong_by_id[worker_id] for worker_id in remaining], dtype=float)

            # --- Worker quality estimation: CPE (Algorithm 1). ---
            if tasks_per_worker == 0:
                # Degenerate round: the per-round budget cannot cover even one
                # task per remaining worker, so the round observed nothing.
                # Feeding the all-zero counts into the CPE update would drag
                # the model towards the count-free likelihood optimum, so the
                # update is skipped and the freshest existing estimates carry
                # over (prior-only CPE prediction on the first round).
                if cpe is not None:
                    cpe_estimates = cpe.predict(round_accuracy_matrix)
                else:
                    cpe_estimates = np.asarray(
                        [last_estimates.get(worker_id, 0.5) for worker_id in remaining], dtype=float
                    )
            elif cpe is not None:
                cpe.update(round_accuracy_matrix, correct, wrong)
                cpe_estimates = cpe.predict(round_accuracy_matrix, correct, wrong)
            else:
                cpe_estimates = correct / (correct + wrong)
            for worker_id, estimate in zip(remaining, cpe_estimates):
                cpe_histories[worker_id].append(float(estimate))

            cumulative_exposures.append(cumulative_exposures[-1] + tasks_per_worker)

            # --- Worker quality estimation: LGE (Algorithm 2). ---
            if lge is not None:
                lge_estimates = lge.estimate(
                    worker_ids=remaining,
                    historical_accuracies=round_accuracy_matrix,
                    historical_counts=round_count_matrix,
                    cpe_histories=cpe_histories,
                    cumulative_exposures=cumulative_exposures,
                )
            else:
                lge_estimates = np.asarray(cpe_estimates, dtype=float)

            estimates_by_id = {
                worker_id: float(estimate) for worker_id, estimate in zip(remaining, lge_estimates)
            }

            # --- Worker selection: Median Elimination (Algorithm 3). ---
            survivors = median_eliminate(remaining, [estimates_by_id[w] for w in remaining])
            round_diagnostics = RoundDiagnostics(
                round_index=round_index,
                worker_ids=list(remaining),
                tasks_per_worker=tasks_per_worker,
                observed_accuracies={w: float(observed_accuracy[w]) for w in remaining},
                cpe_estimates={w: float(p) for w, p in zip(remaining, cpe_estimates)},
                lge_estimates=dict(estimates_by_id),
                survivors=list(survivors),
            )
            diagnostics.append(round_diagnostics)
            previous_round_estimates = last_estimates
            last_estimates = estimates_by_id
            remaining = survivors
            yield round_diagnostics

        # --- Final selection (Algorithm 4, line 17). ---
        if len(remaining) >= k:
            final_scores = {worker_id: last_estimates[worker_id] for worker_id in remaining}
        else:
            # Fewer survivors than k: fall back to the last round's entrants.
            # Every worker in that pool was (re-)estimated in the final round,
            # so prefer those fresh estimates and only reach back to the
            # penultimate round for workers that somehow lack one.
            fallback_pool = diagnostics[-1].worker_ids if diagnostics else list(all_ids)
            final_scores = {
                worker_id: last_estimates.get(
                    worker_id, previous_round_estimates.get(worker_id, 0.0)
                )
                for worker_id in fallback_pool
            }
        selected = top_k_by_score(final_scores, k)

        result_diagnostics: Dict[str, object] = {
            "rounds": diagnostics,
            "cumulative_exposures": list(cumulative_exposures),
        }
        if cpe is not None:
            result_diagnostics["estimated_correlations"] = cpe.estimated_correlations()
            result_diagnostics["cpe_model_mean"] = cpe.model.mean.tolist()
        if lge is not None:
            result_diagnostics["fitted_alphas"] = lge.fitted_alphas

        return SelectionResult(
            method=self.name,
            selected_worker_ids=selected,
            estimated_accuracies={worker_id: final_scores.get(worker_id, 0.0) for worker_id in selected},
            spent_budget=environment.spent_budget,
            n_rounds=schedule.n_rounds,
            diagnostics=result_diagnostics,
        )


@register_selector("cross-domain", aliases=("pipeline",))
def _build_cross_domain(
    seed: SeedLike = None,
    use_cpe: bool = True,
    use_lge: bool = True,
    target_initial_accuracy: Optional[float] = None,
    cpe_epochs: Optional[int] = None,
    cpe_engine: Optional[str] = None,
    cpe_config: Optional[CPEConfig] = None,
    lge_config: Optional[LGEConfig] = None,
    name: Optional[str] = None,
) -> CrossDomainWorkerSelector:
    """The configurable pipeline itself, ablation flags exposed."""
    return CrossDomainWorkerSelector(
        cpe_config=cpe_config or build_cpe_config(target_initial_accuracy, cpe_epochs, cpe_engine),
        lge_config=lge_config or build_lge_config(target_initial_accuracy),
        use_cpe=use_cpe,
        use_lge=use_lge,
        rng=seed,
        name=name,
    )


def build_cpe_config(
    target_initial_accuracy: Optional[float] = None,
    cpe_epochs: Optional[int] = None,
    cpe_engine: Optional[str] = None,
) -> CPEConfig:
    """A :class:`CPEConfig` with only the explicitly provided knobs overridden."""
    overrides: Dict[str, object] = {}
    if target_initial_accuracy is not None:
        overrides["initial_target_mean"] = target_initial_accuracy
    if cpe_epochs is not None:
        overrides["n_epochs"] = cpe_epochs
    if cpe_engine is not None:
        overrides["likelihood_engine"] = cpe_engine
    return CPEConfig(**overrides)


def build_lge_config(target_initial_accuracy: Optional[float] = None) -> LGEConfig:
    """A :class:`LGEConfig` with only the explicitly provided knobs overridden."""
    if target_initial_accuracy is not None:
        return LGEConfig(target_initial_accuracy=target_initial_accuracy)
    return LGEConfig()


__all__ = ["CrossDomainWorkerSelector", "RoundDiagnostics", "build_cpe_config", "build_lge_config"]
