"""The paper's primary contribution: cross-domain-aware worker selection with training.

Modules
-------
:mod:`repro.core.selector`
    The common selector interface and the :class:`SelectionResult` record
    shared by the proposed method and every baseline.
:mod:`repro.core.cpe`
    Cross-domain-aware Performance Estimation (Algorithm 1): an online
    maximum-likelihood multivariate-normal model over per-domain accuracies.
:mod:`repro.core.lge`
    Learning Gain Estimation (Algorithm 2): per-worker learning-curve fits
    that project each worker's accuracy to the end of training.
:mod:`repro.core.elimination`
    Budgeted Median Elimination (Algorithm 3) plus the round/budget
    bookkeeping.
:mod:`repro.core.pipeline`
    The full selection pipeline (Algorithm 4) combining worker training,
    CPE, LGE and ME; configurable ablations (``use_cpe`` / ``use_lge``).
:mod:`repro.core.bounds`
    The theoretical guarantees of Theorems 1-2 (per-round epsilon and the
    overall error bound) as checkable functions.
:mod:`repro.core.registry`
    The selector registry: every strategy is string-addressable via
    ``make_selector(name, **config)`` and new ones plug in with the
    ``@register_selector`` decorator.
"""

from repro.core.bounds import delta_schedule, epsilon_for_round, required_tasks_per_worker, round_error_bound
from repro.core.cpe import CPEConfig, CrossDomainPerformanceEstimator, RoundData
from repro.core.elimination import median_eliminate
from repro.core.lge import LGEConfig, LearningGainEstimator
from repro.core.pipeline import CrossDomainWorkerSelector, RoundDiagnostics
from repro.core.registry import (
    SelectorRegistry,
    describe_selector,
    make_selector,
    register_selector,
    selector_exists,
    selector_names,
)
from repro.core.selector import BaseWorkerSelector, SelectionResult, run_stepwise

__all__ = [
    "BaseWorkerSelector",
    "SelectionResult",
    "run_stepwise",
    "SelectorRegistry",
    "register_selector",
    "make_selector",
    "selector_names",
    "selector_exists",
    "describe_selector",
    "CPEConfig",
    "RoundData",
    "CrossDomainPerformanceEstimator",
    "LGEConfig",
    "LearningGainEstimator",
    "median_eliminate",
    "CrossDomainWorkerSelector",
    "RoundDiagnostics",
    "epsilon_for_round",
    "required_tasks_per_worker",
    "round_error_bound",
    "delta_schedule",
]
