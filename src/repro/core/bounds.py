"""Theoretical guarantees (Theorems 1-2).

Theorem 1: if every remaining worker is assigned ``(2 / eps_c^2) ln(3 / delta_c)``
learning tasks in round ``c``, then with probability at least ``1 - delta_c``
the best worker surviving into round ``c + 1`` is ``eps_c``-optimal with
respect to the best worker of round ``c``.

Theorem 2: under the paper's budget allocation (Eq. 12-13), the per-round
error is bounded by ``O(sqrt((n k / B) ln(1 / delta_c)))``.

These are expressed as checkable functions so the benchmark suite can verify
that (a) the implemented schedule implies the claimed epsilon, and (b) the
empirical violation rate of the elimination step stays below ``delta``.
"""

from __future__ import annotations

import math
from typing import List


def required_tasks_per_worker(epsilon: float, delta: float) -> int:
    """Tasks per worker needed for an ``(epsilon, delta)`` round (Theorem 1)."""
    if not 0.0 < epsilon:
        raise ValueError("epsilon must be positive")
    if not 0.0 < delta < 1.0:
        raise ValueError("delta must lie in (0, 1)")
    return math.ceil((2.0 / epsilon**2) * math.log(3.0 / delta))


def epsilon_for_round(tasks_per_worker: int, delta: float) -> float:
    """The ``epsilon_c`` guaranteed when each worker answers ``tasks_per_worker`` tasks.

    Inverts Theorem 1's sample-size requirement:
    ``eps_c = sqrt(2 ln(3 / delta_c) / tasks_per_worker)``.
    """
    if tasks_per_worker <= 0:
        raise ValueError("tasks_per_worker must be positive")
    if not 0.0 < delta < 1.0:
        raise ValueError("delta must lie in (0, 1)")
    return math.sqrt(2.0 * math.log(3.0 / delta) / tasks_per_worker)


def round_error_bound(n_rounds: int, k: int, total_budget: int, delta: float, constant: float = 2.0) -> float:
    """Theorem 2's bound ``O(sqrt((n k / B) ln(1 / delta)))`` with an explicit constant.

    The bound is asymptotic; ``constant`` makes it concrete for the
    verification benchmarks (the default 2 matches the Hoeffding constant in
    Theorem 1).
    """
    if n_rounds <= 0 or k <= 0 or total_budget <= 0:
        raise ValueError("n_rounds, k and total_budget must be positive")
    if not 0.0 < delta < 1.0:
        raise ValueError("delta must lie in (0, 1)")
    return math.sqrt(constant * (n_rounds * k / total_budget) * math.log(1.0 / delta))


def delta_schedule(delta: float, n_rounds: int) -> List[float]:
    """The per-round failure probabilities ``delta_c`` (halved every round, Algorithm 4)."""
    if not 0.0 < delta < 1.0:
        raise ValueError("delta must lie in (0, 1)")
    if n_rounds <= 0:
        raise ValueError("n_rounds must be positive")
    schedule = []
    current = delta
    for _ in range(n_rounds):
        schedule.append(current)
        current /= 2.0
    return schedule


def total_failure_probability(delta: float, n_rounds: int) -> float:
    """Union bound over the per-round failure probabilities ``sum_c delta_c < 2 delta``."""
    return sum(delta_schedule(delta, n_rounds))


__all__ = [
    "required_tasks_per_worker",
    "epsilon_for_round",
    "round_error_bound",
    "delta_schedule",
    "total_failure_probability",
]
