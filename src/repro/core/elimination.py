"""Budgeted Median Elimination (Algorithm 3).

Each round the remaining workers are ranked by their estimated target-domain
accuracy and the best half (``ceil(|W_c| / 2)``) survives.  The function is
deliberately tiny — the intelligence lives in the estimates it is fed — but
it is shared by the proposed method, the ME baseline and the ME-CPE
ablation so that every variant eliminates identically.
"""

from __future__ import annotations

import math
from typing import List, Sequence


def median_eliminate(
    worker_ids: Sequence[str],
    estimated_accuracies: Sequence[float],
    keep: int | None = None,
) -> List[str]:
    """Keep the best half of the workers by estimated accuracy.

    Parameters
    ----------
    worker_ids:
        The remaining workers ``W_c``.
    estimated_accuracies:
        One estimate per worker, aligned with ``worker_ids``.
    keep:
        Override for the number of survivors; defaults to
        ``ceil(len(worker_ids) / 2)`` (Algorithm 3, line 2).

    Returns
    -------
    list of str
        The surviving worker ids ``W_{c+1}``, ordered from best to worst
        estimate (ties broken by worker id for determinism).
    """
    ids = list(worker_ids)
    estimates = [float(estimate) for estimate in estimated_accuracies]
    if len(ids) != len(estimates):
        raise ValueError("worker_ids and estimated_accuracies must have equal length")
    if not ids:
        raise ValueError("cannot eliminate from an empty worker set")
    broken = [worker_id for worker_id, value in zip(ids, estimates) if not math.isfinite(value)]
    if broken:
        # NaNs poison sort comparisons and would yield an arbitrary ranking;
        # fail loudly instead so the broken estimator upstream is visible.
        raise ValueError(f"estimated accuracies must be finite; non-finite for workers {broken}")
    n_keep = keep if keep is not None else math.ceil(len(ids) / 2)
    if n_keep <= 0:
        raise ValueError("the number of survivors must be positive")
    n_keep = min(n_keep, len(ids))
    ranked = sorted(zip(ids, estimates), key=lambda pair: (-pair[1], pair[0]))
    return [worker_id for worker_id, _ in ranked[:n_keep]]


def elimination_trajectory(pool_size: int, k: int) -> List[int]:
    """Pool sizes at the start of each round until ``k`` or fewer workers remain.

    Useful for validating budget schedules and for the theoretical-bound
    benchmarks: ``[|W_1|, |W_2|, ...]`` with ``|W_{c+1}| = ceil(|W_c| / 2)``.
    """
    if pool_size <= 0 or k <= 0:
        raise ValueError("pool_size and k must be positive")
    sizes = [pool_size]
    while sizes[-1] > k:
        sizes.append(math.ceil(sizes[-1] / 2))
    return sizes


__all__ = ["median_eliminate", "elimination_trajectory"]
