"""Learning Gain Estimation (LGE, Algorithm 2).

Static estimators undervalue workers who improve quickly during training.
LGE refits, every round, a per-worker learning curve (the modified Rasch
model of Eq. 10) against two kinds of evidence and then *projects* each
worker's accuracy forward along the curve:

* prior-domain anchor points: the learning-curve prediction at exposure
  ``n_{i,d}`` and difficulty ``beta_d`` should match the worker's historical
  accuracy ``h_{i,d}``;
* target-domain anchor points: the prediction at exposure ``K_{j-1}`` and
  difficulty ``beta_T`` should match the CPE estimate ``p_{j,i}`` of every
  completed round ``j`` (the CPE of round ``j`` reflects a worker trained
  with ``j - 1`` revealed batches, hence the index shift).

The fitted ``alpha_i`` then yields the LGE-adjusted estimate
``p_hat_{c,i} = g(alpha_i, beta_T, K_c)`` used for elimination, and can be
extrapolated to the end of training (``K_n``) for reporting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.irt.difficulty import difficulty_from_accuracy
from repro.irt.fitting import AlphaFitObservation, fit_learning_rate
from repro.irt.learning_curve import LearningCurveModel


@dataclass
class LGEConfig:
    """Configuration of the LGE estimator.

    Attributes
    ----------
    target_initial_accuracy:
        The assumed pre-training accuracy on the target domain (the paper's
        ``a_T``); it defines the target difficulty ``beta_T = ln(1/a_T - 1)``
        and is the knob Figure 5 sweeps.
    alpha_bounds:
        Search interval for the per-worker learning rate.
    prior_anchor_weight, target_anchor_weight:
        Relative weights of the two residual groups in Eq. (11).  The paper
        weights them equally; the default here discounts the prior-domain
        anchors to 0.5 because they inform the target-domain learning rate
        only through the assumption that learning ability transfers across
        domains, which is weaker evidence than direct target-domain rounds.
    weight_anchors_by_exposure:
        When ``True`` (default) every residual is additionally weighted by
        the number of tasks behind its observation (heteroscedastic least
        squares: an anchor backed by 80 answered tasks is trusted more than
        one backed by 10).  This keeps the handful of prior-domain anchors
        from drowning out the accumulating target-domain evidence in later
        rounds.  Set to ``False`` for the paper's literal equal weighting.
    anchor_at_midpoint:
        Where along the training curve the round-``j`` CPE estimate is
        anchored.  ``True`` (default) uses the middle of round ``j``'s
        exposure window, matching the batch-granular simulator in which a
        round's answers are produced while the worker is still learning;
        ``False`` uses the paper's ``K_{j-1}`` (the exposure at the start of
        the round).
    """

    target_initial_accuracy: float = 0.5
    alpha_bounds: Tuple[float, float] = (0.0, 10.0)
    prior_anchor_weight: float = 0.5
    target_anchor_weight: float = 1.0
    weight_anchors_by_exposure: bool = True
    anchor_at_midpoint: bool = True

    def __post_init__(self) -> None:
        if not 0.0 < self.target_initial_accuracy < 1.0:
            raise ValueError("target_initial_accuracy must lie in (0, 1)")
        low, high = self.alpha_bounds
        if high <= low:
            raise ValueError("alpha_bounds must satisfy low < high")
        if self.prior_anchor_weight < 0 or self.target_anchor_weight < 0:
            raise ValueError("anchor weights must be non-negative")

    @property
    def target_difficulty(self) -> float:
        """``beta_T`` implied by the initial target accuracy."""
        return float(difficulty_from_accuracy(self.target_initial_accuracy))


class LearningGainEstimator:
    """Per-worker learning-curve fitting and forward projection."""

    def __init__(
        self,
        prior_domains: Sequence[str],
        prior_domain_mean_accuracies: Sequence[float],
        config: Optional[LGEConfig] = None,
    ) -> None:
        if len(prior_domains) != len(prior_domain_mean_accuracies):
            raise ValueError("prior_domains and prior_domain_mean_accuracies must align")
        self._prior_domains = list(prior_domains)
        self._config = config or LGEConfig()
        self._prior_difficulties = np.atleast_1d(
            difficulty_from_accuracy(np.asarray(prior_domain_mean_accuracies, dtype=float))
        )
        self._fitted_alphas: Dict[str, float] = {}

    # ------------------------------------------------------------------ #
    @property
    def config(self) -> LGEConfig:
        return self._config

    @property
    def prior_difficulties(self) -> np.ndarray:
        """Per-prior-domain difficulties ``beta_d = ln(1/a_d - 1)``."""
        return self._prior_difficulties.copy()

    @property
    def target_difficulty(self) -> float:
        return self._config.target_difficulty

    @property
    def fitted_alphas(self) -> Dict[str, float]:
        """Most recent fitted learning rate per worker id."""
        return dict(self._fitted_alphas)

    # ------------------------------------------------------------------ #
    def _observations_for_worker(
        self,
        historical_accuracies: np.ndarray,
        historical_counts: np.ndarray,
        cpe_history: Sequence[float],
        cumulative_exposures: Sequence[float],
    ) -> List[AlphaFitObservation]:
        """Assemble the Eq. (11) residual terms for one worker."""
        observations: List[AlphaFitObservation] = []
        by_exposure = self._config.weight_anchors_by_exposure
        for domain_index in range(len(self._prior_domains)):
            accuracy = historical_accuracies[domain_index]
            if np.isnan(accuracy):
                continue  # Section IV-E: drop terms for missing prior domains.
            exposure = float(max(historical_counts[domain_index], 0.0))
            weight = self._config.prior_anchor_weight * (exposure if by_exposure else 1.0)
            observations.append(
                AlphaFitObservation(
                    exposure=exposure,
                    difficulty=float(self._prior_difficulties[domain_index]),
                    observed_accuracy=float(accuracy),
                    weight=weight,
                )
            )
        for stage_index, cpe_estimate in enumerate(cpe_history, start=1):
            exposure_before_stage = float(cumulative_exposures[stage_index - 1])
            exposure_after_stage = float(cumulative_exposures[stage_index])
            anchor_exposure = (
                0.5 * (exposure_before_stage + exposure_after_stage)
                if self._config.anchor_at_midpoint
                else exposure_before_stage
            )
            round_tasks = max(exposure_after_stage - exposure_before_stage, 0.0)
            weight = self._config.target_anchor_weight * (round_tasks if by_exposure else 1.0)
            observations.append(
                AlphaFitObservation(
                    exposure=anchor_exposure,
                    difficulty=self._config.target_difficulty,
                    observed_accuracy=float(np.clip(cpe_estimate, 0.0, 1.0)),
                    weight=weight,
                )
            )
        return observations

    def fit_worker(
        self,
        worker_id: str,
        historical_accuracies: np.ndarray,
        historical_counts: np.ndarray,
        cpe_history: Sequence[float],
        cumulative_exposures: Sequence[float],
    ) -> float:
        """Fit and store the learning rate ``alpha_i`` for one worker.

        Parameters
        ----------
        cpe_history:
            CPE estimates ``p_{1,i} .. p_{c,i}`` of the completed rounds.
        cumulative_exposures:
            ``K_0 .. K_c``: the cumulative learning tasks a surviving worker
            has been trained with before each round (``K_0 = 0``) and after
            the current one.  Must have one more entry than ``cpe_history``.
        """
        if len(cumulative_exposures) != len(cpe_history) + 1:
            raise ValueError("cumulative_exposures must have exactly one more entry than cpe_history")
        observations = self._observations_for_worker(
            np.asarray(historical_accuracies, dtype=float),
            np.asarray(historical_counts, dtype=float),
            cpe_history,
            cumulative_exposures,
        )
        alpha = fit_learning_rate(observations, bounds=self._config.alpha_bounds)
        self._fitted_alphas[worker_id] = alpha
        return alpha

    def predict_worker(self, worker_id: str, exposure: float) -> float:
        """Learning-curve prediction for a previously fitted worker."""
        if worker_id not in self._fitted_alphas:
            raise KeyError(f"worker {worker_id!r} has not been fitted")
        model = LearningCurveModel(
            learning_rate=self._fitted_alphas[worker_id],
            difficulty=self._config.target_difficulty,
        )
        return float(model.probability(exposure))

    # ------------------------------------------------------------------ #
    def estimate(
        self,
        worker_ids: Sequence[str],
        historical_accuracies: np.ndarray,
        historical_counts: np.ndarray,
        cpe_histories: Mapping[str, Sequence[float]],
        cumulative_exposures: Sequence[float],
        prediction_exposure: Optional[float] = None,
    ) -> np.ndarray:
        """Algorithm 2 over all remaining workers.

        Parameters
        ----------
        worker_ids:
            The remaining workers ``W_c`` (row order of the matrices).
        historical_accuracies, historical_counts:
            ``(|W_c| x D)`` matrices of prior-domain accuracies/task counts.
        cpe_histories:
            Per worker, the CPE estimates of every completed round.
        cumulative_exposures:
            ``K_0 .. K_c`` shared by all surviving workers.
        prediction_exposure:
            Exposure at which to report the estimate; defaults to the last
            entry of ``cumulative_exposures`` (i.e. ``K_c``, Algorithm 2
            line 15).

        Returns
        -------
        numpy.ndarray
            The LGE-adjusted accuracy estimate ``p_hat_{c,i}`` per worker.
        """
        accuracies = np.atleast_2d(np.asarray(historical_accuracies, dtype=float))
        counts = np.atleast_2d(np.asarray(historical_counts, dtype=float))
        if accuracies.shape[0] != len(worker_ids) or counts.shape[0] != len(worker_ids):
            raise ValueError("matrix rows must align with worker_ids")
        exposure = (
            float(prediction_exposure)
            if prediction_exposure is not None
            else float(cumulative_exposures[-1])
        )
        estimates = np.zeros(len(worker_ids))
        for row, worker_id in enumerate(worker_ids):
            history = list(cpe_histories.get(worker_id, []))
            usable_exposures = list(cumulative_exposures[: len(history) + 1])
            self.fit_worker(worker_id, accuracies[row], counts[row], history, usable_exposures)
            estimates[row] = self.predict_worker(worker_id, exposure)
        return estimates


__all__ = ["LGEConfig", "LearningGainEstimator"]
