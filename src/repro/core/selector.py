"""Common selector interface.

Every worker-selection strategy — the paper's method, its ablations and all
baselines — implements :class:`BaseWorkerSelector`: given an
:class:`~repro.platform.session.AnnotationEnvironment` (which hides latent
worker accuracies and enforces the budget) it returns a
:class:`SelectionResult` naming the chosen workers.  The experiment harness
then evaluates every result identically, so methods can only differ in *whom*
they pick, never in how they are scored.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Tuple

from repro.platform.session import AnnotationEnvironment


@dataclass
class SelectionResult:
    """Outcome of one selection run.

    Attributes
    ----------
    method:
        Name of the selector that produced the result.
    selected_worker_ids:
        The chosen workers ``W_T`` (length ``k`` unless the pool is smaller).
    estimated_accuracies:
        The selector's final internal estimate per selected worker, when the
        method produces one (used for diagnostics, never for evaluation).
    spent_budget:
        Learning-task assignments consumed.
    n_rounds:
        Number of assignment rounds the selector ran.
    diagnostics:
        Free-form per-method extras (e.g. per-round survivor lists, fitted
        correlations) used by the report generators.
    """

    method: str
    selected_worker_ids: List[str]
    estimated_accuracies: Dict[str, float] = field(default_factory=dict)
    spent_budget: int = 0
    n_rounds: int = 0
    diagnostics: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.selected_worker_ids:
            raise ValueError("a selection result must contain at least one worker")
        if len(set(self.selected_worker_ids)) != len(self.selected_worker_ids):
            raise ValueError("selected_worker_ids must not contain duplicates")


class BaseWorkerSelector(abc.ABC):
    """Abstract base class for every worker-selection strategy."""

    #: Human-readable method name used in result tables.
    name: str = "base"

    @abc.abstractmethod
    def select(self, environment: AnnotationEnvironment, k: Optional[int] = None) -> SelectionResult:
        """Run the selection protocol against ``environment`` and pick ``k`` workers.

        Implementations must respect the environment's budget (assignments
        beyond ``B`` raise) and must not access any latent worker state.
        """

    def stepwise(
        self, environment: AnnotationEnvironment, k: Optional[int] = None
    ) -> Generator[object, None, SelectionResult]:
        """Generator protocol: yield one event per assignment round, return the result.

        Round-based selectors override this to yield a per-round record (a
        :class:`~repro.core.pipeline.RoundDiagnostics`) after every
        elimination decision, which lets callers — notably
        :class:`repro.campaign.Campaign` — stream progress and checkpoint
        between rounds.  The generator's *return value* (``StopIteration
        .value``) is the final :class:`SelectionResult`.

        The default implementation runs :meth:`select` in one shot and
        yields nothing, so every selector is stepwise-drivable even when it
        has no internal round structure.
        """
        return self.select(environment, k)
        yield  # pragma: no cover - unreachable; makes this a generator function

    # ------------------------------------------------------------------ #
    def resolve_k(self, environment: AnnotationEnvironment, k: Optional[int]) -> int:
        """The selection size: explicit ``k`` or the environment schedule's default."""
        resolved = k if k is not None else environment.schedule.k
        if resolved <= 0:
            raise ValueError("k must be positive")
        return min(resolved, len(environment.worker_ids))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


def top_k_by_score(scores: Dict[str, float], k: int) -> List[str]:
    """Workers with the ``k`` highest scores (stable for ties by worker id)."""
    if k <= 0:
        raise ValueError("k must be positive")
    ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
    return [worker_id for worker_id, _ in ranked[:k]]


def run_stepwise(
    generator: Generator[object, None, SelectionResult],
) -> Tuple[List[object], SelectionResult]:
    """Drive a :meth:`BaseWorkerSelector.stepwise` generator to completion.

    Returns the list of yielded per-round events and the final
    :class:`SelectionResult` carried by the generator's return value.
    """
    events: List[object] = []
    while True:
        try:
            events.append(next(generator))
        except StopIteration as stop:
            result = stop.value
            if not isinstance(result, SelectionResult):
                raise TypeError("a stepwise selector generator must return a SelectionResult")
            return events, result


__all__ = ["BaseWorkerSelector", "SelectionResult", "top_k_by_score", "run_stepwise"]
