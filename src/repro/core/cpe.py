"""Cross-domain-aware Performance Estimation (CPE, Algorithm 1).

The estimator maintains a ``(D+1)``-dimensional multivariate normal over
worker accuracies — ``D`` prior domains plus the target domain — and, after
every elimination round, updates its parameters by gradient ascent on the
marginal log-likelihood of the observed learning-task answers (Eq. 5-7):

    log L = sum_i log  integral_0^1  h^{C_i} (1 - h)^{X_i}
                                      N(h; mu_bar_i, sigma_bar^2)  dh

where ``(C_i, X_i)`` are worker ``i``'s correct/wrong counts in the round
and ``(mu_bar_i, sigma_bar^2)`` the conditional distribution of the target
accuracy given the worker's prior-domain profile.  Predictions (Eq. 8) are
the conditional expectation of the target accuracy under the fitted model,
restricted to the valid accuracy range ``(0, 1)``.

Implementation notes (DESIGN.md §6):

* the integral is evaluated with Gauss--Legendre quadrature in log space so
  that late rounds with hundreds of tasks per worker do not underflow;
* ``Sigma`` is parameterised by standard deviations and correlations, and
  the gradient is taken by central finite differences over that
  parameterisation (the paper uses backprop; the update rule is identical);
* workers with missing prior domains are grouped by their observed-domain
  pattern and handled with the corresponding marginal model (Section IV-E);
* the gradient loop runs on a vectorised engine: a :class:`RoundData` object
  caches everything in Eq. (5) that does not depend on the parameters
  (pattern grouping, the ``(workers x nodes)`` binomial log-table, the
  quadrature log-tables) once per :meth:`update`, and all ``2P``
  finite-difference perturbations are evaluated as one stacked
  ``(2P x workers x nodes)`` computation.  The original one-model-at-a-time
  path is kept behind ``CPEConfig(likelihood_engine="reference")`` for A/B
  validation; both engines agree to ~1e-10 and yield identical selections.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.special import logsumexp

from repro.stats.mvn import MultivariateNormalModel
from repro.stats.optimize import (
    finite_difference_gradient,
    finite_difference_gradient_batch,
    gradient_descent,
)
from repro.stats.quadrature import GaussLegendreRule, unit_interval_rule
from repro.stats.rng import SeedLike, as_generator
from repro.stats.truncated import truncated_normal_mean

_LOG_EPS = 1e-300

_LIKELIHOOD_ENGINES = ("vectorized", "reference")


@dataclass(frozen=True)
class RoundData:
    """Parameter-independent precomputation of one round's Eq. (5) likelihood.

    Everything the gradient loop re-uses across its ~``2 P G`` objective
    evaluations but that depends only on the *data* of the round — not on
    the model parameters — is computed once here:

    Attributes
    ----------
    accuracies, correct, wrong:
        The validated inputs of the round (``(W, D)`` historical profiles
        and per-worker correct/wrong counts).
    patterns:
        One ``(observed_domains, rows, observed_values)`` triple per
        missing-domain pattern: the observed prior-domain indices, the
        worker rows sharing them, and the corresponding ``(rows, m)``
        accuracy submatrix (Section IV-E grouping, done once instead of
        once per objective call).
    binomial_term:
        ``(W, nodes)`` table ``C_i log h_j + X_i log(1 - h_j) + log w_j``
        — the full parameter-independent part of the log-integrand,
        quadrature log-weights folded in.
    rule:
        The shared Gauss--Legendre rule (its log tables are cached on the
        rule itself).
    """

    accuracies: np.ndarray
    correct: np.ndarray
    wrong: np.ndarray
    patterns: Tuple[Tuple[Tuple[int, ...], np.ndarray, np.ndarray], ...]
    binomial_term: np.ndarray
    rule: GaussLegendreRule

    @property
    def n_workers(self) -> int:
        return self.accuracies.shape[0]


@dataclass
class CPEConfig:
    """Configuration of the CPE estimator.

    Attributes
    ----------
    initial_target_mean:
        Initial mean accuracy assumed for the target domain (the paper's
        ``a_T``; 0.5 for Yes/No tasks).
    initial_target_std:
        Optional explicit initial standard deviation for the target domain;
        when ``None`` the mean of the prior-domain standard deviations is
        used (Section V-C).
    learning_rate_mean, learning_rate_cov:
        Gradient-descent step sizes for the mean vector and the covariance
        parameters (standard deviations + correlations).  The paper reports
        ``r1 = 1e-7`` / ``r2 = 1e-4`` for its autodiff parameterisation;
        the finite-difference parameterisation used here has differently
        scaled gradients, so the defaults are re-calibrated while keeping
        ``r1 << r2`` (the mean moves much more slowly than the covariance).
    n_epochs:
        Number of gradient steps per round (the paper's ``G = 50``).
    n_quadrature_nodes:
        Gauss--Legendre nodes for the likelihood integral.
    correlation_range:
        Range of the uniform-random correlation initialisation.
    update_prior_moments:
        When ``False`` the prior-domain means/standard deviations are frozen
        at their empirical values and only the target moments and the
        correlations are learned.
    min_conditional_std:
        Floor on the conditional standard deviation of the target accuracy
        given a profile.  The randomly initialised correlations can imply an
        (unwarranted) near-deterministic cross-domain prediction; the floor
        encodes that cross-domain extrapolation is never trusted beyond this
        resolution, so observed counts always retain influence on the
        posterior.
    posterior:
        ``"counts"`` (default) predicts the posterior mean of the target
        accuracy given *both* the historical profile and the current round's
        correct/wrong counts — the full Bayesian read of the Eq. (5) model,
        in which the cross-domain prior smooths the raw observations.
        ``"prior"`` reproduces the literal form of Eq. (8) (conditional
        expectation given the profile only) and is kept for ablations.
    likelihood_engine:
        ``"vectorized"`` (default) runs the gradient update on the stacked
        :class:`RoundData` engine — one batched evaluation per epoch instead
        of ``2P`` independent objective calls.  ``"reference"`` keeps the
        original scalar path; it computes the same log-likelihood to ~1e-10
        and is retained for A/B validation and the hot-path benchmark.
    """

    initial_target_mean: float = 0.5
    initial_target_std: Optional[float] = None
    learning_rate_mean: float = 1e-3
    learning_rate_cov: float = 1e-2
    n_epochs: int = 50
    n_quadrature_nodes: int = 64
    correlation_range: Tuple[float, float] = (0.0, 1.0)
    update_prior_moments: bool = True
    posterior: str = "counts"
    min_conditional_std: float = 0.08
    likelihood_engine: str = "vectorized"

    def __post_init__(self) -> None:
        if not 0.0 < self.initial_target_mean < 1.0:
            raise ValueError("initial_target_mean must lie in (0, 1)")
        if self.min_conditional_std < 0:
            raise ValueError("min_conditional_std must be non-negative")
        if self.initial_target_std is not None and self.initial_target_std <= 0:
            raise ValueError("initial_target_std must be positive")
        if self.learning_rate_mean < 0 or self.learning_rate_cov < 0:
            raise ValueError("learning rates must be non-negative")
        if self.n_epochs < 0:
            raise ValueError("n_epochs must be non-negative")
        if self.n_quadrature_nodes < 2:
            raise ValueError("n_quadrature_nodes must be at least 2")
        if self.posterior not in ("prior", "counts"):
            raise ValueError("posterior must be 'prior' or 'counts'")
        if self.likelihood_engine not in _LIKELIHOOD_ENGINES:
            raise ValueError(f"likelihood_engine must be one of {_LIKELIHOOD_ENGINES}")


class CrossDomainPerformanceEstimator:
    """Online maximum-likelihood estimator of the cross-domain accuracy model."""

    def __init__(
        self,
        prior_domains: Sequence[str],
        config: Optional[CPEConfig] = None,
        rng: SeedLike = None,
    ) -> None:
        if not prior_domains:
            raise ValueError("at least one prior domain is required")
        self._prior_domains = list(prior_domains)
        self._config = config or CPEConfig()
        self._rng = as_generator(rng)
        self._rule = unit_interval_rule(self._config.n_quadrature_nodes)
        self._model: Optional[MultivariateNormalModel] = None

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def config(self) -> CPEConfig:
        return self._config

    @property
    def prior_domains(self) -> List[str]:
        return list(self._prior_domains)

    @property
    def n_prior_domains(self) -> int:
        return len(self._prior_domains)

    @property
    def target_index(self) -> int:
        """Index of the target domain within the joint model (always last)."""
        return self.n_prior_domains

    @property
    def model(self) -> MultivariateNormalModel:
        """The current multivariate-normal model (raises before initialisation)."""
        if self._model is None:
            raise RuntimeError("CPE estimator is not initialised; call initialize() first")
        return self._model

    @property
    def is_initialized(self) -> bool:
        return self._model is not None

    def estimated_correlations(self) -> Dict[str, float]:
        """Fitted correlation between each prior domain and the target domain."""
        model = self.model
        return {
            domain: float(model.rho[index, self.target_index])
            for index, domain in enumerate(self._prior_domains)
        }

    # ------------------------------------------------------------------ #
    # Initialisation (Section V-C)
    # ------------------------------------------------------------------ #
    def initialize(self, historical_accuracies: np.ndarray) -> MultivariateNormalModel:
        """Initialise ``N(mu, Sigma)`` from the workers' historical profiles.

        Prior-domain means/standard deviations come from the observed
        columns; the target mean is ``initial_target_mean``; the target
        standard deviation is the average of the prior ones; correlations
        are drawn uniformly from ``correlation_range``.
        """
        accuracies = np.atleast_2d(np.asarray(historical_accuracies, dtype=float))
        if accuracies.shape[1] != self.n_prior_domains:
            raise ValueError(
                f"expected {self.n_prior_domains} prior-domain columns, got {accuracies.shape[1]}"
            )
        prior_means = np.zeros(self.n_prior_domains)
        prior_stds = np.zeros(self.n_prior_domains)
        for column in range(self.n_prior_domains):
            values = accuracies[:, column]
            values = values[~np.isnan(values)]
            if values.size == 0:
                prior_means[column] = 0.5
                prior_stds[column] = 0.2
            else:
                prior_means[column] = float(values.mean())
                prior_stds[column] = float(max(values.std(), 0.05))

        target_std = (
            self._config.initial_target_std
            if self._config.initial_target_std is not None
            else float(prior_stds.mean())
        )
        dimension = self.n_prior_domains + 1
        low, high = self._config.correlation_range
        rho = np.eye(dimension)
        upper = np.triu_indices(dimension, k=1)
        rho[upper] = self._rng.uniform(low, high, size=len(upper[0]))
        rho = rho + rho.T - np.eye(dimension)

        self._model = MultivariateNormalModel.from_moments(
            means=np.concatenate([prior_means, [self._config.initial_target_mean]]),
            stds=np.concatenate([prior_stds, [target_std]]),
            correlations=rho,
        )
        return self._model

    # ------------------------------------------------------------------ #
    # Likelihood (Eq. 5)
    # ------------------------------------------------------------------ #
    def _group_by_pattern(self, accuracies: np.ndarray) -> Dict[Tuple[int, ...], np.ndarray]:
        """Group worker rows by which prior domains they have history on."""
        groups: Dict[Tuple[int, ...], List[int]] = {}
        for row_index in range(accuracies.shape[0]):
            observed = tuple(np.flatnonzero(~np.isnan(accuracies[row_index])).tolist())
            groups.setdefault(observed, []).append(row_index)
        return {pattern: np.asarray(rows, dtype=int) for pattern, rows in groups.items()}

    def _conditional_parameters(
        self,
        model: MultivariateNormalModel,
        accuracies: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-worker conditional mean and variance of the target accuracy."""
        n_workers = accuracies.shape[0]
        cond_means = np.zeros(n_workers)
        cond_vars = np.zeros(n_workers)
        for pattern, rows in self._group_by_pattern(accuracies).items():
            if pattern:
                means, variance = model.conditional_batch(
                    accuracies[np.ix_(rows, np.asarray(pattern))],
                    observed_indices=list(pattern),
                    target_index=self.target_index,
                )
            else:
                means = np.full(rows.size, model.mean[self.target_index])
                variance = float(model.covariance[self.target_index, self.target_index])
            cond_means[rows] = means
            cond_vars[rows] = variance
        cond_vars = np.maximum(cond_vars, self._config.min_conditional_std**2)
        return cond_means, cond_vars

    def log_likelihood(
        self,
        model: MultivariateNormalModel,
        historical_accuracies: np.ndarray,
        correct_counts: np.ndarray,
        wrong_counts: np.ndarray,
    ) -> float:
        """The Eq. (5) marginal log-likelihood of one round's counts."""
        accuracies = np.atleast_2d(np.asarray(historical_accuracies, dtype=float))
        correct = np.asarray(correct_counts, dtype=float)
        wrong = np.asarray(wrong_counts, dtype=float)
        if accuracies.shape[0] != correct.shape[0] or correct.shape != wrong.shape:
            raise ValueError("historical_accuracies, correct_counts and wrong_counts must align")
        if np.any(correct < 0) or np.any(wrong < 0):
            raise ValueError("counts must be non-negative")

        cond_means, cond_vars = self._conditional_parameters(model, accuracies)
        nodes = self._rule.nodes  # shape (n_nodes,)
        log_weights = np.log(self._rule.weights)

        # (workers x nodes) log-integrand, assembled in log space.
        log_h = np.log(np.clip(nodes, _LOG_EPS, None))
        log_1mh = np.log(np.clip(1.0 - nodes, _LOG_EPS, None))
        binomial_part = correct[:, None] * log_h[None, :] + wrong[:, None] * log_1mh[None, :]
        std = np.sqrt(cond_vars)[:, None]
        gaussian_part = (
            -0.5 * ((nodes[None, :] - cond_means[:, None]) / std) ** 2
            - np.log(std)
            - 0.5 * np.log(2.0 * np.pi)
        )
        log_integrals = logsumexp(binomial_part + gaussian_part + log_weights[None, :], axis=1)
        return float(np.sum(log_integrals))

    # ------------------------------------------------------------------ #
    # Vectorized likelihood engine
    # ------------------------------------------------------------------ #
    def prepare_round(
        self,
        historical_accuracies: np.ndarray,
        correct_counts: np.ndarray,
        wrong_counts: np.ndarray,
    ) -> RoundData:
        """Validate one round's data and precompute its likelihood invariants.

        The returned :class:`RoundData` makes every subsequent likelihood
        evaluation on this round's data a pure parameter computation: the
        worker grouping, the binomial log-table and the quadrature
        log-tables are never rebuilt.
        """
        accuracies = np.atleast_2d(np.asarray(historical_accuracies, dtype=float))
        correct = np.asarray(correct_counts, dtype=float)
        wrong = np.asarray(wrong_counts, dtype=float)
        if accuracies.shape[0] != correct.shape[0] or correct.shape != wrong.shape:
            raise ValueError("historical_accuracies, correct_counts and wrong_counts must align")
        if np.any(correct < 0) or np.any(wrong < 0):
            raise ValueError("counts must be non-negative")

        rule = self._rule
        binomial_term = (
            correct[:, None] * rule.log_nodes[None, :]
            + wrong[:, None] * rule.log_one_minus_nodes[None, :]
            + rule.log_weights[None, :]
        )
        patterns = tuple(
            (pattern, rows, accuracies[np.ix_(rows, np.asarray(pattern, dtype=int))])
            for pattern, rows in self._group_by_pattern(accuracies).items()
        )
        return RoundData(
            accuracies=accuracies,
            correct=correct,
            wrong=wrong,
            patterns=patterns,
            binomial_term=binomial_term,
            rule=rule,
        )

    def _stacked_conditional_parameters(
        self,
        means: np.ndarray,
        covariances: np.ndarray,
        data: RoundData,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-worker conditional moments under a stack of parameter settings.

        Returns ``(B, W)`` conditional means and variances for ``B`` models
        at once, using the pattern grouping cached in ``data``.
        """
        n_batch = means.shape[0]
        cond_means = np.zeros((n_batch, data.n_workers))
        cond_vars = np.zeros((n_batch, data.n_workers))
        for pattern, rows, observed in data.patterns:
            pattern_means, pattern_vars = MultivariateNormalModel.conditional_batch_stacked(
                means,
                covariances,
                observed,
                observed_indices=list(pattern),
                target_index=self.target_index,
            )
            cond_means[:, rows] = pattern_means
            cond_vars[:, rows] = pattern_vars[:, None]
        cond_vars = np.maximum(cond_vars, self._config.min_conditional_std**2)
        return cond_means, cond_vars

    def _stacked_log_likelihood(
        self,
        means: np.ndarray,
        covariances: np.ndarray,
        data: RoundData,
    ) -> np.ndarray:
        """Eq. (5) log-likelihood of ``data`` under ``B`` stacked models.

        This is the hot path of :meth:`update`: the whole finite-difference
        perturbation stack is evaluated as a single
        ``(B x workers x nodes)`` log-space computation on top of the
        cached ``data.binomial_term``.  The log-sum-exp over the node axis
        is done in place on that one array — at ``B = 2P`` perturbations the
        table is the dominant allocation, and avoiding scratch copies of it
        is worth ~2x on the full update.
        """
        cond_means, cond_vars = self._stacked_conditional_parameters(means, covariances, data)
        std = np.sqrt(cond_vars)  # (B, W)
        # log-integrand, built in place: -(h - mu)^2 / (2 s^2) - log s
        #                                - log(2 pi)/2 + binomial_term
        table = data.rule.nodes[None, None, :] - cond_means[..., None]
        table /= std[..., None]
        np.square(table, out=table)
        table *= -0.5
        table -= (np.log(std) + 0.5 * np.log(2.0 * np.pi))[..., None]
        table += data.binomial_term[None, :, :]
        # Streamlined logsumexp over the node axis (the integrand is finite:
        # interior Gauss--Legendre nodes and floored conditional variances).
        shift = np.max(table, axis=-1, keepdims=True)
        table -= shift
        np.exp(table, out=table)
        log_integrals = np.log(np.sum(table, axis=-1))
        log_integrals += shift[..., 0]
        return np.sum(log_integrals, axis=-1)

    def log_likelihood_batch(
        self,
        models: Sequence[MultivariateNormalModel],
        data: RoundData,
    ) -> np.ndarray:
        """Eq. (5) log-likelihood of ``data`` under each model, in one pass."""
        means, covariances = MultivariateNormalModel.stack_moments(list(models))
        return self._stacked_log_likelihood(means, covariances, data)

    def log_likelihood_cached(self, model: MultivariateNormalModel, data: RoundData) -> float:
        """Single-model evaluation on a prepared round (fast path of Eq. 5)."""
        return float(self.log_likelihood_batch([model], data)[0])

    # ------------------------------------------------------------------ #
    # Update (Algorithm 1, step 4 / Eq. 6-7)
    # ------------------------------------------------------------------ #
    def update(
        self,
        historical_accuracies: np.ndarray,
        correct_counts: np.ndarray,
        wrong_counts: np.ndarray,
    ) -> MultivariateNormalModel:
        """One round of gradient-based maximum-likelihood updating."""
        if self._model is None:
            self.initialize(historical_accuracies)
        model = self.model
        dimension = model.dimension
        mean_slice, sigma_slice, rho_slice = MultivariateNormalModel.parameter_slices(dimension)

        initial = model.pack_parameters()
        rates = np.zeros_like(initial)
        rates[mean_slice] = self._config.learning_rate_mean
        rates[sigma_slice] = self._config.learning_rate_cov
        rates[rho_slice] = self._config.learning_rate_cov

        mask = np.ones(initial.shape[0], dtype=bool)
        if not self._config.update_prior_moments:
            mask[mean_slice] = False
            mask[sigma_slice] = False
            # The target-domain mean/std (last entry of each block) stays trainable.
            mask[mean_slice.stop - 1] = True
            mask[sigma_slice.stop - 1] = True

        accuracies = np.atleast_2d(np.asarray(historical_accuracies, dtype=float))
        correct = np.asarray(correct_counts, dtype=float)
        wrong = np.asarray(wrong_counts, dtype=float)
        n_workers = max(accuracies.shape[0], 1)

        if self._config.likelihood_engine == "vectorized":
            data = self.prepare_round(accuracies, correct, wrong)

            def objective(theta: np.ndarray) -> float:
                # Per-worker normalisation keeps the gradient scale comparable
                # across pool sizes, so one learning-rate setting works for
                # the 27-worker RW-1 and the 160-worker S-4 alike.
                candidate = MultivariateNormalModel.unpack_parameters(theta, dimension)
                return -self.log_likelihood_cached(candidate, data) / n_workers

            def objective_batch(thetas: np.ndarray) -> np.ndarray:
                means, covariances = MultivariateNormalModel.unpack_moment_stack(thetas, dimension)
                return -self._stacked_log_likelihood(means, covariances, data) / n_workers

            def raw_gradient(theta: np.ndarray) -> np.ndarray:
                return finite_difference_gradient_batch(
                    objective_batch, theta, step=1e-5, mask=mask
                )

        else:

            def objective(theta: np.ndarray) -> float:
                candidate = MultivariateNormalModel.unpack_parameters(theta, dimension)
                return -self.log_likelihood(candidate, accuracies, correct, wrong) / n_workers

            def raw_gradient(theta: np.ndarray) -> np.ndarray:
                return finite_difference_gradient(objective, theta, step=1e-5, mask=mask)

        def project(theta: np.ndarray) -> np.ndarray:
            # Accuracy means live in [0, 1] and accuracy standard deviations
            # cannot exceed 0.5; clamping here keeps every gradient step
            # inside the region where the model is meaningful.
            clipped = np.asarray(theta, dtype=float).copy()
            clipped[mean_slice] = np.clip(clipped[mean_slice], 0.01, 0.99)
            clipped[sigma_slice] = np.clip(clipped[sigma_slice], 0.02, 0.6)
            return MultivariateNormalModel.unpack_parameters(clipped, dimension).pack_parameters()

        def normalised_gradient(theta: np.ndarray) -> np.ndarray:
            # The likelihood surface is steep along the correlation axes when
            # the conditional prior is tight; normalising the gradient turns
            # the learning rates into parameter-scale step sizes and lets the
            # backtracking line search keep every update monotone.
            raw = raw_gradient(theta)
            norm = float(np.linalg.norm(raw))
            return raw / norm if norm > 1.0 else raw

        result = gradient_descent(
            objective=objective,
            initial=initial,
            learning_rates=rates,
            n_epochs=self._config.n_epochs,
            gradient=normalised_gradient,
            project=project,
            mask=mask,
            max_backtracks=12,
        )
        self._model = MultivariateNormalModel.unpack_parameters(result.parameters, dimension)
        return self._model

    # ------------------------------------------------------------------ #
    # Prediction (Eq. 8)
    # ------------------------------------------------------------------ #
    def predict(
        self,
        historical_accuracies: np.ndarray,
        correct_counts: Optional[np.ndarray] = None,
        wrong_counts: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Predicted target-domain accuracy ``p_{c,i}`` per worker.

        With ``posterior="prior"`` (the paper's Eq. 8) only the historical
        profile is used; with ``posterior="counts"`` the supplied counts
        additionally reweight the conditional density.
        """
        accuracies = np.atleast_2d(np.asarray(historical_accuracies, dtype=float))
        model = self.model
        cond_means, cond_vars = self._conditional_parameters(model, accuracies)

        if self._config.posterior == "prior" or correct_counts is None or wrong_counts is None:
            return np.array(
                [
                    truncated_normal_mean(float(mu), float(np.sqrt(var)), 0.0, 1.0)
                    for mu, var in zip(cond_means, cond_vars)
                ]
            )

        correct = np.asarray(correct_counts, dtype=float)
        wrong = np.asarray(wrong_counts, dtype=float)
        nodes = self._rule.nodes
        log_weights = self._rule.log_weights
        log_h = self._rule.log_nodes
        log_1mh = self._rule.log_one_minus_nodes
        std = np.sqrt(cond_vars)[:, None]
        log_density = (
            correct[:, None] * log_h[None, :]
            + wrong[:, None] * log_1mh[None, :]
            - 0.5 * ((nodes[None, :] - cond_means[:, None]) / std) ** 2
            - np.log(std)
        )
        log_numerator = logsumexp(log_density + log_weights[None, :] + log_h[None, :], axis=1)
        log_denominator = logsumexp(log_density + log_weights[None, :], axis=1)
        return np.exp(log_numerator - log_denominator)


__all__ = ["CPEConfig", "CrossDomainPerformanceEstimator", "RoundData"]
