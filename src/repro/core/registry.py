"""Selector registry: construct any worker-selection strategy by name.

Mirrors :mod:`repro.datasets.registry` for the *method* axis of the paper's
evaluation grid.  Every selector — the proposed pipeline, its ablations and
all baselines — registers a keyword-configurable factory under a canonical
name (plus optional aliases), so new strategies plug in without touching
core configuration code:

>>> from repro.core.registry import make_selector, register_selector
>>> selector = make_selector("ours", seed=3, target_initial_accuracy=0.6)
>>> selector.name
'ours'

Registering a custom strategy is one decorator:

>>> @register_selector("always-first")
... def _build(seed=None):
...     ...

Factories take keyword configuration only; ``seed`` is the conventional
name for the random seed every factory should accept.  Lookup is
case-insensitive and unknown names raise a :class:`KeyError` that lists
everything registered.
"""

from __future__ import annotations

import inspect
from typing import Callable, Dict, Iterable, List, Optional

from repro.core.selector import BaseWorkerSelector

#: A selector factory: keyword configuration in, ready-to-run selector out.
SelectorFactory = Callable[..., BaseWorkerSelector]


class SelectorRegistry:
    """A name -> factory mapping with aliases and friendly errors."""

    def __init__(self) -> None:
        self._factories: Dict[str, SelectorFactory] = {}
        self._aliases: Dict[str, str] = {}

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def register(
        self,
        name: str,
        factory: Optional[SelectorFactory] = None,
        *,
        aliases: Iterable[str] = (),
        replace: bool = False,
    ):
        """Register ``factory`` under ``name`` (usable as a decorator).

        Parameters
        ----------
        name:
            Canonical selector name (stored lowercased).
        factory:
            The factory callable; when omitted the method returns a
            decorator, enabling ``@register_selector("ours")``.
        aliases:
            Additional lookup names resolving to the same factory.
        replace:
            Allow overwriting an existing registration (default: raise).
        """

        def _register(target: SelectorFactory) -> SelectorFactory:
            canonical = self._canonical(name)
            if not replace:
                if canonical in self._factories:
                    raise ValueError(
                        f"selector {canonical!r} is already registered (pass replace=True to override)"
                    )
                if canonical in self._aliases:
                    raise ValueError(
                        f"{canonical!r} is already an alias of selector {self._aliases[canonical]!r} "
                        f"(pass replace=True to claim the name)"
                    )
            # A (replacing) canonical registration wins over a stale alias;
            # otherwise the alias would keep shadowing the new factory.
            self._aliases.pop(canonical, None)
            self._factories[canonical] = target
            for alias in aliases:
                alias_key = self._canonical(alias)
                if alias_key == canonical:
                    continue
                if alias_key in self._factories:
                    # Aliases resolve before canonical names, so this would
                    # silently hijack a registered selector — never allowed.
                    raise ValueError(
                        f"alias {alias_key!r} collides with the registered selector {alias_key!r}; "
                        f"re-register that selector instead"
                    )
                existing = self._aliases.get(alias_key)
                if not replace and existing is not None and existing != canonical:
                    raise ValueError(f"alias {alias_key!r} already points at selector {existing!r}")
                self._aliases[alias_key] = canonical
            return target

        if factory is not None:
            return _register(factory)
        return _register

    def unregister(self, name: str) -> None:
        """Remove a registration and every alias pointing at it."""
        canonical = self.resolve(name)
        del self._factories[canonical]
        for alias in [a for a, target in self._aliases.items() if target == canonical]:
            del self._aliases[alias]

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    @staticmethod
    def _canonical(name: str) -> str:
        return name.strip().lower()

    def resolve(self, name: str) -> str:
        """Canonical name for ``name`` (follows aliases); KeyError if unknown."""
        key = self._canonical(name)
        key = self._aliases.get(key, key)
        if key not in self._factories:
            raise KeyError(f"unknown selector {name!r}; registered selectors: {', '.join(self.names())}")
        return key

    def __contains__(self, name: str) -> bool:
        key = self._canonical(name)
        return self._aliases.get(key, key) in self._factories

    def names(self) -> List[str]:
        """Canonical names of every registered selector, sorted."""
        return sorted(self._factories)

    def describe(self, name: str) -> str:
        """One-line human-readable description: name, signature, docstring."""
        canonical = self.resolve(name)
        factory = self._factories[canonical]
        doc = (inspect.getdoc(factory) or "").split("\n", 1)[0]
        return f"{canonical}{inspect.signature(factory)} — {doc}" if doc else f"{canonical}{inspect.signature(factory)}"

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def create(
        self,
        name: str,
        *,
        ignore_unsupported: bool = False,
        **config: object,
    ) -> BaseWorkerSelector:
        """Build the selector registered under ``name`` with keyword config.

        Parameters
        ----------
        name:
            Registered selector name or alias (case-insensitive).
        ignore_unsupported:
            When ``True``, silently drop configuration keys the factory does
            not accept.  Used by harness code that broadcasts shared knobs
            (e.g. ``target_initial_accuracy``) over heterogeneous rosters;
            direct API users should keep the strict default so typos fail.
        config:
            Keyword configuration forwarded to the factory (``seed=...`` by
            convention selects the random stream).
        """
        canonical = self.resolve(name)
        factory = self._factories[canonical]
        if ignore_unsupported:
            parameters = inspect.signature(factory).parameters
            takes_kwargs = any(p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values())
            if not takes_kwargs:
                config = {key: value for key, value in config.items() if key in parameters}
        try:
            return factory(**config)
        except TypeError as exc:
            raise TypeError(
                f"invalid configuration for selector {canonical!r}: {exc} "
                f"(signature: {canonical}{inspect.signature(factory)})"
            ) from exc


#: The process-wide registry used by :func:`make_selector` and the harness.
GLOBAL_SELECTOR_REGISTRY = SelectorRegistry()

_BUILTINS_LOADED = False


def _load_builtin_selectors() -> None:
    """Import the modules whose import side effect registers the built-ins."""
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    import repro.baselines  # noqa: F401  (registers us, me, li, me-cpe, ours, random, oracle)
    import repro.core.pipeline  # noqa: F401  (registers cross-domain)

    _BUILTINS_LOADED = True


def register_selector(
    name: str,
    factory: Optional[SelectorFactory] = None,
    *,
    aliases: Iterable[str] = (),
    replace: bool = False,
):
    """Register a selector factory in the global registry (decorator-friendly)."""
    return GLOBAL_SELECTOR_REGISTRY.register(name, factory, aliases=aliases, replace=replace)


def make_selector(name: str, *, ignore_unsupported: bool = False, **config: object) -> BaseWorkerSelector:
    """Construct a registered selector by name with keyword configuration.

    >>> make_selector("me", seed=7).name
    'me'
    """
    _load_builtin_selectors()
    return GLOBAL_SELECTOR_REGISTRY.create(name, ignore_unsupported=ignore_unsupported, **config)


def selector_names() -> List[str]:
    """Canonical names of every registered selector."""
    _load_builtin_selectors()
    return GLOBAL_SELECTOR_REGISTRY.names()


def selector_exists(name: str) -> bool:
    """Whether ``name`` (or an alias of it) is registered."""
    _load_builtin_selectors()
    return name in GLOBAL_SELECTOR_REGISTRY


def resolve_selector_name(name: str) -> str:
    """Canonical registered name for ``name`` (follows aliases, fixes case)."""
    _load_builtin_selectors()
    return GLOBAL_SELECTOR_REGISTRY.resolve(name)


def describe_selector(name: str) -> str:
    """Human-readable signature line for a registered selector."""
    _load_builtin_selectors()
    return GLOBAL_SELECTOR_REGISTRY.describe(name)


__all__ = [
    "SelectorFactory",
    "SelectorRegistry",
    "GLOBAL_SELECTOR_REGISTRY",
    "register_selector",
    "make_selector",
    "selector_names",
    "selector_exists",
    "resolve_selector_name",
    "describe_selector",
]
