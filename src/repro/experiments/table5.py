"""Table V: main results and the ablation study.

For every dataset, all five methods (US, ME, Li et al., ME-CPE, Ours) are
run under identical budgets and the mean selected-worker accuracy on the
working tasks is reported together with the ground-truth upper bound and
the relative improvement of the proposed method over each baseline — the
layout of the paper's Table V.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.config import ExperimentConfig, METHOD_ORDER
from repro.datasets.registry import DATASET_NAMES
from repro.experiments.report import comparison_rows
from repro.experiments.runner import DatasetResult, run_method_comparison

#: Accuracies printed in the paper's Table V (for EXPERIMENTS.md comparison).
PAPER_TABLE_V: Dict[str, Dict[str, float]] = {
    "RW-1": {"us": 0.764, "me": 0.771, "li": 0.771, "me-cpe": 0.781, "ours": 0.798, "ground-truth": 0.914},
    "RW-2": {"us": 0.956, "me": 0.944, "li": 0.936, "me-cpe": 0.950, "ours": 0.961, "ground-truth": 1.000},
    "S-1": {"us": 0.765, "me": 0.720, "li": 0.780, "me-cpe": 0.785, "ours": 0.830, "ground-truth": 0.885},
    "S-2": {"us": 0.775, "me": 0.785, "li": 0.805, "me-cpe": 0.790, "ours": 0.828, "ground-truth": 0.875},
    "S-3": {"us": 0.815, "me": 0.795, "li": 0.845, "me-cpe": 0.838, "ours": 0.850, "ground-truth": 0.915},
    "S-4": {"us": 0.865, "me": 0.880, "li": 0.870, "me-cpe": 0.875, "ours": 0.886, "ground-truth": 0.975},
}


def run_table5(
    dataset_names: Optional[Sequence[str]] = None,
    config: Optional[ExperimentConfig] = None,
) -> Dict[str, DatasetResult]:
    """Regenerate Table V (all methods, all requested datasets)."""
    names = list(dataset_names) if dataset_names is not None else list(DATASET_NAMES)
    return run_method_comparison(names, config=config, methods=list(METHOD_ORDER))


def table5_rows(results: Dict[str, DatasetResult]) -> List[Dict[str, object]]:
    """Flatten comparison results into printable rows (one per method)."""
    return comparison_rows(results, methods=METHOD_ORDER)


__all__ = ["run_table5", "table5_rows", "PAPER_TABLE_V"]
