"""Figure 6: sensitivity to the number of selected workers ``k``.

The paper sweeps ``k`` per dataset (larger ``k`` means fewer elimination
rounds) and plots every method plus the ground truth.  The sweep values per
dataset follow Section V-G.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.config import ExperimentConfig, METHOD_ORDER
from repro.experiments.runner import DatasetResult, run_method_comparison

#: k values swept per dataset (Section V-G / Figure 6 sub-plots).
FIGURE6_K_VALUES: Dict[str, List[int]] = {
    "RW-1": [7, 14],
    "RW-2": [9, 18],
    "S-1": [5, 10, 20],
    "S-2": [5, 10, 20],
    "S-3": [5, 10, 20, 40],
    "S-4": [5, 10, 20, 40],
}


def run_figure6(
    dataset_names: Optional[Sequence[str]] = None,
    k_values: Optional[Dict[str, List[int]]] = None,
    config: Optional[ExperimentConfig] = None,
    methods: Optional[List[str]] = None,
) -> List[Dict[str, object]]:
    """Sweep ``k`` per dataset and record every method's accuracy.

    Returns one row per (dataset, k) pair with a column per method plus the
    ground truth — the series plotted in Figure 6 (a)-(f).
    """
    sweep = dict(FIGURE6_K_VALUES if k_values is None else k_values)
    names = list(dataset_names) if dataset_names is not None else list(sweep.keys())
    method_list = methods if methods is not None else list(METHOD_ORDER)
    rows: List[Dict[str, object]] = []
    for dataset in names:
        for k in sweep.get(dataset, []):
            results = run_method_comparison([dataset], config=config, methods=method_list, k_override=k)
            result: DatasetResult = results[dataset]
            row: Dict[str, object] = {"dataset": dataset, "k": k}
            for method in method_list:
                row[method] = result.mean_accuracy(method)
            row["ground-truth"] = result.ground_truth
            rows.append(row)
    return rows


__all__ = ["run_figure6", "FIGURE6_K_VALUES"]
