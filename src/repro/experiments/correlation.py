"""Section V-H: recovered cross-domain correlations.

On RW-1 the paper's CPE estimates the Plane-Flower, Fish-Flower and
Elephant-Flower correlations as 0.50, 0.69 and 0.65 (fish/elephant more
predictive of the flower domain than planes); on RW-2 it estimates
Peruvian lily 0.23, Red fox 0.10 and English marigold 0.68 (marigold the
most predictive of Lenten roses).  Because the simulated RW datasets embed
exactly those values as the true generative correlations, this experiment
checks whether the CPE recovers the right *ordering* of domains.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.baselines import OursSelector
from repro.config import ExperimentConfig
from repro.datasets.registry import get_spec
from repro.stats.rng import derive_seed

#: Correlations the paper reports (Section V-H), keyed by dataset and prior domain.
PAPER_CORRELATIONS: Dict[str, Dict[str, float]] = {
    "RW-1": {"elephant": 0.65, "clownfish": 0.69, "plane": 0.50},
    "RW-2": {"peruvian_lily": 0.23, "red_fox": 0.10, "english_marigold": 0.68},
}


def run_correlation_recovery(
    dataset_names: Optional[List[str]] = None,
    config: Optional[ExperimentConfig] = None,
) -> List[Dict[str, object]]:
    """Run the proposed method and report the CPE's fitted target correlations.

    Returns one row per (dataset, prior domain) with the estimated
    correlation (averaged over repetitions), the value the paper reports and
    whether the estimated ordering of domains matches the paper's ordering.
    """
    names = dataset_names if dataset_names is not None else list(PAPER_CORRELATIONS.keys())
    config = config or ExperimentConfig()
    rows: List[Dict[str, object]] = []
    for name in names:
        spec = get_spec(name)
        estimates: Dict[str, List[float]] = {domain: [] for domain in spec.prior_domains}
        for repetition in range(config.n_repetitions):
            instance = spec.instantiate(seed=derive_seed(config.base_seed, name, "corr", repetition))
            selector = OursSelector(
                cpe_config=config.cpe_config(), lge_config=config.lge_config(), rng=repetition
            )
            result = selector.select(instance.environment(run_seed=repetition))
            fitted = result.diagnostics.get("estimated_correlations", {})
            for domain, value in fitted.items():
                estimates.setdefault(domain, []).append(float(value))

        mean_estimates = {domain: float(np.mean(values)) for domain, values in estimates.items() if values}
        paper = PAPER_CORRELATIONS.get(name, {})
        estimated_order = sorted(mean_estimates, key=mean_estimates.get, reverse=True)
        paper_order = sorted(paper, key=paper.get, reverse=True)
        for domain in spec.prior_domains:
            rows.append(
                {
                    "dataset": name,
                    "prior_domain": domain,
                    "estimated": mean_estimates.get(domain, float("nan")),
                    "paper": paper.get(domain, float("nan")),
                    "ordering_matches": estimated_order == paper_order,
                    "top_domain_matches": bool(
                        estimated_order and paper_order and estimated_order[0] == paper_order[0]
                    ),
                }
            )
    return rows


__all__ = ["run_correlation_recovery", "PAPER_CORRELATIONS"]
