"""Resumable JSONL result store for the parallel experiment runner.

Long sweeps (the full Table V grid, the Figure 6/7 sensitivity fans) run for
minutes to hours; losing a half-finished grid to a crash or a pre-empted
container wastes every completed cell.  The store persists one JSON record
per completed work unit — keyed by ``(dataset, method, repetition, k, q)`` —
so an interrupted run can be resumed with ``--resume`` and only the missing
units are executed.

Design constraints:

* **Atomic, append-only writes.**  Every record is one ``\\n``-terminated
  line written with a single ``write`` call and flushed to disk, so a crash
  can corrupt at most the trailing line.  :meth:`ResultStore.load_records`
  therefore tolerates exactly one undecodable *final* line (the interrupted
  write) and rejects corruption anywhere else.
* **Fingerprinted runs.**  Each record embeds the experiment-configuration
  fields that determine the numbers (``base_seed``, ``target_initial_accuracy``,
  ``cpe_epochs``).  Resuming against a store written under a different
  configuration raises instead of silently mixing incompatible grids.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple

#: Version stamp embedded in every record; bump on incompatible layout changes.
RECORD_SCHEMA_VERSION = 1

#: Fields that identify a work unit within one run.
KEY_FIELDS = ("dataset", "method", "repetition", "k", "q")

#: Configuration fields that must match between a store and a resuming run.
FINGERPRINT_FIELDS = ("base_seed", "target_initial_accuracy", "cpe_epochs")

UnitKey = Tuple[str, str, int, int, int]


def record_key(record: Mapping[str, object]) -> UnitKey:
    """The ``(dataset, method, repetition, k, q)`` key of a stored record."""
    return (
        str(record["dataset"]),
        str(record["method"]),
        int(record["repetition"]),  # type: ignore[arg-type]
        int(record["k"]),  # type: ignore[arg-type]
        int(record["q"]),  # type: ignore[arg-type]
    )


class ResultStore:
    """One JSONL file holding completed work-unit records."""

    def __init__(self, path: os.PathLike) -> None:
        self.path = Path(path)
        self._append_checked = False

    def exists(self) -> bool:
        return self.path.exists()

    def reset(self) -> None:
        """Start a fresh run: drop any previous records."""
        if self.path.exists():
            self.path.unlink()

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    def load_records(self) -> List[Dict[str, object]]:
        """All decodable records, tolerating one interrupted trailing line.

        Raises
        ------
        ValueError
            If a malformed line is followed by well-formed ones (the file
            was corrupted by something other than an interrupted append) or
            a record misses key fields.
        """
        if not self.path.exists():
            return []
        records: List[Dict[str, object]] = []
        with open(self.path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        for index, line in enumerate(lines):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                record = json.loads(stripped)
            except json.JSONDecodeError:
                if index == len(lines) - 1:
                    # The classic interruption artefact: a partial last line.
                    break
                raise ValueError(
                    f"{self.path}: malformed record on line {index + 1} "
                    "(not the final line, so this is not an interrupted append)"
                )
            if not isinstance(record, dict) or any(field not in record for field in KEY_FIELDS):
                raise ValueError(f"{self.path}: line {index + 1} is not a work-unit record")
            if record.get("schema_version") != RECORD_SCHEMA_VERSION:
                raise ValueError(
                    f"{self.path}: line {index + 1} has schema_version="
                    f"{record.get('schema_version')!r} but this version of the store reads "
                    f"{RECORD_SCHEMA_VERSION}; refusing to mix record layouts"
                )
            records.append(record)
        return records

    def completed(
        self, fingerprint: Optional[Mapping[str, object]] = None
    ) -> Dict[UnitKey, Dict[str, object]]:
        """Completed records keyed by work unit, last write winning.

        When ``fingerprint`` is given, every record must carry the same
        configuration fingerprint; a mismatch raises ``ValueError`` so a
        resume can never mix numbers from two different experiment
        configurations.
        """
        completed: Dict[UnitKey, Dict[str, object]] = {}
        for record in self.load_records():
            if fingerprint is not None:
                # Every FINGERPRINT_FIELDS entry is checked unconditionally: a
                # partial fingerprint would silently skip validation, so the
                # caller must supply all fields (config_fingerprint does).
                for field in FINGERPRINT_FIELDS:
                    if record.get(field) != fingerprint.get(field):
                        raise ValueError(
                            f"{self.path}: stored record has {field}={record.get(field)!r} but the "
                            f"current run uses {field}={fingerprint.get(field)!r}; refusing to "
                            "resume a store written under a different experiment configuration"
                        )
            completed[record_key(record)] = record
        return completed

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #
    def _drop_interrupted_trailing_line(self) -> None:
        """Truncate a partial final line left behind by an interrupted append.

        Every record is written with a trailing newline, so a file that does
        not end in one holds an incomplete last line.  Appending after it
        would merge the next record into the partial text — losing both and
        poisoning the store for later resumes — so the partial line is cut
        back to the last completed record first.  Only a *previous* process
        can leave such a line, so the check runs once per store instance and
        touches at most the final byte plus the torn tail.
        """
        if not self.path.exists():
            return
        with open(self.path, "rb") as handle:
            handle.seek(0, os.SEEK_END)
            size = handle.tell()
            if size == 0:
                return
            handle.seek(size - 1)
            if handle.read(1) == b"\n":
                return
            handle.seek(0)
            raw = handle.read()
        keep = raw.rfind(b"\n") + 1  # 0 when no newline at all: drop everything
        with open(self.path, "r+b") as handle:
            handle.truncate(keep)

    def append(self, record: Mapping[str, object]) -> None:
        """Durably append one completed work-unit record."""
        payload = dict(record)
        payload.setdefault("schema_version", RECORD_SCHEMA_VERSION)
        line = json.dumps(payload, sort_keys=True) + "\n"
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if not self._append_checked:
            self._drop_interrupted_trailing_line()
            self._append_checked = True
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line)
            handle.flush()
            os.fsync(handle.fileno())


__all__ = ["ResultStore", "record_key", "RECORD_SCHEMA_VERSION", "KEY_FIELDS", "FINGERPRINT_FIELDS", "UnitKey"]
