"""Figure 5: sensitivity to the initial target-domain accuracy ``a_T``.

The proposed method initialises the target-domain difficulty as
``beta_T = ln(1/a_T - 1)``; Figure 5 sweeps ``a_T`` from 0.1 to 0.9 on every
dataset and shows the selected-worker accuracy is stable for
``a_T`` in roughly [0.2, 0.8].  This runner reproduces the sweep for the
proposed method only (as in the paper).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence

from repro.config import ExperimentConfig
from repro.datasets.registry import DATASET_NAMES
from repro.experiments.runner import run_method_comparison

DEFAULT_AT_VALUES = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)


def run_figure5(
    dataset_names: Optional[Sequence[str]] = None,
    at_values: Sequence[float] = DEFAULT_AT_VALUES,
    config: Optional[ExperimentConfig] = None,
) -> List[Dict[str, object]]:
    """Sweep ``a_T`` and record the proposed method's accuracy per dataset.

    Returns one row per ``a_T`` value with a column per dataset — the series
    plotted in Figure 5.
    """
    names = list(dataset_names) if dataset_names is not None else list(DATASET_NAMES)
    base_config = config or ExperimentConfig()
    rows: List[Dict[str, object]] = []
    for at_value in at_values:
        if not 0.0 < at_value < 1.0:
            raise ValueError(f"a_T values must lie in (0, 1), got {at_value}")
        # dataclasses.replace keeps every other knob — notably n_jobs — so a
        # parallel configuration stays parallel across the sweep.
        swept_config = replace(base_config, target_initial_accuracy=float(at_value))
        results = run_method_comparison(names, config=swept_config, methods=["ours"])
        row: Dict[str, object] = {"a_T": float(at_value)}
        for dataset in names:
            row[dataset] = results[dataset].mean_accuracy("ours")
        rows.append(row)
    return rows


def stability_range(rows: Sequence[Dict[str, object]], dataset: str, tolerance: float = 0.05) -> Dict[str, float]:
    """Width of the ``a_T`` band whose accuracy stays within ``tolerance`` of the best.

    Used by the benchmark to assert the paper's "stable within [0.2, 0.8]"
    observation.
    """
    values = [(float(row["a_T"]), float(row[dataset])) for row in rows]
    best = max(accuracy for _, accuracy in values)
    stable = [at for at, accuracy in values if accuracy >= best - tolerance]
    return {"best_accuracy": best, "stable_min": min(stable), "stable_max": max(stable)}


__all__ = ["run_figure5", "stability_range", "DEFAULT_AT_VALUES"]
