"""Table II: dataset statistics.

Reports, for each dataset, the worker-pool size ``|W|``, learning tasks per
batch ``Q``, selection size ``k``, total number of batches and total budget
``B`` — all derived from the dataset specifications and the Table II
conventions implemented in :mod:`repro.platform.budget`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.datasets.registry import DATASET_NAMES, get_spec
from repro.datasets.statistics import dataset_statistics_row

#: The values printed in the paper's Table II, for side-by-side comparison.
PAPER_TABLE_II: Dict[str, Dict[str, int]] = {
    "RW-1": {"workers": 27, "Q": 10, "k": 7, "batches": 3, "B": 540},
    "RW-2": {"workers": 35, "Q": 10, "k": 9, "batches": 3, "B": 700},
    "S-1": {"workers": 40, "Q": 20, "k": 5, "batches": 7, "B": 2400},
    "S-2": {"workers": 50, "Q": 20, "k": 5, "batches": 7, "B": 3000},
    "S-3": {"workers": 80, "Q": 20, "k": 5, "batches": 15, "B": 6400},
    "S-4": {"workers": 160, "Q": 20, "k": 5, "batches": 31, "B": 16000},
}


def run_table2(dataset_names: Optional[Sequence[str]] = None) -> List[Dict[str, object]]:
    """Regenerate Table II and attach the paper's values for comparison."""
    names = list(dataset_names) if dataset_names is not None else list(DATASET_NAMES)
    rows: List[Dict[str, object]] = []
    for name in names:
        row = dataset_statistics_row(get_spec(name))
        paper = PAPER_TABLE_II.get(name, {})
        row["paper_B"] = paper.get("B", "n/a")
        row["paper_batches"] = paper.get("batches", "n/a")
        row["matches_paper"] = bool(
            paper
            and paper["B"] == row["B"]
            and paper["batches"] == row["batches"]
            and paper["workers"] == row["workers"]
        )
        rows.append(row)
    return rows


__all__ = ["run_table2", "PAPER_TABLE_II"]
