"""Experiment harness: one runner per table / figure of the paper.

Every runner returns plain Python data structures (lists of dicts) so they
can be consumed by the benchmark suite, the CLI, tests and notebooks alike;
:mod:`repro.experiments.report` renders them as aligned markdown tables.

| Paper artefact | Runner |
| --- | --- |
| Table II (dataset statistics)        | :func:`repro.experiments.table2.run_table2` |
| Table IV (moments + consistency)     | :func:`repro.experiments.table4.run_table4` |
| Table V (main results + ablation)    | :func:`repro.experiments.table5.run_table5` |
| Figure 5 (a_T sensitivity)           | :func:`repro.experiments.figure5.run_figure5` |
| Figure 6 (k sensitivity)             | :func:`repro.experiments.figure6.run_figure6` |
| Figure 7 (Q sensitivity)             | :func:`repro.experiments.figure7.run_figure7` |
| Section V-H runtime                  | :func:`repro.experiments.runtime.run_runtime` |
| Section V-H correlations             | :func:`repro.experiments.correlation.run_correlation_recovery` |
| Section V-H training gain            | :func:`repro.experiments.training_gain.run_training_gain` |
| Contamination robustness (new)       | :func:`repro.experiments.robustness.run_robustness` |
"""

from repro.experiments.correlation import run_correlation_recovery
from repro.experiments.figure5 import run_figure5
from repro.experiments.figure6 import run_figure6
from repro.experiments.figure7 import run_figure7
from repro.experiments.report import comparison_rows, format_table, results_to_markdown
from repro.experiments.robustness import run_robustness
from repro.experiments.runner import (
    DatasetResult,
    WorkUnit,
    execute_work_unit,
    plan_work_units,
    run_method_comparison,
)
from repro.experiments.store import ResultStore
from repro.experiments.runtime import run_runtime
from repro.experiments.table2 import run_table2
from repro.experiments.table4 import run_table4
from repro.experiments.table5 import run_table5
from repro.experiments.training_gain import run_training_gain

__all__ = [
    "DatasetResult",
    "WorkUnit",
    "ResultStore",
    "plan_work_units",
    "execute_work_unit",
    "run_method_comparison",
    "comparison_rows",
    "run_table2",
    "run_table4",
    "run_table5",
    "run_figure5",
    "run_figure6",
    "run_figure7",
    "run_runtime",
    "run_correlation_recovery",
    "run_training_gain",
    "run_robustness",
    "format_table",
    "results_to_markdown",
]
