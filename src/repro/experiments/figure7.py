"""Figure 7: sensitivity to the number of learning tasks per batch ``Q``.

``Q`` controls the total budget (``B = n * Q * |W|``); the paper sweeps
``Q`` over {16, 20, 30, 40} on the four synthetic datasets and observes
that the gap between the proposed method and the baselines shrinks as the
budget grows — cross-domain information matters most when golden questions
are scarce.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.config import ExperimentConfig, METHOD_ORDER
from repro.experiments.runner import DatasetResult, run_method_comparison

DEFAULT_Q_VALUES = (16, 20, 30, 40)
FIGURE7_DATASETS = ("S-1", "S-2", "S-3", "S-4")


def run_figure7(
    dataset_names: Optional[Sequence[str]] = None,
    q_values: Sequence[int] = DEFAULT_Q_VALUES,
    config: Optional[ExperimentConfig] = None,
    methods: Optional[List[str]] = None,
) -> List[Dict[str, object]]:
    """Sweep ``Q`` on the synthetic datasets and record every method's accuracy.

    Returns one row per (dataset, Q) pair with a column per method plus the
    ground truth — the series plotted in Figure 7 (a)-(d).
    """
    names = list(dataset_names) if dataset_names is not None else list(FIGURE7_DATASETS)
    method_list = methods if methods is not None else list(METHOD_ORDER)
    rows: List[Dict[str, object]] = []
    for dataset in names:
        for q in q_values:
            if q <= 0:
                raise ValueError(f"Q values must be positive, got {q}")
            results = run_method_comparison(
                [dataset], config=config, methods=method_list, q_override=int(q)
            )
            result: DatasetResult = results[dataset]
            row: Dict[str, object] = {"dataset": dataset, "Q": int(q)}
            for method in method_list:
                row[method] = result.mean_accuracy(method)
            row["ground-truth"] = result.ground_truth
            rows.append(row)
    return rows


def gap_to_best_baseline(rows: Sequence[Dict[str, object]], dataset: str) -> Dict[int, float]:
    """Gap between the proposed method and the best baseline per ``Q`` value.

    Used by the Figure 7 benchmark to check the paper's observation that the
    gap narrows as the budget grows.
    """
    gaps: Dict[int, float] = {}
    baselines = [m for m in METHOD_ORDER if m != "ours"]
    for row in rows:
        if row["dataset"] != dataset:
            continue
        best_baseline = max(float(row[m]) for m in baselines if m in row)
        gaps[int(row["Q"])] = float(row["ours"]) - best_baseline
    return gaps


__all__ = ["run_figure7", "gap_to_best_baseline", "DEFAULT_Q_VALUES", "FIGURE7_DATASETS"]
