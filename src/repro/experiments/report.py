"""Markdown rendering of experiment results.

The benchmark harness and the CLI both print the reproduced tables; keeping
the formatting in one place guarantees they agree.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.config import METHOD_LABELS, METHOD_ORDER
from repro.experiments.runner import DatasetResult


def format_table(rows: Sequence[Mapping[str, object]], columns: Optional[List[str]] = None) -> str:
    """Render a list of dict rows as an aligned markdown table."""
    rows = list(rows)
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered_rows = [[_format_cell(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), *(len(rendered[i]) for rendered in rendered_rows))
        for i, column in enumerate(columns)
    ]
    header = "| " + " | ".join(str(column).ljust(width) for column, width in zip(columns, widths)) + " |"
    divider = "|-" + "-|-".join("-" * width for width in widths) + "-|"
    body = [
        "| " + " | ".join(cell.ljust(width) for cell, width in zip(rendered, widths)) + " |"
        for rendered in rendered_rows
    ]
    return "\n".join([header, divider, *body])


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    if isinstance(value, tuple) and len(value) == 2 and all(isinstance(v, float) for v in value):
        return f"({value[0]:.2f}, {value[1]:.2f})"
    return str(value)


def comparison_rows(
    results: Dict[str, DatasetResult], methods: Optional[Sequence[str]] = None
) -> List[Dict[str, object]]:
    """Flatten comparison results into printable rows (one per method).

    ``methods`` restricts and orders the rows (default: the full Table V
    roster), so partial grids — e.g. a ``repro-crowd experiments`` run over
    two methods — render without NaN-filled rows for methods never run.
    The ground-truth row always comes last.
    """
    method_list = list(methods) if methods is not None else list(METHOD_ORDER)
    datasets = list(results.keys())
    rows: List[Dict[str, object]] = []
    for method in method_list:
        row: Dict[str, object] = {"method": method}
        for dataset in datasets:
            row[dataset] = results[dataset].mean_accuracy(method)
        rows.append(row)
    ground_truth: Dict[str, object] = {"method": "ground-truth"}
    for dataset in datasets:
        ground_truth[dataset] = results[dataset].ground_truth
    rows.append(ground_truth)
    return rows


def results_to_markdown(results: Dict[str, DatasetResult], reference_method: str = "ours") -> str:
    """Render a Table V-style markdown block from comparison results.

    One row per method (paper order) plus the ground-truth row; each cell is
    the mean selected-worker accuracy, with the relative improvement of the
    reference method in parentheses for baseline rows.
    """
    dataset_names = list(results.keys())
    rows: List[Dict[str, object]] = []
    for method in METHOD_ORDER:
        row: Dict[str, object] = {"Method": METHOD_LABELS.get(method, method)}
        for dataset in dataset_names:
            result = results[dataset]
            accuracy = result.mean_accuracy(method)
            if method == reference_method:
                row[dataset] = f"{accuracy:.3f}"
            else:
                uplift = result.relative_improvement(reference_method, method)
                row[dataset] = f"{accuracy:.3f} ({uplift * 100:+.1f}%)"
        rows.append(row)
    ground_truth_row: Dict[str, object] = {"Method": METHOD_LABELS["ground-truth"]}
    for dataset in dataset_names:
        ground_truth_row[dataset] = f"{results[dataset].ground_truth:.3f}"
    rows.append(ground_truth_row)
    return format_table(rows, columns=["Method", *dataset_names])


__all__ = ["comparison_rows", "format_table", "results_to_markdown"]
