"""Generic experiment runner shared by every table / figure.

The paper reports, per dataset and method, the mean working-task accuracy
of the selected workers.  :func:`run_method_comparison` implements the
shared protocol:

* every repetition draws a *fresh* dataset instance (worker pool and task
  bank) so results average over both the pool draw and the answer noise —
  the relevant population-level claim, since a single 40-worker pool is a
  high-variance object;
* within a repetition every method faces the same environment seed, so the
  comparison is paired;
* the ground-truth row is the mean final accuracy of the true top-``k``
  workers of each drawn pool.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.config import ExperimentConfig
from repro.datasets.base import DatasetSpec
from repro.datasets.registry import get_spec
from repro.evaluation.metrics import precision_at_k, selection_accuracy
from repro.stats.rng import derive_seed


@dataclass
class DatasetResult:
    """All methods' results on one dataset configuration."""

    dataset: str
    k: int
    tasks_per_batch: int
    method_accuracies: Dict[str, List[float]] = field(default_factory=dict)
    method_precisions: Dict[str, List[float]] = field(default_factory=dict)
    method_runtimes: Dict[str, List[float]] = field(default_factory=dict)
    ground_truths: List[float] = field(default_factory=list)

    def mean_accuracy(self, method: str) -> float:
        values = self.method_accuracies.get(method, [])
        return float(np.mean(values)) if values else float("nan")

    def mean_precision(self, method: str) -> float:
        values = self.method_precisions.get(method, [])
        return float(np.mean(values)) if values else float("nan")

    def mean_runtime(self, method: str) -> float:
        values = self.method_runtimes.get(method, [])
        return float(np.mean(values)) if values else float("nan")

    @property
    def ground_truth(self) -> float:
        return float(np.mean(self.ground_truths)) if self.ground_truths else float("nan")

    def relative_improvement(self, method: str, baseline: str) -> float:
        """Relative uplift of ``method`` over ``baseline`` (the paper's percentages)."""
        base = self.mean_accuracy(baseline)
        if not np.isfinite(base) or base <= 0:
            return float("nan")
        return (self.mean_accuracy(method) - base) / base


def run_method_comparison(
    dataset_names: Sequence[str],
    config: Optional[ExperimentConfig] = None,
    methods: Optional[List[str]] = None,
    k_override: Optional[int] = None,
    q_override: Optional[int] = None,
    specs: Optional[Dict[str, DatasetSpec]] = None,
) -> Dict[str, DatasetResult]:
    """Run the shared comparison protocol on the named datasets.

    Parameters
    ----------
    dataset_names:
        Datasets to evaluate (any subset of ``repro.DATASET_NAMES``).
    config:
        Repetitions, seeds and estimator settings; defaults to
        :class:`~repro.config.ExperimentConfig`.
    methods:
        Method identifiers (default: the Table V roster).
    k_override, q_override:
        Selection-size / batch-size overrides used by the Figure 6 and
        Figure 7 sweeps.
    specs:
        Optional pre-built specs keyed by dataset name (used by ablation
        benchmarks that modify the population); unnamed datasets fall back
        to the registry.
    """
    config = config or ExperimentConfig()
    # Registry-backed factories: validates the requested methods eagerly and
    # keeps one construction path shared with every other consumer.
    factories = config.selector_factories(methods)
    results: Dict[str, DatasetResult] = {}

    for dataset_name in dataset_names:
        spec = specs[dataset_name] if specs and dataset_name in specs else get_spec(dataset_name)
        resolved_k = k_override if k_override is not None else spec.k
        resolved_q = q_override if q_override is not None else spec.tasks_per_batch
        if q_override is not None:
            spec = spec.with_overrides(tasks_per_batch=q_override)
        result = DatasetResult(dataset=dataset_name, k=resolved_k, tasks_per_batch=resolved_q)

        for repetition in range(config.n_repetitions):
            instance_seed = derive_seed(config.base_seed, dataset_name, "instance", repetition, resolved_k, resolved_q)
            instance = spec.instantiate(seed=instance_seed, k=k_override)
            result.ground_truths.append(instance.ground_truth_mean_accuracy(resolved_k))

            for method_name, factory in factories.items():
                selector_seed = derive_seed(config.base_seed, dataset_name, method_name, repetition)
                selector = factory(selector_seed)
                environment = instance.environment(run_seed=repetition)
                start = time.perf_counter()
                selection = selector.select(environment, k=k_override)
                elapsed = time.perf_counter() - start
                accuracy = selection_accuracy(environment, selection)
                precision = precision_at_k(environment, selection, k=resolved_k)
                result.method_accuracies.setdefault(method_name, []).append(accuracy)
                result.method_precisions.setdefault(method_name, []).append(precision)
                result.method_runtimes.setdefault(method_name, []).append(elapsed)

        results[dataset_name] = result
    return results


__all__ = ["DatasetResult", "run_method_comparison"]
