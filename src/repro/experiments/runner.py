"""Generic experiment runner shared by every table / figure.

The paper reports, per dataset and method, the mean working-task accuracy
of the selected workers.  :func:`run_method_comparison` implements the
shared protocol:

* every repetition draws a *fresh* dataset instance (worker pool and task
  bank) so results average over both the pool draw and the answer noise —
  the relevant population-level claim, since a single 40-worker pool is a
  high-variance object;
* within a repetition every method faces the same instance and environment
  seeds, so the comparison is paired;
* the ground-truth row is the mean final accuracy of the true top-``k``
  workers of each drawn pool.

The grid is embarrassingly parallel: it decomposes into self-contained
**work units** keyed by ``(dataset, method, repetition, k, q)``, each of
which derives every random stream it needs from that full key via
:func:`repro.stats.rng.work_unit_seed` — no loop index ever reaches a
generator, so units are independent of execution order and host process.
``n_jobs > 1`` shards the pending units over a ``ProcessPoolExecutor`` and
produces **bit-identical** accuracies, precisions and ground truths to the
serial run (wall-clock ``runtime_s`` per unit is measured either way, but
timing is inherently non-deterministic).

A :class:`~repro.experiments.store.ResultStore` can persist one JSONL
record per completed unit so long sweeps survive interruption; resuming
skips completed keys and re-aggregates to the exact full-run result.
"""

from __future__ import annotations

import zlib
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.config import ExperimentConfig
from repro.datasets.base import DatasetSpec
from repro.datasets.registry import get_spec
from repro.evaluation.metrics import (
    precision_at_k,
    relative_improvement,
    selection_accuracy,
)
from repro.experiments.store import (
    FINGERPRINT_FIELDS,
    RECORD_SCHEMA_VERSION,
    ResultStore,
    UnitKey,
    record_key,
)
from repro.obs.timing import perf_counter
from repro.stats.rng import work_unit_seed

#: Progress callback: ``(completed_units, total_units, unit_or_None)``.
#: Invoked once up front when resumed units are skipped (``unit=None``) and
#: once per freshly executed unit.
ProgressCallback = Callable[[int, int, Optional["WorkUnit"]], None]


@dataclass
class DatasetResult:
    """All methods' results on one dataset configuration."""

    dataset: str
    k: int
    tasks_per_batch: int
    method_accuracies: Dict[str, List[float]] = field(default_factory=dict)
    method_precisions: Dict[str, List[float]] = field(default_factory=dict)
    method_runtimes: Dict[str, List[float]] = field(default_factory=dict)
    ground_truths: List[float] = field(default_factory=list)

    def mean_accuracy(self, method: str) -> float:
        values = self.method_accuracies.get(method, [])
        return float(np.mean(values)) if values else float("nan")

    def mean_precision(self, method: str) -> float:
        values = self.method_precisions.get(method, [])
        return float(np.mean(values)) if values else float("nan")

    def mean_runtime(self, method: str) -> float:
        values = self.method_runtimes.get(method, [])
        return float(np.mean(values)) if values else float("nan")

    @property
    def ground_truth(self) -> float:
        return float(np.mean(self.ground_truths)) if self.ground_truths else float("nan")

    def relative_improvement(self, method: str, baseline: str) -> float:
        """Relative uplift of ``method`` over ``baseline`` (the paper's percentages).

        Delegates to :func:`repro.evaluation.metrics.relative_improvement`,
        the single shared implementation (NaN when the baseline is
        non-positive or non-finite).
        """
        return relative_improvement(self.mean_accuracy(method), self.mean_accuracy(baseline))


# --------------------------------------------------------------------- #
# Work units
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class WorkUnit:
    """One self-contained cell of the comparison grid.

    ``k`` and ``q`` are the *resolved* selection size and per-batch task
    count (dataset defaults or sweep overrides), so the key alone fully
    determines every random stream the cell consumes.
    """

    dataset: str
    method: str
    repetition: int
    k: int
    q: int

    @property
    def key(self) -> UnitKey:
        return (self.dataset, self.method, self.repetition, self.k, self.q)

    def seeds(self, base_seed: int, seed_dataset: Optional[str] = None) -> Dict[str, int]:
        """The unit's three derived streams (see :func:`work_unit_seed`).

        ``seed_dataset`` overrides the dataset token of the derivation.
        Scenario cells pass their base dataset's name (the spec's
        ``seed_name``) so every contamination rate of a robustness sweep
        faces the *same* base pool draw and answer streams — the sweep
        measures the contamination, not a pool re-roll.
        """
        shared = dict(
            dataset=seed_dataset if seed_dataset is not None else self.dataset,
            repetition=self.repetition,
            k=self.k,
            q=self.q,
        )
        return {
            "instance_seed": work_unit_seed(base_seed, "instance", **shared),
            "environment_seed": work_unit_seed(base_seed, "environment", **shared),
            "selector_seed": work_unit_seed(base_seed, "selector", method=self.method, **shared),
        }


def _resolve_grid(
    dataset_names: Sequence[str],
    k_override: Optional[int],
    q_override: Optional[int],
    specs: Optional[Mapping[str, DatasetSpec]],
) -> List[Tuple[str, DatasetSpec, int, int]]:
    """Per-dataset ``(name, q-adjusted spec, resolved_k, resolved_q)`` rows."""
    grid: List[Tuple[str, DatasetSpec, int, int]] = []
    for dataset_name in dataset_names:
        spec = specs[dataset_name] if specs and dataset_name in specs else get_spec(dataset_name)
        resolved_k = k_override if k_override is not None else spec.k
        resolved_q = q_override if q_override is not None else spec.tasks_per_batch
        if q_override is not None:
            spec = spec.with_overrides(tasks_per_batch=q_override)
        grid.append((dataset_name, spec, resolved_k, resolved_q))
    return grid


def _resolve_methods(config: ExperimentConfig, methods: Optional[List[str]]) -> List[str]:
    """Validate the roster via the registry and fix the shared method order."""
    method_list = list(config.selector_factories(methods))
    if not method_list:
        raise ValueError("at least one method is required")
    return method_list


def _plan_from_grid(
    grid: Sequence[Tuple[str, DatasetSpec, int, int]],
    method_list: Sequence[str],
    n_repetitions: int,
) -> List[WorkUnit]:
    """Expand a resolved grid into the ordered work-unit plan.

    The dataset -> repetition -> method order here is the one
    :func:`_aggregate` walks; planning and aggregation must share it.
    """
    return [
        WorkUnit(dataset=name, method=method, repetition=repetition, k=resolved_k, q=resolved_q)
        for name, _, resolved_k, resolved_q in grid
        for repetition in range(n_repetitions)
        for method in method_list
    ]


def plan_work_units(
    dataset_names: Sequence[str],
    config: Optional[ExperimentConfig] = None,
    methods: Optional[List[str]] = None,
    k_override: Optional[int] = None,
    q_override: Optional[int] = None,
    specs: Optional[Mapping[str, DatasetSpec]] = None,
) -> List[WorkUnit]:
    """The full, ordered work-unit decomposition of a comparison run."""
    config = config or ExperimentConfig()
    method_list = _resolve_methods(config, methods)
    grid = _resolve_grid(dataset_names, k_override, q_override, specs)
    return _plan_from_grid(grid, method_list, config.n_repetitions)


def execute_work_unit(unit: WorkUnit, spec: DatasetSpec, config: ExperimentConfig) -> Dict[str, object]:
    """Run one ``(dataset, method, repetition, k, q)`` cell to a result record.

    Pure function of its arguments: the instance draw, the environment's
    answer noise and the selector's exploration stream are all derived from
    the unit key, so the same unit yields the same record in any process.
    """
    seeds = unit.seeds(config.base_seed, seed_dataset=spec.seed_name)
    instance = spec.instantiate(seed=seeds["instance_seed"], k=unit.k)
    ground_truth = instance.ground_truth_mean_accuracy(unit.k)
    selector = config.make_selector(unit.method, seed=seeds["selector_seed"])
    environment = instance.environment(run_seed=seeds["environment_seed"])
    start = perf_counter()
    selection = selector.select(environment, k=unit.k)
    elapsed = perf_counter() - start
    return {
        "schema_version": RECORD_SCHEMA_VERSION,
        "dataset": unit.dataset,
        "method": unit.method,
        "repetition": unit.repetition,
        "k": unit.k,
        "q": unit.q,
        **_config_fingerprint(config),
        "spec_digest": _spec_digest(spec),
        **seeds,
        "accuracy": selection_accuracy(environment, selection),
        "precision": precision_at_k(environment, selection, k=unit.k),
        "runtime_s": elapsed,
        "ground_truth": ground_truth,
    }


def _execute_payload(payload: Tuple[WorkUnit, DatasetSpec, ExperimentConfig]) -> Dict[str, object]:
    """Module-level pool entry point (instances and lambdas do not pickle)."""
    unit, spec, config = payload
    return execute_work_unit(unit, spec, config)


def _config_fingerprint(config: ExperimentConfig) -> Dict[str, object]:
    """The config fields that determine a record's numbers.

    Built from :data:`~repro.experiments.store.FINGERPRINT_FIELDS` — the one
    list shared with record stamping and resume validation — so adding a
    result-determining knob there automatically propagates everywhere.
    """
    return {field: getattr(config, field) for field in FINGERPRINT_FIELDS}


def _spec_digest(spec: DatasetSpec) -> int:
    """Stable digest of a dataset spec's result-determining content.

    The ``specs=`` hook lets ablation benchmarks swap in modified
    populations under an unchanged dataset name, so the unit key and the
    config fingerprint alone cannot tell two populations apart; the digest
    is stamped into every record and checked on resume.
    """
    return zlib.crc32(repr(spec).encode("utf-8")) & 0xFFFFFFFF


def _aggregate(
    grid: Sequence[Tuple[str, DatasetSpec, int, int]],
    method_list: Sequence[str],
    n_repetitions: int,
    records: Mapping[UnitKey, Mapping[str, object]],
) -> Dict[str, DatasetResult]:
    """Assemble per-dataset results in the deterministic plan order.

    Execution (and resume) may complete units in any order; aggregation
    always walks dataset -> repetition -> method, so serial, parallel and
    resumed runs produce identical structures.
    """
    results: Dict[str, DatasetResult] = {}
    for dataset_name, _, resolved_k, resolved_q in grid:
        result = DatasetResult(dataset=dataset_name, k=resolved_k, tasks_per_batch=resolved_q)
        for repetition in range(n_repetitions):
            first_key = (dataset_name, method_list[0], repetition, resolved_k, resolved_q)
            # Every method of a repetition recomputes the same instance-level
            # ground truth; record it once, from the first planned method.
            result.ground_truths.append(float(records[first_key]["ground_truth"]))  # type: ignore[arg-type]
            for method in method_list:
                record = records[(dataset_name, method, repetition, resolved_k, resolved_q)]
                result.method_accuracies.setdefault(method, []).append(float(record["accuracy"]))  # type: ignore[arg-type]
                result.method_precisions.setdefault(method, []).append(float(record["precision"]))  # type: ignore[arg-type]
                result.method_runtimes.setdefault(method, []).append(float(record["runtime_s"]))  # type: ignore[arg-type]
        results[dataset_name] = result
    return results


def run_method_comparison(
    dataset_names: Sequence[str],
    config: Optional[ExperimentConfig] = None,
    methods: Optional[List[str]] = None,
    k_override: Optional[int] = None,
    q_override: Optional[int] = None,
    specs: Optional[Dict[str, DatasetSpec]] = None,
    n_jobs: Optional[int] = None,
    store_path: Optional[str] = None,
    resume: bool = False,
    progress: Optional[ProgressCallback] = None,
) -> Dict[str, DatasetResult]:
    """Run the shared comparison protocol on the named datasets.

    Parameters
    ----------
    dataset_names:
        Datasets to evaluate (any subset of ``repro.DATASET_NAMES``).
    config:
        Repetitions, seeds and estimator settings; defaults to
        :class:`~repro.config.ExperimentConfig`.
    methods:
        Method identifiers (default: the Table V roster).
    k_override, q_override:
        Selection-size / batch-size overrides used by the Figure 6 and
        Figure 7 sweeps.
    specs:
        Optional pre-built specs keyed by dataset name (used by ablation
        benchmarks that modify the population); unnamed datasets fall back
        to the registry.
    n_jobs:
        Worker processes; ``None`` defers to ``config.n_jobs``.  Any value
        produces bit-identical accuracies/precisions/ground truths.
    store_path:
        Optional JSONL result store.  Without ``resume`` an existing file is
        dropped and the run starts fresh.
    resume:
        Skip work units already recorded in ``store_path`` (requires it);
        the store's configuration fingerprint must match ``config``.
    progress:
        Optional ``(done, total, unit)`` callback; see
        :data:`ProgressCallback`.
    """
    config = config or ExperimentConfig()
    method_list = _resolve_methods(config, methods)
    resolved_jobs = n_jobs if n_jobs is not None else config.n_jobs
    if resolved_jobs <= 0:
        raise ValueError("n_jobs must be positive")
    if resume and store_path is None:
        raise ValueError("resume=True requires a store_path")

    grid = _resolve_grid(dataset_names, k_override, q_override, specs)
    spec_by_dataset = {name: spec for name, spec, _, _ in grid}
    plan = _plan_from_grid(grid, method_list, config.n_repetitions)
    plan_keys = {unit.key for unit in plan}

    store = ResultStore(store_path) if store_path is not None else None
    records: Dict[UnitKey, Mapping[str, object]] = {}
    if store is not None:
        if resume:
            stored = store.completed(fingerprint=_config_fingerprint(config))
            # Records outside the requested grid (e.g. a store shared across
            # sweeps) are simply ignored, not errors.
            records = {key: rec for key, rec in stored.items() if key in plan_keys}
            for key, rec in records.items():
                expected = _spec_digest(spec_by_dataset[key[0]])
                if rec.get("spec_digest") != expected:
                    raise ValueError(
                        f"{store.path}: stored record for dataset {key[0]!r} was computed on a "
                        "different population (spec digest mismatch); refusing to resume — the "
                        "specs= override changed since the store was written"
                    )
        else:
            store.reset()

    pending = [unit for unit in plan if unit.key not in records]
    total = len(plan)
    done = total - len(pending)
    if progress is not None and done:
        progress(done, total, None)

    def _complete(unit: WorkUnit, record: Dict[str, object]) -> None:
        nonlocal done
        records[record_key(record)] = record
        if store is not None:
            store.append(record)
        done += 1
        if progress is not None:
            progress(done, total, unit)

    if resolved_jobs == 1 or len(pending) <= 1:
        for unit in pending:
            _complete(unit, execute_work_unit(unit, spec_by_dataset[unit.dataset], config))
    else:
        max_workers = min(resolved_jobs, len(pending))
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            futures = {
                pool.submit(_execute_payload, (unit, spec_by_dataset[unit.dataset], config)): unit
                for unit in pending
            }
            for future in as_completed(futures):
                _complete(futures[future], future.result())

    return _aggregate(grid, method_list, config.n_repetitions, records)


__all__ = [
    "DatasetResult",
    "WorkUnit",
    "ProgressCallback",
    "plan_work_units",
    "execute_work_unit",
    "run_method_comparison",
]
