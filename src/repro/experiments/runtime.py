"""Section V-H: selection runtime as a function of the worker-pool size.

The paper reports 3.9s-28.9s on a Xeon for RW-1 through S-4 and argues the
cost is negligible against human task-completion time.  We time our own
implementation on the same datasets; the reproducible claim is the shape
(monotone growth with ``|W|``, seconds not hours), not the absolute value.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.baselines import OursSelector
from repro.config import ExperimentConfig
from repro.datasets.registry import DATASET_NAMES, get_spec
from repro.obs.timing import perf_counter
from repro.stats.rng import derive_seed

#: Runtimes reported by the paper (seconds), for EXPERIMENTS.md comparison.
PAPER_RUNTIMES: Dict[str, float] = {
    "RW-1": 3.9,
    "RW-2": 5.0,
    "S-1": 6.3,
    "S-2": 7.8,
    "S-3": 13.4,
    "S-4": 28.9,
}


def run_runtime(
    dataset_names: Optional[Sequence[str]] = None,
    config: Optional[ExperimentConfig] = None,
) -> List[Dict[str, object]]:
    """Time one full selection run of the proposed method per dataset."""
    names = list(dataset_names) if dataset_names is not None else list(DATASET_NAMES)
    config = config or ExperimentConfig()
    rows: List[Dict[str, object]] = []
    for name in names:
        spec = get_spec(name)
        instance = spec.instantiate(seed=derive_seed(config.base_seed, name, "runtime"))
        selector = OursSelector(
            cpe_config=config.cpe_config(), lge_config=config.lge_config(), rng=config.base_seed
        )
        environment = instance.environment(run_seed=0)
        start = perf_counter()
        selector.select(environment)
        elapsed = perf_counter() - start
        rows.append(
            {
                "dataset": name,
                "workers": spec.n_workers,
                "seconds": elapsed,
                "paper_seconds": PAPER_RUNTIMES.get(name, float("nan")),
            }
        )
    return rows


__all__ = ["run_runtime", "PAPER_RUNTIMES"]
