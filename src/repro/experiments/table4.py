"""Table IV: dataset moments and the RW-1 consistency check.

Two artefacts are reproduced:

* the per-domain (mean, std) of worker accuracy for RW-1 and the four
  synthetic datasets;
* the bucketed-Pearson consistency of each synthetic dataset against RW-1
  (the paper requires every correlation to exceed 0.75).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.datasets.consistency import consistency_report
from repro.datasets.registry import get_spec
from repro.datasets.statistics import domain_moments_table
from repro.stats.rng import SeedLike

#: Table IV as printed in the paper: (mean, std) per domain.
PAPER_TABLE_IV: Dict[str, Dict[str, Tuple[float, float]]] = {
    "RW-1": {"prior-1": (0.70, 0.22), "prior-2": (0.88, 0.10), "prior-3": (0.58, 0.25), "target": (0.55, 0.17)},
    "S-1": {"prior-1": (0.72, 0.23), "prior-2": (0.86, 0.13), "prior-3": (0.53, 0.29), "target": (0.49, 0.18)},
    "S-2": {"prior-1": (0.64, 0.27), "prior-2": (0.83, 0.15), "prior-3": (0.51, 0.25), "target": (0.51, 0.20)},
    "S-3": {"prior-1": (0.66, 0.26), "prior-2": (0.87, 0.13), "prior-3": (0.54, 0.27), "target": (0.50, 0.18)},
    "S-4": {"prior-1": (0.68, 0.25), "prior-2": (0.87, 0.13), "prior-3": (0.54, 0.27), "target": (0.50, 0.18)},
}

TABLE_IV_DATASETS = ["RW-1", "S-1", "S-2", "S-3", "S-4"]


def run_table4(
    dataset_names: Optional[Sequence[str]] = None,
    seed: SeedLike = 0,
    n_buckets: int = 10,
    consistency_threshold: float = 0.75,
) -> Dict[str, List[Dict[str, object]]]:
    """Regenerate Table IV's moments and the Pearson consistency check.

    Returns a dict with two keys: ``"moments"`` (one row per dataset with
    per-domain (mean, std) pairs) and ``"consistency"`` (one row per
    synthetic dataset with the bucketed Pearson correlation against RW-1).
    """
    names = list(dataset_names) if dataset_names is not None else list(TABLE_IV_DATASETS)
    instances = [get_spec(name).instantiate(seed=seed) for name in names]
    moments = domain_moments_table(instances)
    for row in moments:
        paper = PAPER_TABLE_IV.get(str(row["dataset"]), {})
        row["paper_target"] = paper.get("target", "n/a")

    reference = next((inst for inst in instances if inst.name == "RW-1"), instances[0])
    candidates = [inst for inst in instances if inst.name != reference.name]
    consistency = consistency_report(
        reference, candidates, n_buckets=n_buckets, threshold=consistency_threshold
    )
    return {"moments": moments, "consistency": consistency}


__all__ = ["run_table4", "PAPER_TABLE_IV", "TABLE_IV_DATASETS"]
