"""Robustness sweep: selection quality under pool contamination.

The paper evaluates selection only against well-behaved learning workers —
but real crowdsourcing pools contain spammers, adversaries and drifting
workers, exactly the populations that motivate worker selection.  This
runner measures how every method's selection accuracy and precision@k decay
as the contamination rate grows: for each base dataset and each rate it
builds the scenario ``"<base>:<behavior><rate>"`` (rate 0 is the clean base
dataset) and runs the shared comparison protocol on it.

Scenario pools are paired with the base dataset (identical clean workers and
task bank per repetition seed), so the columns of the sweep isolate the
*effect of contamination* rather than re-rolling the whole pool.

The sweep rides the PR 3 work-unit runner: it shards over ``config.n_jobs``
processes and can persist one JSONL record per completed unit through a
:class:`~repro.experiments.store.ResultStore` (``store_path`` / ``resume``),
so a long grid survives interruption.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.config import METHOD_ORDER, ExperimentConfig
from repro.datasets.registry import SCENARIO_SEPARATOR, parse_scenario
from repro.experiments.runner import ProgressCallback, run_method_comparison

#: Contamination rates of the default sweep (fractions of the pool).
DEFAULT_CONTAMINATION_RATES = (0.0, 0.1, 0.2, 0.4)

#: Datasets swept when none are named (small enough for a laptop run).
DEFAULT_ROBUSTNESS_DATASETS = ("S-1",)


def scenario_name(base: str, behavior: str, rate: float) -> str:
    """Scenario-qualified dataset name for one sweep cell (``rate`` in [0, 0.9])."""
    percent = round(rate * 100)
    if percent == 0:
        return base
    return f"{base}{SCENARIO_SEPARATOR}{behavior}{percent}"


def run_robustness(
    dataset_names: Optional[Sequence[str]] = None,
    behavior: str = "spammer",
    contamination_rates: Sequence[float] = DEFAULT_CONTAMINATION_RATES,
    config: Optional[ExperimentConfig] = None,
    methods: Optional[List[str]] = None,
    store_path: Optional[str] = None,
    resume: bool = False,
    progress: Optional[ProgressCallback] = None,
) -> List[Dict[str, object]]:
    """Sweep contamination rates and compare every method's selection quality.

    Parameters
    ----------
    dataset_names:
        Base datasets to contaminate (default: ``S-1``).
    behavior:
        Registered behaviour (or alias) injected into the pool.
    contamination_rates:
        Fractions of the pool replaced by the behaviour; 0 is the clean
        baseline.  Each must be expressible as a whole percentage in
        [0, 0.9] (the scenario grammar).
    config, methods:
        Shared comparison knobs (repetitions, seeds, ``n_jobs``, roster).
    store_path, resume, progress:
        Result-store persistence, exactly as in
        :func:`~repro.experiments.runner.run_method_comparison`; records are
        keyed by the scenario-qualified dataset name.

    Returns
    -------
    list of dict
        One row per (dataset, rate, method) with ``accuracy``,
        ``precision_at_k`` and the pool's ``ground_truth`` accuracy.
    """
    bases = list(dataset_names) if dataset_names is not None else list(DEFAULT_ROBUSTNESS_DATASETS)
    config = config or ExperimentConfig()
    for rate in contamination_rates:
        if not 0.0 <= rate <= 0.9:
            raise ValueError(f"contamination rates must lie in [0, 0.9], got {rate}")
        if abs(rate * 100 - round(rate * 100)) > 1e-9:
            raise ValueError(f"contamination rates must be whole percentages, got {rate}")
    if any(round(rate * 100) > 0 for rate in contamination_rates):
        # Validates the behaviour name (and the grammar) before any work runs.
        parse_scenario(f"{behavior}{max(round(r * 100) for r in contamination_rates)}")

    grid = [
        (base, float(rate), scenario_name(base, behavior, rate))
        for base in bases
        for rate in contamination_rates
    ]
    # One comparison run over the whole scenario grid: units shard across
    # processes globally and share one result store / fingerprint.
    results = run_method_comparison(
        [name for _, _, name in grid],
        config=config,
        methods=methods,
        store_path=store_path,
        resume=resume,
        progress=progress,
    )

    method_list = list(methods) if methods is not None else list(METHOD_ORDER)
    rows: List[Dict[str, object]] = []
    for base, rate, name in grid:
        result = results[name]
        for method in method_list:
            rows.append(
                {
                    "dataset": base,
                    "behavior": behavior if rate > 0 else "clean",
                    "rate": rate,
                    "method": method,
                    "accuracy": result.mean_accuracy(method),
                    "precision_at_k": result.mean_precision(method),
                    "ground_truth": result.ground_truth,
                }
            )
    return rows


def robustness_degradation(rows: Sequence[Dict[str, object]], dataset: str, method: str) -> Dict[str, float]:
    """Accuracy drop of one method from the clean pool to each contaminated rate."""
    series = {
        float(row["rate"]): float(row["accuracy"])
        for row in rows
        if row["dataset"] == dataset and row["method"] == method
    }
    if 0.0 not in series:
        raise ValueError(f"no clean baseline row for {method!r} on {dataset!r}")
    baseline = series[0.0]
    return {f"drop_at_{rate:g}": baseline - accuracy for rate, accuracy in sorted(series.items()) if rate > 0}


__all__ = [
    "DEFAULT_CONTAMINATION_RATES",
    "DEFAULT_ROBUSTNESS_DATASETS",
    "scenario_name",
    "run_robustness",
    "robustness_degradation",
]
