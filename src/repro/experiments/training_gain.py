"""Section V-H: the value of worker training.

The paper reports that a single round of 10 revealed learning tasks lifts
the average worker accuracy from 0.55 to 0.79 on RW-1 and from 0.65 to 0.85
on RW-2, and derives a break-even condition: the extra cost of the learning
tasks is recovered once the ratio of working to learning tasks exceeds
``a_t / (a'_t - a_t)`` (roughly 2.3 and 3.3 for the two surveys).  This
runner measures both quantities on the simulated datasets.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.config import ExperimentConfig
from repro.datasets.registry import get_spec
from repro.stats.rng import derive_seed

#: Before/after accuracies the paper reports for one round of training.
PAPER_TRAINING_GAIN: Dict[str, Dict[str, float]] = {
    "RW-1": {"before": 0.55, "after": 0.79, "break_even_ratio": 2.3},
    "RW-2": {"before": 0.65, "after": 0.85, "break_even_ratio": 3.3},
}


def break_even_ratio(before: float, after: float) -> float:
    """``|Tw| / |Tl|`` above which training pays for itself (Section V-H)."""
    if not 0.0 < before < 1.0 or not 0.0 < after <= 1.0:
        raise ValueError("accuracies must lie in (0, 1]")
    if after <= before:
        return float("inf")
    return before / (after - before)


def run_training_gain(
    dataset_names: Optional[Sequence[str]] = None,
    config: Optional[ExperimentConfig] = None,
    n_training_tasks: Optional[int] = None,
) -> List[Dict[str, object]]:
    """Average worker accuracy before and after one round of training.

    ``n_training_tasks`` defaults to the dataset's batch size ``Q`` (one
    round of golden questions, as in the paper's discussion).
    """
    names = list(dataset_names) if dataset_names is not None else list(PAPER_TRAINING_GAIN.keys())
    config = config or ExperimentConfig()
    rows: List[Dict[str, object]] = []
    for name in names:
        spec = get_spec(name)
        tasks = n_training_tasks if n_training_tasks is not None else spec.tasks_per_batch
        befores: List[float] = []
        afters: List[float] = []
        for repetition in range(config.n_repetitions):
            instance = spec.instantiate(seed=derive_seed(config.base_seed, name, "gain", repetition))
            befores.append(float(np.mean(instance.initial_target_accuracies())))
            afters.append(float(np.mean([w.accuracy_at(float(tasks)) for w in instance.pool])))
        before = float(np.mean(befores))
        after = float(np.mean(afters))
        paper = PAPER_TRAINING_GAIN.get(name, {})
        rows.append(
            {
                "dataset": name,
                "training_tasks": tasks,
                "before": before,
                "after": after,
                "gain": after - before,
                "break_even_ratio": break_even_ratio(before, after),
                "paper_before": paper.get("before", float("nan")),
                "paper_after": paper.get("after", float("nan")),
                "paper_break_even_ratio": paper.get("break_even_ratio", float("nan")),
            }
        )
    return rows


__all__ = ["run_training_gain", "break_even_ratio", "PAPER_TRAINING_GAIN"]
