"""Multi-campaign marketplace orchestration: shared workers, churn, journaled ticks.

The selection pipeline ends with one campaign's top-``k``; the serving
layer drives one campaign's annotation phase.  This package is the layer
above both: a long-lived orchestrator running **N concurrent campaigns**
against **one shared, churning worker marketplace** under a
deterministic batched-tick event loop.

* :mod:`~repro.marketplace.churn` — seeded open-world churn (arrivals
  and departures as pure counter-based draws);
* :mod:`~repro.marketplace.journal` — the append-only, fsynced, crash-
  recoverable :class:`EventJournal` (byte-identical at any tick batch
  size);
* :mod:`~repro.marketplace.lifecycle` — the SELECTING → SERVING →
  RESELECTING → DONE :class:`CampaignHandle` lifecycle that consumes the
  drift detector's re-selection signal via ``Campaign.state_dict()``
  checkpointing;
* :mod:`~repro.marketplace.orchestrator` — the shared
  :class:`Marketplace` registry (prestudy qualification, in-flight vote
  invalidation, cross-campaign concurrency contention) and the
  :class:`MarketplaceOrchestrator` event loop.
"""

from repro.marketplace.churn import ChurnConfig, ChurnModel
from repro.marketplace.journal import (
    JOURNAL_SCHEMA_VERSION,
    EventJournal,
    JournalCorruptionError,
    JournalError,
    JournalFingerprintError,
    encode_record,
)
from repro.marketplace.lifecycle import CampaignHandle, CampaignPhase, CampaignSpec
from repro.marketplace.orchestrator import (
    Marketplace,
    MarketplaceConfig,
    MarketplaceOrchestrator,
    MarketplaceReport,
    MarketWorker,
)

__all__ = [
    "ChurnConfig",
    "ChurnModel",
    "JOURNAL_SCHEMA_VERSION",
    "EventJournal",
    "JournalError",
    "JournalCorruptionError",
    "JournalFingerprintError",
    "encode_record",
    "CampaignHandle",
    "CampaignPhase",
    "CampaignSpec",
    "Marketplace",
    "MarketplaceConfig",
    "MarketplaceOrchestrator",
    "MarketplaceReport",
    "MarketWorker",
]
