"""The marketplace orchestrator: N campaigns, one churning worker pool.

:class:`Marketplace` is the shared worker registry.  Workers enter it two
ways: a finished campaign selection registers its workers (namespaced
``"<campaign>:<worker>"``, serving their home campaign only), and the
open-world churn model delivers **arrivals** — fresh workers sampled from
the population recipe who must pass a prestudy qualification (the
potato-style entrance exam: ``prestudy_questions`` golden questions,
qualified per the existing :class:`~repro.serving.qualification.QualificationPolicy`
tiers) before they may serve.  Admitted arrivals are *shared*: the same
:class:`~repro.serving.pool.ServingWorker` object joins every serving
campaign's pool, so one worker's concurrency cap genuinely spans
campaigns — capacity one campaign consumes is capacity another loses.

Departures invalidate the departing worker's unanswered in-flight votes
in every campaign (reassigning them through the routing policy) before
the worker leaves the pools, so no vote is silently lost and no router
ever routes to a ghost.

:class:`MarketplaceOrchestrator` drives everything under a deterministic
batched-tick event loop.  Per tick, in fixed order: departures (over the
sorted present workers), arrivals, then each campaign handle in spec
order.  Every random draw is counter-based (churn, prestudy, answers), so
the tick trace is a pure function of the configuration — which the
append-only :class:`~repro.marketplace.journal.EventJournal` exploits:
journals are byte-identical at any tick batch size, and a crashed run
resumes by replaying its deterministic prefix against the journal and
continuing where the file ends.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.marketplace.churn import ChurnConfig, ChurnModel
from repro.marketplace.journal import (
    EventJournal,
    JournalCorruptionError,
    encode_record,
)
from repro.marketplace.lifecycle import CampaignHandle, CampaignPhase, CampaignSpec
from repro.campaign import SelectionManifest
from repro.obs.timing import perf_counter
from repro.platform.tasks import Task
from repro.serving.pool import ServingWorker
from repro.serving.qualification import (
    QualificationPolicy,
    QualificationTier,
    qualification_for,
)
from repro.serving.quality import DriftConfig
from repro.serving.routing import known_routing_engines, resolve_router_name
from repro.stats.rng import counter_uniforms, derive_seed, stream_seeds, token_hashes
from repro.workers.population import PopulationConfig, sample_learning_population

#: ``id_prefix`` of workers minted by the arrival sampler.
ARRIVAL_PREFIX = "mkt"

#: Valid ``tick_engine`` values, default first.
TICK_ENGINES = ("reference", "sharded")


def simulate_answer(
    answer_seed: int,
    worker_id: str,
    campaign: str,
    task: Task,
    *,
    behavior,
    target_domain: Optional[str],
    accuracies: Mapping[str, float],
    exposure_offset: float,
    answer_count: int,
) -> bool:
    """One worker's answer to one task, as a pure function of its inputs.

    The draw comes from a counter-based stream keyed by
    ``(answer_seed, worker_id, campaign)`` at offset ``answer_count``, so
    any process that knows a worker's registered accuracy profile and its
    per-campaign answer count reproduces the exact same answer — the
    contract the sharded tick engine relies on to simulate answers inside
    shard processes without consulting the parent's
    :class:`Marketplace`.
    """
    if behavior is not None and task.domain == target_domain:
        accuracy = float(behavior.accuracy_at(exposure_offset + answer_count))
    else:
        accuracy = accuracies.get(task.domain, 0.5)
    draw = counter_uniforms(
        stream_seeds(answer_seed, token_hashes([worker_id]), int(token_hashes([campaign])[0])),
        1,
        offset=answer_count,
    )[0, 0]
    correct = bool(draw < accuracy)
    return bool(task.gold_label) if correct else not bool(task.gold_label)


@dataclass(frozen=True)
class MarketplaceConfig:
    """Orchestrator-wide configuration (shared by every campaign).

    Attributes
    ----------
    router / routing_engine / votes_per_task / max_concurrent /
    aggregator / drift / reselect_fraction:
        Passed through to each campaign's
        :class:`~repro.serving.service.ServingConfig`.
    qualification:
        Policy qualifying selected workers, prestudy arrivals and
        re-qualified candidates.
    tasks_per_tick:
        Working tasks each serving campaign submits per tick.
    answer_delay:
        Ticks between routing a vote and its answer arriving.
    prestudy_questions:
        Golden questions an arrival answers before admission.
    selection_rounds_per_tick:
        Campaign elimination rounds advanced per tick while SELECTING.
    requalify_ticks:
        Ticks a campaign spends re-qualifying before re-selection.
    max_reselections:
        Cap on drift-triggered re-selections per campaign.
    total_tasks:
        Length of each campaign's working-task stream (``None`` = the
        dataset's full working bank).
    tick_engine:
        ``"reference"`` (the serial tick loop) or ``"sharded"`` (the
        two-phase parallel engine of :mod:`repro.marketplace.sharding`).
        Both produce byte-identical journals and final state; like
        ``n_shards`` it is an execution knob, deliberately excluded from
        :meth:`to_dict` so the journal fingerprint — and therefore resume
        compatibility — is engine-independent.
    n_shards:
        Campaign shards of the ``sharded`` engine (ignored by
        ``reference``).
    """

    router: str = "least_loaded"
    routing_engine: str = "indexed"
    votes_per_task: int = 3
    tasks_per_tick: int = 2
    answer_delay: int = 1
    max_concurrent: int = 8
    aggregator: str = "majority"
    drift: DriftConfig = field(default_factory=DriftConfig)
    reselect_fraction: float = 0.5
    qualification: QualificationPolicy = field(default_factory=QualificationPolicy)
    prestudy_questions: int = 12
    selection_rounds_per_tick: int = 1
    requalify_ticks: int = 1
    max_reselections: int = 2
    total_tasks: Optional[int] = None
    tick_engine: str = "reference"
    n_shards: int = 1

    def __post_init__(self) -> None:
        if self.tick_engine not in TICK_ENGINES:
            raise ValueError(
                f"unknown tick engine {self.tick_engine!r}; "
                f"choose from: {', '.join(TICK_ENGINES)}"
            )
        if self.n_shards <= 0:
            raise ValueError("n_shards must be positive")
        if self.tasks_per_tick <= 0:
            raise ValueError("tasks_per_tick must be positive")
        if self.answer_delay < 0:
            raise ValueError("answer_delay must be non-negative")
        if self.prestudy_questions <= 0:
            raise ValueError("prestudy_questions must be positive")
        if self.selection_rounds_per_tick <= 0:
            raise ValueError("selection_rounds_per_tick must be positive")
        if self.requalify_ticks < 0:
            raise ValueError("requalify_ticks must be non-negative")
        if self.max_reselections < 0:
            raise ValueError("max_reselections must be non-negative")
        if self.total_tasks is not None and self.total_tasks <= 0:
            raise ValueError("total_tasks must be positive when given")
        if self.routing_engine not in known_routing_engines():
            raise ValueError(
                f"unknown routing engine {self.routing_engine!r}; "
                f"choose from: {', '.join(known_routing_engines())}"
            )
        resolve_router_name(self.router)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable representation (part of the journal fingerprint)."""
        return {
            "router": self.router,
            "routing_engine": self.routing_engine,
            "votes_per_task": self.votes_per_task,
            "tasks_per_tick": self.tasks_per_tick,
            "answer_delay": self.answer_delay,
            "max_concurrent": self.max_concurrent,
            "aggregator": self.aggregator,
            "drift": asdict(self.drift),
            "reselect_fraction": self.reselect_fraction,
            "qualification": asdict(self.qualification),
            "prestudy_questions": self.prestudy_questions,
            "selection_rounds_per_tick": self.selection_rounds_per_tick,
            "requalify_ticks": self.requalify_ticks,
            "max_reselections": self.max_reselections,
            "total_tasks": self.total_tasks,
        }


@dataclass
class MarketWorker:
    """One worker as the marketplace registry sees it.

    ``behavior`` is the worker's target-domain behaviour curve (the
    scenario engine's :class:`~repro.workers.behavior.WorkerBehavior`):
    when present, target-domain answers follow
    ``behavior.accuracy_at(exposure_offset + answer_count)`` — a learner
    keeps improving, a drifter decays past its drift exposure — which is
    what makes drift-triggered re-selection observable end to end.
    Non-target domains (and workers without a curve) answer at the static
    ``accuracies`` entry, 0.5 when unknown.
    """

    worker_id: str
    serving: ServingWorker
    origin: str  # "selected" | "arrival"
    home: Optional[str]  # campaign name for selected workers, None for arrivals
    accuracies: Dict[str, float]
    target_domain: str = "target"
    behavior: Optional[object] = None
    exposure_offset: float = 0.0
    present: bool = True
    answer_counts: Dict[str, int] = field(default_factory=dict)
    arrived_tick: int = 0
    departed_tick: Optional[int] = None


class Marketplace:
    """Shared worker registry with open-world churn and answer streams."""

    def __init__(self, config: MarketplaceConfig, population: PopulationConfig, seed: int = 0) -> None:
        self._config = config
        self._population = population
        self._seed = int(seed)
        self._workers: Dict[str, MarketWorker] = {}
        self._handles: List[CampaignHandle] = []
        self._arrival_index = 0
        self._answer_seed = derive_seed(self._seed, "marketplace", "answers")
        self._prestudy_seed = derive_seed(self._seed, "marketplace", "prestudy")
        self.arrivals_admitted = 0
        self.arrivals_rejected = 0
        self.departures = 0

    # ------------------------------------------------------------------ #
    @property
    def workers(self) -> Dict[str, MarketWorker]:
        """The registry (live view; do not mutate)."""
        return self._workers

    def attach(self, handle: CampaignHandle) -> None:
        """Register a campaign handle for churn notifications."""
        self._handles.append(handle)

    def present_ids(self) -> List[str]:
        """Ids of present workers, sorted (the deterministic churn order)."""
        return sorted(gid for gid, worker in self._workers.items() if worker.present)

    def is_present(self, worker_id: str) -> bool:
        worker = self._workers.get(worker_id)
        return worker is not None and worker.present

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def register_selected(
        self,
        handle: CampaignHandle,
        manifest: SelectionManifest,
        tick: int,
        behaviors: Optional[Mapping[str, object]] = None,
    ) -> List[ServingWorker]:
        """Register a finished selection's workers for their home campaign.

        Worker ids are namespaced ``"<campaign>:<worker>"`` so two
        campaigns selecting positionally identical ids never collide.
        Returns the campaign's initial pool members: the selected workers
        followed by the shared arrivals already qualified on its domain.
        """
        policy = self._config.qualification
        members: List[ServingWorker] = []
        for worker_id in manifest.worker_ids:
            gid = f"{handle.spec.name}:{worker_id}"
            if gid in self._workers:
                raise ValueError(f"worker {gid!r} is already registered")
            qualifications = {
                manifest.target_domain: qualification_for(
                    policy,
                    gid,
                    manifest.target_domain,
                    estimate=manifest.target_estimates[worker_id],
                    questions=manifest.training_questions[worker_id],
                )
            }
            accuracies = {manifest.target_domain: float(manifest.final_accuracies[worker_id])}
            profile = manifest.profiles.get(worker_id)
            if profile is not None:
                for domain in profile.domains:
                    qualifications[domain] = qualification_for(
                        policy,
                        gid,
                        domain,
                        estimate=profile.accuracies[domain],
                        questions=profile.task_counts[domain],
                    )
                    accuracies[domain] = float(profile.accuracies[domain])
            serving = ServingWorker(
                worker_id=gid,
                qualifications=qualifications,
                max_concurrent=self._config.max_concurrent,
            )
            self._workers[gid] = MarketWorker(
                worker_id=gid,
                serving=serving,
                origin="selected",
                home=handle.spec.name,
                accuracies=accuracies,
                target_domain=manifest.target_domain,
                behavior=(behaviors or {}).get(worker_id),
                exposure_offset=float(manifest.training_questions[worker_id]),
                arrived_tick=tick,
            )
            members.append(serving)
        exclude = {worker.worker_id for worker in members}
        members.extend(self.shared_candidates(manifest.target_domain, exclude))
        return members

    def shared_candidates(self, domain: str, exclude: Sequence[str] = ()) -> List[ServingWorker]:
        """Present shared arrivals qualified on ``domain``, in arrival order."""
        excluded = set(exclude)
        return [
            worker.serving
            for worker in self._workers.values()
            if worker.present
            and worker.origin == "arrival"
            and worker.worker_id not in excluded
            and worker.serving.tier_on(domain) > QualificationTier.UNQUALIFIED
        ]

    # ------------------------------------------------------------------ #
    # Churn
    # ------------------------------------------------------------------ #
    def admit_arrivals(self, tick: int, count: int) -> List[Dict[str, object]]:
        """Sample ``count`` arrivals, prestudy-qualify them, admit the worthy.

        Each arrival answers ``prestudy_questions`` golden questions on
        the population's target domain (counter-based draws, learning from
        each revealed answer); the observed accuracy feeds the
        qualification policy.  A worker landing in the unqualified tier is
        turned away; an admitted worker joins the pool of every *serving*
        campaign whose domain it qualifies on.
        """
        policy = self._config.qualification
        n_questions = self._config.prestudy_questions
        target = self._population.target_domain
        events: List[Dict[str, object]] = []
        for _ in range(count):
            index = self._arrival_index
            self._arrival_index += 1
            behavior = sample_learning_population(
                self._population,
                1,
                rng=derive_seed(self._seed, "marketplace", "arrival", index),
                id_prefix=ARRIVAL_PREFIX,
                id_offset=index,
            )[0]
            gid = behavior.profile.worker_id
            uniforms = counter_uniforms(
                stream_seeds(self._prestudy_seed, token_hashes([gid])), n_questions
            )[0]
            correct = sum(
                int(uniforms[i] < behavior.accuracy_at(float(i))) for i in range(n_questions)
            )
            observed = correct / n_questions
            tier = policy.qualify(observed, n_questions)
            admitted = tier > QualificationTier.UNQUALIFIED
            events.append(
                {
                    "worker_id": gid,
                    "observed": observed,
                    "tier": tier.name.lower(),
                    "admitted": admitted,
                }
            )
            if not admitted:
                self.arrivals_rejected += 1
                continue
            self.arrivals_admitted += 1
            qualifications = {
                target: qualification_for(policy, gid, target, estimate=observed, questions=n_questions)
            }
            accuracies = {target: float(behavior.accuracy_at(float(n_questions)))}
            profile = behavior.profile
            for domain in profile.domains:
                qualifications[domain] = qualification_for(
                    policy,
                    gid,
                    domain,
                    estimate=profile.accuracies[domain],
                    questions=profile.task_counts[domain],
                )
                accuracies[domain] = float(profile.accuracies[domain])
            serving = ServingWorker(
                worker_id=gid,
                qualifications=qualifications,
                max_concurrent=self._config.max_concurrent,
            )
            self._workers[gid] = MarketWorker(
                worker_id=gid,
                serving=serving,
                origin="arrival",
                home=None,
                accuracies=accuracies,
                target_domain=target,
                behavior=behavior,
                exposure_offset=float(n_questions),
                arrived_tick=tick,
            )
            # The SAME ServingWorker object joins every serving pool, so
            # its concurrency cap is shared across campaigns by identity.
            for handle in self._handles:
                if (
                    handle.phase is CampaignPhase.SERVING
                    and handle.pool is not None
                    and serving.tier_on(handle.target_domain) > QualificationTier.UNQUALIFIED
                ):
                    handle.pool.add_worker(serving)
        return events

    def depart(self, worker_id: str, tick: int) -> List[Dict[str, object]]:
        """Process one departure: invalidate in-flight votes, leave the pools.

        Invalidation happens *before* pool removal so replacement votes
        can be routed while membership is still consistent; the routers'
        membership hooks then drop any derived state for the worker.
        Returns the invalidation records (annotated with the campaign).
        """
        worker = self._workers[worker_id]
        worker.present = False
        worker.departed_tick = tick
        self.departures += 1
        invalidations: List[Dict[str, object]] = []
        for handle in self._handles:
            if handle.pool is None or worker_id not in handle.pool:
                continue
            if handle.phase is CampaignPhase.SERVING and handle.service is not None:
                records = handle.service.invalidate_worker(worker_id)
                handle.on_invalidations(records, tick)
                for record in records:
                    invalidations.append({"campaign": handle.spec.name, **record})
            handle.pool.remove_worker(worker_id)
        return invalidations

    # ------------------------------------------------------------------ #
    # Answering and re-qualification
    # ------------------------------------------------------------------ #
    def answer(self, worker_id: str, task: Task, campaign: str) -> bool:
        """One worker's answer to one task (counter-based, per-stream draws).

        Answer streams are keyed per ``(campaign, worker)`` — the stream
        seed mixes in the campaign name and the draw counter advances per
        campaign — so one campaign's answer schedule never perturbs
        another's.  That independence is what lets the sharded tick engine
        draw answers for different campaigns in parallel processes and
        still match the serial engine bit for bit.  Target-domain accuracy
        follows the worker's behaviour curve at its current per-campaign
        exposure when one is registered (so drifters decay and learners
        improve mid-serving); other domains use the static registered
        accuracy, 0.5 when unknown.
        """
        worker = self._workers[worker_id]
        count = worker.answer_counts.get(campaign, 0)
        worker.answer_counts[campaign] = count + 1
        return simulate_answer(
            self._answer_seed,
            worker_id,
            campaign,
            task,
            behavior=worker.behavior,
            target_domain=worker.target_domain,
            accuracies=worker.accuracies,
            exposure_offset=worker.exposure_offset,
            answer_count=count,
        )

    def requalify(self, handle: CampaignHandle, tick: int) -> List[ServingWorker]:
        """Re-qualify a campaign's candidates from live serving evidence.

        Candidates are the campaign's own present selected workers plus
        the present shared arrivals.  Each candidate's estimate is its
        drift tracker EWMA when warmed up (the live agreement signal),
        falling back to its standing qualification estimate; its question
        count grows by the assignments it completed.  The re-qualified
        top-``k`` (ties broken by worker id) above the unqualified tier
        become the new pool — may be empty when churn has drained the
        marketplace, in which case the campaign stays re-selecting.
        """
        domain = handle.target_domain
        policy = self._config.qualification
        candidates: List[tuple] = []
        for gid, worker in self._workers.items():
            if not worker.present:
                continue
            if worker.home is not None and worker.home != handle.spec.name:
                continue
            standing = worker.serving.qualifications.get(domain)
            base_estimate = standing.estimate if standing is not None else 0.0
            questions = (standing.questions if standing is not None else 0) + worker.serving.completed_total
            ewma = handle.service.tracker.ewma(gid, domain) if handle.service is not None else None
            estimate = float(ewma) if ewma is not None else float(base_estimate)
            requalified = qualification_for(policy, gid, domain, estimate=estimate, questions=questions)
            worker.serving.qualifications[domain] = requalified
            if standing is None or standing.tier is not requalified.tier or standing.estimate != requalified.estimate:
                # The ServingWorker object is shared across campaign pools,
                # so a re-qualification applied here silently invalidates
                # every other pool's domain rankings — announce it on each
                # pool the worker is a member of.
                for attached in self._handles:
                    if attached.pool is not None:
                        attached.pool.notify_qualification_changed(gid, domain)
            if requalified.tier > QualificationTier.UNQUALIFIED:
                candidates.append((-estimate, gid))
        candidates.sort()
        k = handle.campaign.k
        return [self._workers[gid].serving for _, gid in candidates[:k]]


@dataclass(frozen=True)
class MarketplaceReport:
    """Outcome of one orchestrator run (JSON-serialisable via ``to_dict``)."""

    n_ticks: int
    campaigns: List[Dict[str, object]]
    marketplace: Dict[str, object]
    elapsed_s: float

    def to_dict(self) -> Dict[str, object]:
        return {
            "n_ticks": self.n_ticks,
            "campaigns": [dict(campaign) for campaign in self.campaigns],
            "marketplace": dict(self.marketplace),
            "elapsed_s": self.elapsed_s,
        }


class _OrchestratorMetrics:
    """Pre-bound orchestrator metric children (one attribute bump per event)."""

    __slots__ = (
        "ticks",
        "admitted",
        "rejected",
        "departures",
        "invalidations",
        "campaign_events",
        "journal_events",
        "journal_flushes",
        "elapsed",
    )

    def __init__(self, registry) -> None:
        self.ticks = registry.counter("marketplace.ticks", "marketplace ticks executed")
        self.admitted = registry.counter(
            "marketplace.arrivals.admitted", "churn arrivals admitted into the marketplace"
        )
        self.rejected = registry.counter(
            "marketplace.arrivals.rejected", "churn arrivals turned away by the prestudy qualification"
        )
        self.departures = registry.counter(
            "marketplace.departures", "workers departed from the marketplace"
        )
        self.invalidations = registry.counter(
            "marketplace.invalidations", "in-flight vote invalidations caused by departures"
        )
        self.campaign_events = registry.counter(
            "marketplace.campaign.events",
            "per-campaign lifecycle events journaled each tick",
            ("type",),
        )
        self.journal_events = registry.counter(
            "marketplace.journal.events", "events appended to the tick journal"
        )
        self.journal_flushes = registry.counter(
            "marketplace.journal.flushes",
            "journal flush batches (depends on tick_batch; excluded from stable snapshots)",
            volatile=True,
        )
        self.elapsed = registry.gauge(
            "marketplace.run.elapsed_seconds",
            "wall-clock duration of the last orchestrator run",
            volatile=True,
        )


class MarketplaceOrchestrator:
    """Drive N campaigns against one churning marketplace, tick by tick.

    ``telemetry`` is deliberately *not* part of :class:`MarketplaceConfig`:
    the config is the journal fingerprint, and observing a run must never
    change what the run is.
    """

    def __init__(
        self,
        specs: Sequence[CampaignSpec],
        config: Optional[MarketplaceConfig] = None,
        churn: Optional[ChurnConfig] = None,
        journal_path: Optional[object] = None,
        population: Optional[PopulationConfig] = None,
        seed: int = 0,
        telemetry=None,
        shard_executor: str = "process",
    ) -> None:
        specs = list(specs)
        if not specs:
            raise ValueError("the orchestrator needs at least one campaign spec")
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ValueError(f"campaign names must be unique, got {names}")
        self._specs = specs
        self._config = config or MarketplaceConfig()
        self._churn_config = churn or ChurnConfig()
        self._journal = EventJournal(journal_path) if journal_path is not None else None
        self._population = population
        self._seed = int(seed)
        self._marketplace: Optional[Marketplace] = None
        self._handles: List[CampaignHandle] = []
        self._telemetry = telemetry if telemetry is not None and telemetry.enabled else None
        self._metrics = (
            _OrchestratorMetrics(self._telemetry.registry) if self._telemetry is not None else None
        )
        # How the sharded engine runs its shards ("process" forks one
        # process per shard, "inline" runs them in-process). An execution
        # detail like telemetry: never part of the config fingerprint.
        self._shard_executor = shard_executor

    # ------------------------------------------------------------------ #
    @property
    def journal(self) -> Optional[EventJournal]:
        return self._journal

    @property
    def telemetry(self):
        """The telemetry bundle this run reports through (``None`` when off)."""
        return self._telemetry

    @property
    def marketplace(self) -> Optional[Marketplace]:
        """The registry of the most recent :meth:`run` (``None`` before one)."""
        return self._marketplace

    @property
    def handles(self) -> List[CampaignHandle]:
        """The campaign handles of the most recent :meth:`run`."""
        return list(self._handles)

    def fingerprint(self) -> Dict[str, object]:
        """The configuration fingerprint embedded in the journal header."""
        return {
            "seed": self._seed,
            "campaigns": [spec.to_dict() for spec in self._specs],
            "churn": self._churn_config.to_dict(),
            "config": self._config.to_dict(),
        }

    # ------------------------------------------------------------------ #
    def _setup(self) -> None:
        """Build fresh run state (registry, churn model, handles)."""
        self._handles = [CampaignHandle(spec, self._config, None) for spec in self._specs]
        # The population recipe defaults to the first campaign's dataset
        # population — arrivals are drawn from the same worker universe
        # the campaigns select from.
        population = self._population
        if population is None:
            population = self._handles[0].campaign.instance.spec.population
        self._marketplace = Marketplace(self._config, population, self._seed)
        for handle in self._handles:
            handle._marketplace = self._marketplace
            handle._telemetry = self._telemetry
            self._marketplace.attach(handle)
        self._churn = ChurnModel(self._churn_config, self._seed)

    def _tick(self, tick: int) -> Dict[str, object]:
        """One deterministic tick: departures, arrivals, campaign steps."""
        assert self._marketplace is not None
        departing = self._churn.departures_among(self._marketplace.present_ids(), tick)
        invalidations: List[Dict[str, object]] = []
        for worker_id in departing:
            invalidations.extend(self._marketplace.depart(worker_id, tick))
        arrivals = self._marketplace.admit_arrivals(tick, self._churn.arrivals_at(tick))
        campaigns = [handle.step(tick) for handle in self._handles]
        metrics = self._metrics
        if metrics is not None:
            metrics.ticks.inc()
            metrics.departures.inc(len(departing))
            metrics.invalidations.inc(len(invalidations))
            for event in arrivals:
                (metrics.admitted if event["admitted"] else metrics.rejected).inc()
            for event in campaigns:
                metrics.campaign_events.labels(str(event["phase"])).inc()
        return {
            "type": "tick",
            "tick": tick,
            "departures": list(departing),
            "invalidations": invalidations,
            "arrivals": arrivals,
            "campaigns": campaigns,
        }

    def run(self, n_ticks: int, tick_batch: int = 1, resume: bool = False) -> MarketplaceReport:
        """Run ``n_ticks`` ticks, journaling in batches of ``tick_batch``.

        With ``resume=True`` (requires a journal) the run first validates
        the journal's fingerprint, then replays the deterministic event
        loop against the stored tick records — any divergence raises
        :class:`~repro.marketplace.journal.JournalCorruptionError` — and
        finally continues appending where the journal ends.  Because the
        loop is a pure function of the configuration, resuming from *any*
        journal prefix reproduces the identical final journal.
        """
        if n_ticks < 0:
            raise ValueError("n_ticks must be non-negative")
        if tick_batch <= 0:
            raise ValueError("tick_batch must be positive")
        start = perf_counter()
        if self._config.tick_engine == "sharded":
            # Imported lazily: sharding imports this module at load time.
            from repro.marketplace.sharding import ShardedTickEngine

            self._handles = []
            engine = ShardedTickEngine(self, executor=self._shard_executor)
            self._marketplace = engine.marketplace
            try:
                self._journal_loop(engine.tick, n_ticks, tick_batch, resume)
                campaigns = engine.finalize()
            finally:
                engine.close()
            elapsed_s = perf_counter() - start
            if self._metrics is not None:
                self._metrics.elapsed.set(elapsed_s)
            return self._report(n_ticks, elapsed_s, campaigns=campaigns)
        self._setup()
        self._journal_loop(self._tick, n_ticks, tick_batch, resume)
        elapsed_s = perf_counter() - start
        if self._metrics is not None:
            self._metrics.elapsed.set(elapsed_s)
        return self._report(n_ticks, elapsed_s)

    def _journal_loop(self, tick_fn, n_ticks: int, tick_batch: int, resume: bool) -> None:
        """Drive ``tick_fn`` over ``n_ticks`` with replay + batched journaling."""
        replayed: List[Dict[str, object]] = []
        if self._journal is not None:
            if resume:
                replayed = self._journal.check_fingerprint(self.fingerprint())
            else:
                self._journal.begin(self.fingerprint())
        elif resume:
            raise ValueError("resume=True requires a journal path")
        buffer: List[Dict[str, object]] = []
        for tick in range(n_ticks):
            record = tick_fn(tick)
            if tick < len(replayed):
                if encode_record(record) != encode_record(replayed[tick]):
                    raise JournalCorruptionError(
                        f"{self._journal.path}: replay diverged from the journal at tick {tick}; "
                        "the journal does not belong to this configuration's event stream"
                    )
                continue
            if self._journal is not None:
                buffer.append(record)
                if len(buffer) >= tick_batch:
                    self._flush(buffer)
                    buffer = []
        if self._journal is not None and buffer:
            self._flush(buffer)

    def _flush(self, buffer: List[Dict[str, object]]) -> None:
        """Append one batch of tick records to the journal."""
        assert self._journal is not None
        self._journal.append_ticks(buffer)
        if self._metrics is not None:
            self._metrics.journal_events.inc(len(buffer))
            self._metrics.journal_flushes.inc()

    def _report(
        self,
        n_ticks: int,
        elapsed_s: float,
        campaigns: Optional[List[Dict[str, object]]] = None,
    ) -> MarketplaceReport:
        assert self._marketplace is not None
        present = self._marketplace.present_ids()
        if campaigns is None:
            campaigns = [handle.summary() for handle in self._handles]
        return MarketplaceReport(
            n_ticks=n_ticks,
            campaigns=campaigns,
            marketplace={
                "arrivals_admitted": self._marketplace.arrivals_admitted,
                "arrivals_rejected": self._marketplace.arrivals_rejected,
                "departures": self._marketplace.departures,
                "workers_total": len(self._marketplace.workers),
                "workers_present": len(present),
            },
            elapsed_s=elapsed_s,
        )


__all__ = [
    "ARRIVAL_PREFIX",
    "TICK_ENGINES",
    "simulate_answer",
    "MarketplaceConfig",
    "MarketWorker",
    "Marketplace",
    "MarketplaceReport",
    "MarketplaceOrchestrator",
]
