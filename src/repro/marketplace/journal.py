"""Append-only event journal for the marketplace orchestrator.

The orchestrator is a long-lived process: campaigns run for thousands of
ticks against a churning worker marketplace, and losing a half-finished
run to a crash wastes every completed tick.  The journal extends the
fsynced-JSONL discipline of :class:`repro.experiments.store.ResultStore`
to an *event log*: one ``\\n``-terminated JSON line per record, written
append-only, so a crash can corrupt at most the trailing line.

Layout
------
The first line is a **header** record carrying the journal schema version
and the run's configuration *fingerprint* (seed, campaign specs, churn
model, marketplace config).  Every following line is one **tick** record.
Records are encoded with :func:`encode_record` — ``json.dumps`` with
sorted keys — so two runs that produce the same events produce the same
*bytes*, which is what the batch-size-invariance and resume tests
compare.

Durability contract
-------------------
:meth:`EventJournal.append_ticks` concatenates a whole batch of tick
records into **one** ``write`` + ``flush`` + ``fsync``.  Because each
record is its own line and the bytes of a record do not depend on how
records are grouped into writes, a journal written at tick-batch size 1
is byte-identical to one written at batch size 64.

Crash recovery
--------------
:meth:`EventJournal.read` tolerates exactly one undecodable *final* line
(the interrupted append) and rejects corruption anywhere else;
:meth:`EventJournal.append_ticks` truncates such a torn tail before its
first write.  Resume refuses a journal whose header fingerprint does not
match the current run (:class:`JournalFingerprintError`) — mixing ticks
from two differently-configured runs would silently corrupt the trace.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Mapping, Sequence, Tuple

#: Version stamp embedded in the journal header; bump on layout changes.
JOURNAL_SCHEMA_VERSION = 1

#: ``record["type"]`` of the mandatory first record.
HEADER_TYPE = "header"


class JournalError(ValueError):
    """Base class for journal read/replay failures."""


class JournalCorruptionError(JournalError):
    """The journal holds malformed content beyond an interrupted tail."""


class JournalFingerprintError(JournalError):
    """The journal was written by a run with a different configuration."""


def encode_record(record: Mapping[str, object]) -> str:
    """Canonical one-line encoding of a journal record (sorted keys + newline).

    All byte-identity guarantees are stated over this encoding, so replay
    comparisons use the encoded line, not dict equality — tuples vs lists
    or int vs float representation differences cannot slip through.
    """
    return json.dumps(record, sort_keys=True) + "\n"


class EventJournal:
    """One append-only JSONL file: a header line plus one line per tick."""

    def __init__(self, path: os.PathLike) -> None:
        self.path = Path(path)
        self._append_checked = False

    def exists(self) -> bool:
        return self.path.exists()

    def reset(self) -> None:
        """Drop any previous journal content."""
        if self.path.exists():
            self.path.unlink()
        self._append_checked = False

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    def read(self) -> Tuple[Dict[str, object], List[Dict[str, object]]]:
        """Load ``(header, tick_records)``, tolerating one torn final line.

        Raises
        ------
        JournalCorruptionError
            When the journal is missing or empty, its first record is not
            a valid header, its header carries a different schema version,
            or a malformed line is followed by well-formed ones.
        """
        if not self.path.exists():
            raise JournalCorruptionError(f"{self.path}: journal does not exist")
        with open(self.path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        records: List[Dict[str, object]] = []
        for index, line in enumerate(lines):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                record = json.loads(stripped)
            except json.JSONDecodeError:
                if index == len(lines) - 1:
                    # The classic interruption artefact: a partial last line.
                    break
                raise JournalCorruptionError(
                    f"{self.path}: malformed record on line {index + 1} "
                    "(not the final line, so this is not an interrupted append)"
                ) from None
            if not isinstance(record, dict):
                raise JournalCorruptionError(f"{self.path}: line {index + 1} is not a JSON object")
            records.append(record)
        if not records:
            raise JournalCorruptionError(f"{self.path}: journal holds no complete records")
        header = records[0]
        if header.get("type") != HEADER_TYPE:
            raise JournalCorruptionError(f"{self.path}: first record is not a journal header")
        if header.get("schema_version") != JOURNAL_SCHEMA_VERSION:
            raise JournalCorruptionError(
                f"{self.path}: header has schema_version={header.get('schema_version')!r} but "
                f"this version of the journal reads {JOURNAL_SCHEMA_VERSION}; refusing to mix layouts"
            )
        return header, records[1:]

    def check_fingerprint(self, fingerprint: Mapping[str, object]) -> List[Dict[str, object]]:
        """Read the journal and verify its header matches ``fingerprint``.

        Returns the tick records on success; raises
        :class:`JournalFingerprintError` when the stored fingerprint
        differs from the current run's configuration.
        """
        header, ticks = self.read()
        stored = header.get("fingerprint")
        expected = json.loads(json.dumps(fingerprint, sort_keys=True))
        if stored != expected:
            raise JournalFingerprintError(
                f"{self.path}: journal was written under a different configuration "
                f"(stored fingerprint {json.dumps(stored, sort_keys=True)} != current "
                f"{json.dumps(expected, sort_keys=True)}); refusing to resume"
            )
        return ticks

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #
    def _drop_interrupted_trailing_line(self) -> None:
        """Truncate a partial final line left behind by an interrupted append."""
        if not self.path.exists():
            return
        with open(self.path, "rb") as handle:
            handle.seek(0, os.SEEK_END)
            size = handle.tell()
            if size == 0:
                return
            handle.seek(size - 1)
            if handle.read(1) == b"\n":
                return
            handle.seek(0)
            raw = handle.read()
        keep = raw.rfind(b"\n") + 1  # 0 when no newline at all: drop everything
        with open(self.path, "r+b") as handle:
            handle.truncate(keep)

    def begin(self, fingerprint: Mapping[str, object]) -> None:
        """Start a fresh journal: reset and durably write the header."""
        self.reset()
        header = {
            "type": HEADER_TYPE,
            "schema_version": JOURNAL_SCHEMA_VERSION,
            "fingerprint": json.loads(json.dumps(fingerprint, sort_keys=True)),
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "w", encoding="utf-8") as handle:
            handle.write(encode_record(header))
            handle.flush()
            os.fsync(handle.fileno())
        self._append_checked = True

    def append_ticks(self, records: Sequence[Mapping[str, object]]) -> None:
        """Durably append a batch of tick records in one write + fsync.

        Batching amortises the fsync cost without changing the bytes:
        records are newline-delimited, so any grouping of the same record
        sequence into appends produces the identical file.
        """
        if not records:
            return
        if not self._append_checked:
            self._drop_interrupted_trailing_line()
            self._append_checked = True
        payload = "".join(encode_record(record) for record in records)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())


__all__ = [
    "JOURNAL_SCHEMA_VERSION",
    "HEADER_TYPE",
    "JournalError",
    "JournalCorruptionError",
    "JournalFingerprintError",
    "encode_record",
    "EventJournal",
]
