"""Seeded open-world churn: who arrives and who departs at each tick.

The churn draws are **counter-based** (the splitmix64 streams of
:mod:`repro.stats.rng`): every arrival count is a pure function of
``(seed, tick)`` and every departure decision a pure function of
``(seed, worker_id, tick)``.  No generator state is threaded through the
event loop, so the trace is independent of tick batching, of the order
workers are examined in, and of how many campaigns share the
marketplace — which is exactly the property the journal's
batch-size-invariance guarantee rests on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence

import numpy as np

from repro.stats.rng import counter_uniforms, derive_seed, stream_seeds, token_hashes


@dataclass(frozen=True)
class ChurnConfig:
    """Tuning of the marketplace churn model.

    Attributes
    ----------
    arrival_rate:
        Expected new-worker arrivals per tick (Bernoulli thinning over
        ``max_arrivals_per_tick`` slots, so the realised count per tick
        lies in ``[0, max_arrivals_per_tick]``).
    departure_rate:
        Per-present-worker probability of departing at each tick.
    max_arrivals_per_tick:
        Arrival slots evaluated per tick.
    bursts:
        Extra deterministic arrivals injected at specific ticks
        (``{tick: count}``) — models a recruitment push or a demo's
        injected churn burst on top of the random stream.
    """

    arrival_rate: float = 0.5
    departure_rate: float = 0.02
    max_arrivals_per_tick: int = 4
    bursts: Mapping[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.arrival_rate < 0:
            raise ValueError("arrival_rate must be non-negative")
        if not 0.0 <= self.departure_rate <= 1.0:
            raise ValueError("departure_rate must lie in [0, 1]")
        if self.max_arrivals_per_tick <= 0:
            raise ValueError("max_arrivals_per_tick must be positive")
        if self.arrival_rate > self.max_arrivals_per_tick:
            raise ValueError("arrival_rate cannot exceed max_arrivals_per_tick")
        normalized: Dict[int, int] = {}
        for tick, count in dict(self.bursts).items():
            if int(count) < 0:
                raise ValueError(f"burst count at tick {tick} must be non-negative")
            if int(count) > 0:
                normalized[int(tick)] = int(count)
        object.__setattr__(self, "bursts", normalized)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable representation (part of the journal fingerprint)."""
        return {
            "arrival_rate": self.arrival_rate,
            "departure_rate": self.departure_rate,
            "max_arrivals_per_tick": self.max_arrivals_per_tick,
            # JSON object keys are strings; sort for a stable fingerprint.
            "bursts": {str(tick): self.bursts[tick] for tick in sorted(self.bursts)},
        }


class ChurnModel:
    """Counter-based churn draws for one marketplace run."""

    def __init__(self, config: ChurnConfig, seed: int = 0) -> None:
        self._config = config
        self._arrival_seed = derive_seed(seed, "marketplace", "churn", "arrivals")
        self._departure_seed = derive_seed(seed, "marketplace", "churn", "departures")

    @property
    def config(self) -> ChurnConfig:
        return self._config

    def arrivals_at(self, tick: int) -> int:
        """Number of workers arriving at ``tick`` (pure function of the tick)."""
        if tick < 0:
            raise ValueError("tick must be non-negative")
        slots = self._config.max_arrivals_per_tick
        p = min(1.0, self._config.arrival_rate / slots)
        random_count = 0
        if p > 0:
            seeds = stream_seeds(self._arrival_seed, np.asarray([1], dtype=np.uint64), tick)
            uniforms = counter_uniforms(seeds, slots)
            random_count = int((uniforms < p).sum())
        return random_count + self._config.bursts.get(tick, 0)

    def departures_among(self, worker_ids: Sequence[str], tick: int) -> List[str]:
        """Subset of ``worker_ids`` departing at ``tick``, in input order.

        Each decision depends only on ``(seed, worker_id, tick)``, so a
        worker's fate at a tick is unaffected by who else is present.
        """
        if tick < 0:
            raise ValueError("tick must be non-negative")
        if not worker_ids or self._config.departure_rate <= 0:
            return []
        seeds = stream_seeds(self._departure_seed, token_hashes(worker_ids), tick)
        uniforms = counter_uniforms(seeds, 1)[:, 0]
        return [worker_id for worker_id, u in zip(worker_ids, uniforms) if u < self._config.departure_rate]


__all__ = ["ChurnConfig", "ChurnModel"]
