"""Campaign lifecycle inside the marketplace: phases, specs and handles.

A :class:`CampaignHandle` wraps one :class:`repro.campaign.Campaign` in
the four-phase lifecycle the orchestrator drives tick by tick::

    SELECTING --> SERVING --> DONE
                   ^   |
                   |   v
                 RESELECTING

* **SELECTING** — the campaign's elimination rounds run a configured
  number of rounds per tick; when the selection finishes, the selected
  workers are registered into the shared marketplace and a serving pool
  and :class:`~repro.serving.service.AnnotationService` are built (shared
  marketplace arrivals that qualify on the campaign's domain join too).
* **SERVING** — each tick delivers the answers that came due, submits up
  to ``tasks_per_tick`` new working tasks, and watches the drift
  detector.  When the service raises ``reselection_recommended``, the
  handle checkpoints the campaign via ``Campaign.state_dict()``, abandons
  in-flight work (releasing the routing charges so shared workers are not
  leaked) and enters RESELECTING.
* **RESELECTING** — after ``requalify_ticks`` of re-qualification delay
  the campaign is restored from its checkpoint
  (``Campaign.from_state_dict``), the marketplace re-qualifies the
  candidates from their live serving evidence, and a fresh top-``k`` pool
  resumes SERVING.  Abandoned tasks are re-queued first.
* **DONE** — the task stream is exhausted and no votes are outstanding.

The handle is deliberately marketplace-agnostic about *who* answers: all
worker state (latent accuracies, answer streams, presence) lives in the
:class:`~repro.marketplace.orchestrator.Marketplace`.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.campaign import Campaign
from repro.platform.session import BudgetExceededError
from repro.platform.tasks import Task
from repro.serving.pool import ServingPool, ServingWorker
from repro.serving.routing import NoEligibleWorkersError
from repro.serving.service import AnnotationService, ServingConfig, working_task_stream


class CampaignPhase(str, enum.Enum):
    """Lifecycle phase of one campaign inside the marketplace."""

    SELECTING = "selecting"
    SERVING = "serving"
    RESELECTING = "reselecting"
    DONE = "done"


#: Legal phase transitions (enforced by :meth:`CampaignHandle._transition`).
_TRANSITIONS = {
    CampaignPhase.SELECTING: {CampaignPhase.SERVING},
    CampaignPhase.SERVING: {CampaignPhase.RESELECTING, CampaignPhase.DONE},
    CampaignPhase.RESELECTING: {CampaignPhase.SERVING},
    CampaignPhase.DONE: set(),
}


@dataclass(frozen=True)
class CampaignSpec:
    """Recipe of one campaign the orchestrator runs."""

    name: str
    dataset: str
    selector: str = "us"
    k: Optional[int] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a campaign spec needs a non-empty name")
        if ":" in self.name:
            raise ValueError("campaign names must not contain ':' (reserved for worker namespacing)")

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable representation (part of the journal fingerprint)."""
        return {
            "name": self.name,
            "dataset": self.dataset,
            "selector": self.selector,
            "k": self.k,
            "seed": self.seed,
        }


class CampaignHandle:
    """One campaign's lifecycle, driven one tick at a time.

    Parameters
    ----------
    spec:
        The campaign recipe.
    config:
        The orchestrator-wide :class:`~repro.marketplace.orchestrator.MarketplaceConfig`.
    marketplace:
        The shared :class:`~repro.marketplace.orchestrator.Marketplace`
        (worker registry, answer streams, qualification).
    """

    def __init__(self, spec: CampaignSpec, config, marketplace) -> None:
        self.spec = spec
        self._config = config
        self._marketplace = marketplace
        self.phase = CampaignPhase.SELECTING
        self.campaign = Campaign(
            dataset=spec.dataset, selector=spec.selector, k=spec.k, seed=spec.seed
        )
        self.pool: Optional[ServingPool] = None
        self.service: Optional[AnnotationService] = None
        self._tasks: List[Task] = []
        self._task_by_id: Dict[str, Task] = {}
        self._cursor = 0
        self._submitted = 0
        self._retry: Deque[str] = deque()
        self._scheduled: Deque[Tuple[int, str, str]] = deque()
        self._checkpoint: Optional[Dict[str, object]] = None
        self.reselections = 0
        self.stalled_ticks = 0
        self.invalidated_votes = 0
        self.answers_delivered = 0
        self._labels: Dict[str, bool] = {}

    # ------------------------------------------------------------------ #
    @property
    def target_domain(self) -> str:
        return self.campaign.instance.target_domain

    @property
    def tasks_routed(self) -> int:
        """Task submissions so far (a re-queued task counts once per submission)."""
        return self._submitted

    def _transition(self, phase: CampaignPhase) -> None:
        if phase not in _TRANSITIONS[self.phase]:
            raise RuntimeError(f"illegal campaign phase transition {self.phase.value} -> {phase.value}")
        self.phase = phase

    # ------------------------------------------------------------------ #
    # Per-tick driving
    # ------------------------------------------------------------------ #
    def step(self, tick: int) -> Dict[str, object]:
        """Advance one tick; returns this campaign's journal event."""
        event: Dict[str, object] = {"campaign": self.spec.name, "phase": self.phase.value}
        if self.phase is CampaignPhase.SELECTING:
            self._step_selecting(tick, event)
        elif self.phase is CampaignPhase.SERVING:
            self._step_serving(tick, event)
        elif self.phase is CampaignPhase.RESELECTING:
            self._step_reselecting(tick, event)
        event["phase"] = self.phase.value
        return event

    def _step_selecting(self, tick: int, event: Dict[str, object]) -> None:
        for _ in range(self._config.selection_rounds_per_tick):
            if self.campaign.step() is None:
                break
        event["rounds_completed"] = self.campaign.rounds_completed
        if not self.campaign.finished:
            return
        manifest = self.campaign.selection_manifest()
        behaviors = {worker.worker_id: worker for worker in self.campaign.instance.pool}
        members = self._marketplace.register_selected(self, manifest, tick, behaviors=behaviors)
        self._build_serving(members)
        self._tasks = working_task_stream(self.campaign.instance.task_bank, self._config.total_tasks)
        self._task_by_id = {task.task_id: task for task in self._tasks}
        event["selected"] = [worker.worker_id for worker in members]
        self._transition(CampaignPhase.SERVING)

    def _step_serving(self, tick: int, event: Dict[str, object]) -> None:
        assert self.service is not None
        # Deferred-ready tasks (completed by a departure's invalidation)
        # finalise at one pinned point — the start of the next serving
        # step — so their drift demotions land identically under the
        # serial and sharded tick engines.
        self.service.finalize_ready()
        event["delivered"] = self._deliver_due_answers(tick)
        submitted, stalled = self._submit_tasks(tick)
        event["submitted"] = submitted
        event["stalled"] = stalled
        if stalled:
            self.stalled_ticks += 1
        if (
            self.service.reselection_recommended
            and self.reselections < self._config.max_reselections
        ):
            self._enter_reselecting(tick, event)
            return
        event["reselection_triggered"] = False
        if (
            self._cursor >= len(self._tasks)
            and not self._retry
            and not self.service.pending_task_ids
            and not self._scheduled
        ):
            self._merge_labels()
            self._transition(CampaignPhase.DONE)

    def _step_reselecting(self, tick: int, event: Dict[str, object]) -> None:
        assert self._checkpoint is not None
        if tick < int(self._checkpoint["resume_at_tick"]):
            return
        # Restoring from the checkpoint replays the recorded selection
        # deterministically — the state_dict round-trip is exercised on
        # every drift-triggered re-selection.
        self.campaign = Campaign.from_state_dict(self._checkpoint["campaign"])
        members = self._marketplace.requalify(self, tick)
        if not members:
            # Nobody qualifies right now; retry once churn refills the pool.
            event["reselected"] = []
            return
        self._build_serving(members)
        event["reselected"] = [worker.worker_id for worker in members]
        self.reselections += 1
        self._transition(CampaignPhase.SERVING)

    # ------------------------------------------------------------------ #
    # Serving mechanics
    # ------------------------------------------------------------------ #
    def _build_serving(self, members: List[ServingWorker]) -> None:
        config = self._config
        self.pool = ServingPool(members, policy=config.qualification)
        self.service = AnnotationService(
            self.pool,
            ServingConfig(
                router=config.router,
                routing_engine=config.routing_engine,
                votes_per_task=config.votes_per_task,
                max_concurrent=config.max_concurrent,
                aggregator=config.aggregator,
                drift=config.drift,
                reselect_fraction=config.reselect_fraction,
            ),
            # Threaded in by the orchestrator's _setup (None for a handle
            # built outside an orchestrator, e.g. in unit tests).
            telemetry=getattr(self, "_telemetry", None),
            defer_invalidation_finalize=True,
        )

    def _deliver_due_answers(self, tick: int) -> List[List[object]]:
        assert self.service is not None
        delivered: List[List[object]] = []
        while self._scheduled and self._scheduled[0][0] <= tick:
            _, task_id, worker_id = self._scheduled.popleft()
            if not self.service.is_awaiting(task_id, worker_id):
                # The vote was invalidated (departure) after scheduling.
                continue
            task = self._task_by_id[task_id]
            answer = self._marketplace.answer(worker_id, task, self.spec.name)
            self.service.record_answer(task_id, worker_id, answer)
            self.answers_delivered += 1
            delivered.append([task_id, worker_id, bool(answer)])
        return delivered

    def _next_task(self) -> Optional[Task]:
        if self._retry:
            return self._task_by_id[self._retry[0]]
        if self._cursor < len(self._tasks):
            return self._tasks[self._cursor]
        return None

    def _consume_task(self) -> None:
        if self._retry:
            self._retry.popleft()
        else:
            self._cursor += 1

    def _submit_tasks(self, tick: int) -> Tuple[List[List[object]], bool]:
        assert self.service is not None
        submitted: List[List[object]] = []
        for _ in range(self._config.tasks_per_tick):
            task = self._next_task()
            if task is None:
                break
            try:
                assignment = self.service.submit(task)
            except (NoEligibleWorkersError, BudgetExceededError):
                # The task is not consumed: it waits for capacity.
                return submitted, True
            self._consume_task()
            self._submitted += 1
            due = tick + self._config.answer_delay
            for worker_id in assignment.worker_ids:
                self._scheduled.append((due, task.task_id, worker_id))
            submitted.append([task.task_id, list(assignment.worker_ids)])
        return submitted, False

    def _enter_reselecting(self, tick: int, event: Dict[str, object]) -> None:
        assert self.service is not None
        event["reselection_triggered"] = True
        event["reselection_domains"] = list(self.service.reselection_domains)
        self._merge_labels()
        abandoned = self.service.abandon_pending()
        self._scheduled.clear()
        for task_id in abandoned:
            self._retry.append(task_id)
        self._checkpoint = {
            "campaign": self.campaign.state_dict(),
            "tick": tick,
            "resume_at_tick": tick + self._config.requalify_ticks,
            "reselection_index": self.reselections,
        }
        event["abandoned"] = list(abandoned)
        self._transition(CampaignPhase.RESELECTING)

    def on_invalidations(self, records: List[Dict[str, object]], tick: int) -> None:
        """React to departure-driven vote invalidations from the marketplace.

        Replacement votes routed by the service get their answers
        scheduled like any other assignment.
        """
        due = tick + self._config.answer_delay
        for record in records:
            self.invalidated_votes += 1
            for worker_id in record["replacements"]:
                self._scheduled.append((due, str(record["task_id"]), str(worker_id)))

    def _merge_labels(self) -> None:
        if self.service is not None:
            self._labels.update(self.service.labels())

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def labels(self) -> Dict[str, bool]:
        """Aggregated labels across all serving segments (later segments win)."""
        merged = dict(self._labels)
        if self.service is not None and self.phase is not CampaignPhase.DONE:
            merged.update(self.service.labels())
        return merged

    def label_accuracy(self) -> Optional[float]:
        """Accuracy of the aggregated labels against the stream's gold labels."""
        labels = self.labels()
        scored = [task_id for task_id in labels if task_id in self._task_by_id]
        if not scored:
            return None
        hits = sum(labels[task_id] == self._task_by_id[task_id].gold_label for task_id in scored)
        return hits / len(scored)

    def summary(self) -> Dict[str, object]:
        """JSON-serialisable final state of this campaign."""
        return {
            "name": self.spec.name,
            "dataset": self.spec.dataset,
            "selector": self.spec.selector,
            "phase": self.phase.value,
            "tasks_routed": self.tasks_routed,
            "answers_delivered": self.answers_delivered,
            "n_labels": len(self.labels()),
            "label_accuracy": self.label_accuracy(),
            "reselections": self.reselections,
            "stalled_ticks": self.stalled_ticks,
            "invalidated_votes": self.invalidated_votes,
        }


__all__ = ["CampaignPhase", "CampaignSpec", "CampaignHandle"]
