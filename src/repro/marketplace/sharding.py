"""The sharded marketplace tick engine: parallel campaign shards, serial commits.

The reference engine (:meth:`MarketplaceOrchestrator._tick`) steps every
campaign in one process.  This module splits each tick into two phases:

* **Parallel phase** — campaigns are deterministically partitioned into
  shards (:func:`shard_of`: a stable splitmix64 hash of the campaign
  name, *not* Python's salted ``hash``).  Each shard owns full replica
  campaign state — the real :class:`~repro.marketplace.lifecycle.CampaignHandle`
  machinery over replica pools — and does everything *except* routing:
  selection rounds, answer simulation, aggregation, drift tracking and
  task bookkeeping.  Instead of routing, a shard emits **intents** (which
  tasks want votes) plus the deltas the parent must mirror (delivered
  answers, drift demotions).
* **Serial commit phase** — the parent merges shard outputs in spec
  order against the *true* shared pools: it applies demotions and
  delivered-answer completions, routes every intent through the real
  routers (so shared-worker capacity is reconciled exactly as the
  reference engine would), performs registrations/re-qualifications, and
  assembles the tick's journal event.

Routing outcomes flow back to the shards with a one-tick lag: intents
emitted at step ``t`` are routed at commit ``t`` and adopted by the shard
at input ``t+1``.  Because an answer is only delivered at least one tick
after its vote was routed (delivery precedes submission inside a step),
the lag is invisible — the sharded engine produces **byte-identical
journals and final state** to the reference engine at any
``(n_shards, tick_batch)``.

Worker churn stays parent-side: the parent runs the same
:class:`~repro.marketplace.orchestrator.Marketplace` departure/arrival
code over lightweight :class:`CommitCampaign` adapters, computes
invalidation records with the true routers, and ships the records plus
joined/departed workers to the shards, which replay them verbatim.
Answer draws are per ``(campaign, worker)`` counter streams
(:func:`repro.marketplace.orchestrator.simulate_answer`), so a shard can
draw its campaigns' answers without consulting the parent registry.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.campaign import Campaign
from repro.marketplace.lifecycle import CampaignHandle, CampaignPhase, CampaignSpec
from repro.obs.timing import perf_counter
from repro.platform.tasks import Task
from repro.serving.pool import ServingPool, ServingWorker
from repro.serving.routing import NoEligibleWorkersError, make_router, router_engines
from repro.serving.service import working_task_stream
from repro.stats.rng import derive_seed, token_hashes


def shard_of(campaign_name: str, n_shards: int) -> int:
    """Deterministic shard index of a campaign (stable across runs/processes).

    Uses the repo's splitmix64 token hash — Python's builtin ``hash`` is
    salted per process and would scatter campaigns differently on every
    run.
    """
    if n_shards <= 0:
        raise ValueError("n_shards must be positive")
    return int(token_hashes([campaign_name])[0]) % n_shards


@dataclass
class WireWorker:
    """A worker's answer-simulation profile, shipped parent -> shard.

    Carries exactly what a shard needs to (a) build a replica pool member
    and (b) draw the worker's answers for one campaign.  Qualifications
    deliberately do **not** travel: replica pool members carry empty
    qualification maps, so replica-side drift demotions are no-ops and
    the true tiers live only on the parent's shared pools.
    """

    worker_id: str
    max_concurrent: int
    target_domain: str
    exposure_offset: float
    accuracies: Dict[str, float]
    behavior: Optional[object] = None


class _ShardAnswerBook:
    """Quacks like ``Marketplace`` for a shard handle's answer lookups."""

    def __init__(self, handle: "ShardCampaignHandle") -> None:
        self._handle = handle

    def answer(self, worker_id: str, task: Task, campaign: str) -> bool:
        # Import here: orchestrator imports this module lazily from run(),
        # and this module must stay importable before orchestrator finishes
        # loading during that dance.
        from repro.marketplace.orchestrator import simulate_answer

        handle = self._handle
        wire = handle._wire[worker_id]
        count = handle._answer_counts.get(worker_id, 0)
        handle._answer_counts[worker_id] = count + 1
        return simulate_answer(
            handle._answer_seed,
            worker_id,
            campaign,
            task,
            behavior=wire.behavior,
            target_domain=wire.target_domain,
            accuracies=wire.accuracies,
            exposure_offset=wire.exposure_offset,
            answer_count=count,
        )


class ShardCampaignHandle(CampaignHandle):
    """A campaign handle living inside a shard process.

    Reuses the whole :class:`CampaignHandle` serving machinery (replica
    pool, real :class:`~repro.serving.service.AnnotationService`,
    aggregator, drift tracker, task stream, scheduled answers) but never
    routes: :meth:`shard_step` emits intents and deltas, and
    :meth:`apply_outcome` adopts what the parent's commit phase decided.
    """

    def __init__(self, spec: CampaignSpec, config, answer_seed: int) -> None:
        super().__init__(spec, config, marketplace=None)
        self._answer_seed = int(answer_seed)
        self._marketplace = _ShardAnswerBook(self)
        #: Per-worker answer-simulation profiles for THIS campaign.
        self._wire: Dict[str, WireWorker] = {}
        #: Per-worker answer counts for THIS campaign's draw streams.
        self._answer_counts: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # Parallel phase: one shard-local step
    # ------------------------------------------------------------------ #
    def shard_step(self, tick: int) -> Dict[str, object]:
        """Advance one tick locally; returns the shard output payload."""
        out: Dict[str, object] = {"campaign": self.spec.name, "kind": "noop", "core": {}}
        if self.phase is CampaignPhase.SELECTING:
            self._shard_step_selecting(out)
        elif self.phase is CampaignPhase.SERVING:
            self._shard_step_serving(tick, out)
        elif self.phase is CampaignPhase.RESELECTING:
            self._shard_step_reselecting(tick, out)
        return out

    def _shard_step_selecting(self, out: Dict[str, object]) -> None:
        for _ in range(self._config.selection_rounds_per_tick):
            if self.campaign.step() is None:
                break
        out["kind"] = "selecting"
        out["core"] = {"rounds_completed": self.campaign.rounds_completed}
        if not self.campaign.finished:
            return
        out["kind"] = "selection_finished"
        manifest = self.campaign.selection_manifest()
        behaviors = {worker.worker_id: worker for worker in self.campaign.instance.pool}
        out["selection"] = {"manifest": manifest, "behaviors": behaviors}
        # Build the task stream now (it needs the campaign instance, which
        # lives shard-side); the phase transition itself waits for the
        # parent's "build" outcome carrying the true pool membership.
        self._tasks = working_task_stream(self.campaign.instance.task_bank, self._config.total_tasks)
        self._task_by_id = {task.task_id: task for task in self._tasks}

    def _shard_step_serving(self, tick: int, out: Dict[str, object]) -> None:
        assert self.service is not None
        out["kind"] = "serving"
        demote_mark = len(self.service.tracker.events)
        self.service.finalize_ready()
        delivered = self._deliver_due_answers(tick)
        out["core"] = {"delivered": delivered}
        out["intents"] = [
            (task.task_id, task.domain) for task in self._peek_tasks()
        ]
        out["demote_intents"] = [
            (event.worker_id, event.domain)
            for event in self.service.tracker.events[demote_mark:]
        ]
        out["reselect"] = False
        out["done"] = False
        if (
            self.service.reselection_recommended
            and self.reselections < self._config.max_reselections
        ):
            out["reselect"] = True
            out["reselection_domains"] = list(self.service.reselection_domains)
        elif (
            not out["intents"]
            and not self.service.pending_task_ids
            and not self._scheduled
        ):
            # Same condition as the reference done-check: an empty intent
            # list means the cursor is exhausted and the retry queue empty.
            self._merge_labels()
            self._transition(CampaignPhase.DONE)
            out["done"] = True
        out["phase_after"] = self.phase.value

    def _shard_step_reselecting(self, tick: int, out: Dict[str, object]) -> None:
        assert self._checkpoint is not None
        if tick < int(self._checkpoint["resume_at_tick"]):
            out["kind"] = "reselect_wait"
            return
        # Restore from the checkpoint exactly as the reference engine does
        # at its requalify tick (idempotent when the resume attempt fails
        # and repeats next tick).
        self.campaign = Campaign.from_state_dict(self._checkpoint["campaign"])
        out["kind"] = "resume_request"
        out["resume"] = {"k": self.campaign.k, "ewma": self.service.tracker.snapshot()}

    def _peek_tasks(self) -> List[Task]:
        """The next up-to-``tasks_per_tick`` tasks, *without* consuming them."""
        budget = self._config.tasks_per_tick
        candidates: List[Task] = []
        for task_id in self._retry:
            if len(candidates) >= budget:
                return candidates
            candidates.append(self._task_by_id[task_id])
        index = self._cursor
        while index < len(self._tasks) and len(candidates) < budget:
            candidates.append(self._tasks[index])
            index += 1
        return candidates

    # ------------------------------------------------------------------ #
    # Input application (start of the NEXT tick, before shard_step)
    # ------------------------------------------------------------------ #
    def _adopt_members(self, members: Sequence[WireWorker]) -> List[ServingWorker]:
        replicas: List[ServingWorker] = []
        for wire in members:
            self._wire[wire.worker_id] = wire
            replicas.append(
                ServingWorker(
                    worker_id=wire.worker_id,
                    qualifications={},
                    max_concurrent=wire.max_concurrent,
                )
            )
        return replicas

    def apply_outcome(self, outcome: Dict[str, object], routed_tick: int) -> None:
        """Apply the parent's commit-phase outcome for tick ``routed_tick``."""
        kind = outcome["kind"]
        if kind == "build":
            self._build_serving(self._adopt_members(outcome["members"]))
            self._transition(CampaignPhase.SERVING)
            return
        if kind == "resume":
            self._build_serving(self._adopt_members(outcome["members"]))
            self.reselections += 1
            self._transition(CampaignPhase.SERVING)
            return
        assert kind == "serving", kind
        assert self.service is not None
        due = routed_tick + self._config.answer_delay
        for task_id, worker_ids in outcome["routed"]:
            task = self._task_by_id[task_id]
            self._consume_task()
            self._submitted += 1
            self.service.adopt_assignment(task, worker_ids)
            for worker_id in worker_ids:
                self._scheduled.append((due, task_id, worker_id))
        if outcome["stalled"]:
            self.stalled_ticks += 1
        if outcome["reselected"]:
            # Mirrors _enter_reselecting, using the parent's reselect tick.
            self._merge_labels()
            abandoned = self.service.abandon_pending()
            self._scheduled.clear()
            for task_id in abandoned:
                self._retry.append(task_id)
            self._checkpoint = {
                "campaign": self.campaign.state_dict(),
                "tick": routed_tick,
                "resume_at_tick": routed_tick + self._config.requalify_ticks,
                "reselection_index": self.reselections,
            }
            self._transition(CampaignPhase.RESELECTING)

    def apply_invalidations(self, records: List[Dict[str, object]], tick: int) -> None:
        assert self.service is not None
        for record in records:
            self.service.apply_invalidation_record(record)
        self.on_invalidations(records, tick)

    def apply_departure(self, worker_id: str) -> None:
        if self.pool is not None and worker_id in self.pool:
            self.pool.remove_worker(worker_id)

    def apply_joined(self, members: Sequence[WireWorker]) -> None:
        assert self.pool is not None
        for replica in self._adopt_members(members):
            self.pool.add_worker(replica)


class ShardRuntime:
    """All of one shard's campaigns plus the per-tick wire protocol."""

    def __init__(self, shard_index: int, specs: Sequence[CampaignSpec], config, seed: int) -> None:
        self.shard_index = shard_index
        answer_seed = derive_seed(int(seed), "marketplace", "answers")
        self.handles: List[ShardCampaignHandle] = [
            ShardCampaignHandle(spec, config, answer_seed) for spec in specs
        ]
        self._by_name = {handle.spec.name: handle for handle in self.handles}

    def apply_inputs(self, payload: Dict[str, object]) -> None:
        """Apply one tick's inputs in the reference engine's order.

        Routed outcomes (tick ``t-1``) land before this tick's
        invalidations — matching the reference, where tick ``t-1``
        submissions precede tick ``t`` departures — then departures, then
        arrivals, exactly the reference intra-tick order.
        """
        tick = int(payload["tick"])
        outcome_tick = payload["outcome_tick"]
        outcomes: Dict[str, Dict[str, object]] = payload.get("outcomes", {})
        for handle in self.handles:
            outcome = outcomes.get(handle.spec.name)
            if outcome is not None:
                handle.apply_outcome(outcome, int(outcome_tick))
        invalidations: Dict[str, List[Dict[str, object]]] = payload.get("invalidations", {})
        for handle in self.handles:
            records = invalidations.get(handle.spec.name)
            if records:
                handle.apply_invalidations(records, tick)
        for worker_id in payload.get("departed", ()):
            for handle in self.handles:
                handle.apply_departure(worker_id)
        joined: Dict[str, List[WireWorker]] = payload.get("joined", {})
        for handle in self.handles:
            members = joined.get(handle.spec.name)
            if members:
                handle.apply_joined(members)

    def tick(self, payload: Dict[str, object]) -> Dict[str, object]:
        self.apply_inputs(payload)
        tick = int(payload["tick"])
        outputs = {handle.spec.name: handle.shard_step(tick) for handle in self.handles}
        return {"outputs": outputs, "steps": len(self.handles)}

    def drain(self, payload: Dict[str, object]) -> Dict[str, object]:
        """Apply the final commit's outcomes (no step) and report summaries."""
        outcome_tick = payload["outcome_tick"]
        outcomes: Dict[str, Dict[str, object]] = payload.get("outcomes", {})
        for handle in self.handles:
            outcome = outcomes.get(handle.spec.name)
            if outcome is not None:
                handle.apply_outcome(outcome, int(outcome_tick))
        return {"summaries": {handle.spec.name: handle.summary() for handle in self.handles}}


# ---------------------------------------------------------------------- #
# Shard executors
# ---------------------------------------------------------------------- #
class InlineShardExecutor:
    """Run every shard in-process (tests, single-core fallbacks).

    Requests and replies take a pickle round-trip, so anything that would
    not survive the process transport fails here too — the equivalence
    tests exercise the real wire format without fork overhead.
    """

    def __init__(self, runtimes: Sequence[ShardRuntime]) -> None:
        self._runtimes = list(runtimes)

    @staticmethod
    def _roundtrip(value: object) -> object:
        return pickle.loads(pickle.dumps(value))

    def tick(self, payloads: Sequence[Dict[str, object]]) -> List[Dict[str, object]]:
        replies = []
        for runtime, payload in zip(self._runtimes, payloads):
            replies.append(self._roundtrip(runtime.tick(self._roundtrip(payload))))
        return replies

    def drain(self, payloads: Sequence[Dict[str, object]]) -> List[Dict[str, object]]:
        replies = []
        for runtime, payload in zip(self._runtimes, payloads):
            replies.append(self._roundtrip(runtime.drain(self._roundtrip(payload))))
        return replies

    def close(self) -> None:
        self._runtimes = []


def _shard_worker_main(runtime: ShardRuntime, conn) -> None:
    """Entry point of one forked shard process (lockstep request loop)."""
    import traceback

    while True:
        try:
            kind, payload = conn.recv()
        except EOFError:
            return
        if kind == "close":
            return
        try:
            if kind == "tick":
                conn.send(("ok", runtime.tick(payload)))
            elif kind == "drain":
                conn.send(("ok", runtime.drain(payload)))
            else:  # pragma: no cover - protocol guard
                conn.send(("error", f"unknown request {kind!r}"))
        # repro: allow[S002] -- the traceback is shipped to the parent, which re-raises it
        except Exception:
            conn.send(("error", traceback.format_exc()))
            return


class ProcessShardExecutor:
    """One forked process per shard, driven in lockstep over pipes.

    Processes are forked once at run start, inheriting their fully built
    :class:`ShardRuntime` (fork keeps the parent's memory, so nothing is
    pickled at spawn); per-tick traffic is the small input/output payload.
    """

    def __init__(self, runtimes: Sequence[ShardRuntime]) -> None:
        import multiprocessing

        context = multiprocessing.get_context("fork")
        self._conns = []
        self._procs = []
        for runtime in runtimes:
            parent_conn, child_conn = context.Pipe(duplex=True)
            proc = context.Process(
                target=_shard_worker_main, args=(runtime, child_conn), daemon=True
            )
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)

    def _collect(self) -> List[Dict[str, object]]:
        replies = []
        for conn in self._conns:
            try:
                status, payload = conn.recv()
            except EOFError as error:
                raise RuntimeError("a marketplace shard process died mid-tick") from error
            if status != "ok":
                raise RuntimeError(f"marketplace shard failed:\n{payload}")
            replies.append(payload)
        return replies

    def tick(self, payloads: Sequence[Dict[str, object]]) -> List[Dict[str, object]]:
        for conn, payload in zip(self._conns, payloads):
            conn.send(("tick", payload))
        return self._collect()

    def drain(self, payloads: Sequence[Dict[str, object]]) -> List[Dict[str, object]]:
        for conn, payload in zip(self._conns, payloads):
            conn.send(("drain", payload))
        return self._collect()

    def close(self) -> None:
        for conn in self._conns:
            try:
                conn.send(("close", None))
            except (BrokenPipeError, OSError):
                pass
            conn.close()
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - cleanup guard
                proc.terminate()
                proc.join(timeout=5)
        self._conns = []
        self._procs = []


SHARD_EXECUTORS = ("process", "inline")


# ---------------------------------------------------------------------- #
# Parent-side commit state
# ---------------------------------------------------------------------- #
@dataclass
class _MirrorPending:
    """Parent-side mirror of one in-flight task's unanswered votes."""

    domain: str
    expected: Tuple[str, ...]
    answers: Set[str] = field(default_factory=set)


class _EwmaView:
    """Read-only tracker shim over a shard-shipped EWMA table."""

    def __init__(self, table: Dict[str, Dict[str, float]]) -> None:
        self._table = table

    def ewma(self, worker_id: str, domain: str) -> Optional[float]:
        return self._table.get(worker_id, {}).get(domain)


class _CommitService:
    """The parent's per-campaign routing/invalidation state.

    Replays exactly the marketplace-relevant slice of
    :class:`~repro.serving.service.AnnotationService` against the *true*
    shared pool: vote routing for shard intents, departure invalidation
    (including deterministic replacement re-routes through
    ``route_excluding``) and reselection abandonment.  Aggregation and
    drift stay shard-side; ``tracker`` is an :class:`_EwmaView` refreshed
    from each resume request so :meth:`Marketplace.requalify` reads the
    shard's live agreement signal.
    """

    def __init__(self, pool: ServingPool, config) -> None:
        self._pool = pool
        router_config: Dict[str, object] = {}
        if config.routing_engine in router_engines(config.router):
            router_config["engine"] = config.routing_engine
        self._router = make_router(config.router, pool, **router_config)
        self._votes_per_task = config.votes_per_task
        self._mirror: Dict[str, _MirrorPending] = {}
        self.tracker = _EwmaView({})

    def route_intent(self, task_id: str, domain: str) -> List[str]:
        """Route one intent; raises ``NoEligibleWorkersError`` on a stall."""
        worker_ids = self._router.route(domain, self._votes_per_task)
        self._mirror[task_id] = _MirrorPending(domain=domain, expected=tuple(worker_ids))
        return list(worker_ids)

    def apply_delivered(self, task_id: str, worker_id: str) -> None:
        """Mirror one shard-delivered answer onto the true pool."""
        entry = self._mirror[task_id]
        entry.answers.add(worker_id)
        self._pool.complete_assignment(worker_id)
        if len(entry.answers) == len(entry.expected):
            # A fully answered task can never be touched by a later
            # invalidation (every expected vote is answered), so the
            # mirror entry is safe to retire immediately even though the
            # shard's replica keeps it pending until finalize_ready().
            del self._mirror[task_id]

    def invalidate_worker(self, worker_id: str) -> List[Dict[str, object]]:
        """The reference invalidation, against the mirror + true router."""
        invalidated: List[Dict[str, object]] = []
        for task_id in list(self._mirror):
            entry = self._mirror[task_id]
            if worker_id not in entry.expected or worker_id in entry.answers:
                continue
            self._pool.release_assignment(worker_id)
            exclude = set(entry.expected) | {worker_id}
            entry.expected = tuple(w for w in entry.expected if w != worker_id)
            replacements = self._router.route_excluding(entry.domain, 1, exclude)
            entry.expected = entry.expected + tuple(replacements)
            record: Dict[str, object] = {
                "task_id": task_id,
                "domain": entry.domain,
                "worker_id": worker_id,
                "replacements": list(replacements),
                "abandoned": not entry.expected,
            }
            invalidated.append(record)
            if not entry.expected:
                del self._mirror[task_id]
        return invalidated

    def abandon_pending(self) -> List[str]:
        """Release unanswered true-pool charges; returns ids in routing order."""
        abandoned: List[str] = []
        for task_id in list(self._mirror):
            entry = self._mirror.pop(task_id)
            for worker_id in entry.expected:
                if worker_id not in entry.answers:
                    self._pool.release_assignment(worker_id)
            abandoned.append(task_id)
        return abandoned


class _CampaignShim:
    """Quacks like ``Campaign`` for the few attrs ``requalify`` touches."""

    def __init__(self) -> None:
        self.k: Optional[int] = None


class CommitCampaign:
    """Parent-side stand-in for a shard-resident campaign handle.

    Presents the exact attribute surface :class:`Marketplace` touches
    (``spec``, ``phase``, ``pool``, ``service``, ``target_domain``,
    ``campaign.k``, ``on_invalidations``), so the reference churn and
    re-qualification code runs verbatim against the true shared pools
    while the heavy per-campaign state lives in a shard process.
    """

    def __init__(self, spec: CampaignSpec, config) -> None:
        self.spec = spec
        self._config = config
        self.phase = CampaignPhase.SELECTING
        self.pool: Optional[ServingPool] = None
        self.service: Optional[_CommitService] = None
        self.campaign = _CampaignShim()
        self.target_domain: Optional[str] = None
        #: Invalidation records of the current tick, drained by the engine.
        self.pending_invalidations: List[Dict[str, object]] = []

    def on_invalidations(self, records: List[Dict[str, object]], tick: int) -> None:
        self.pending_invalidations.extend(records)

    def build_pool(self, members: Sequence[ServingWorker]) -> None:
        ewma = self.service.tracker if self.service is not None else _EwmaView({})
        self.pool = ServingPool(list(members), policy=self._config.qualification)
        self.service = _CommitService(self.pool, self._config)
        self.service.tracker = ewma


class _ShardMetrics:
    """Pre-bound shard-engine metric children (parent-side only)."""

    __slots__ = ("ticks", "merge_conflicts", "reroutes", "parallel_seconds", "commit_seconds")

    def __init__(self, registry) -> None:
        self.ticks = registry.counter(
            "marketplace.shard.ticks", "campaign steps executed in shard parallel phases"
        )
        self.merge_conflicts = registry.counter(
            "marketplace.shard.merge_conflicts",
            "commit-phase routing stalls (shared-worker capacity conflicts)",
        )
        self.reroutes = registry.counter(
            "marketplace.shard.reroutes",
            "replacement votes re-routed deterministically at commit",
        )
        phase_seconds = registry.gauge(
            "marketplace.shard.phase_seconds",
            "wall-clock seconds of the last tick's phases (volatile)",
            ("phase",),
            volatile=True,
        )
        self.parallel_seconds = phase_seconds.labels("parallel")
        self.commit_seconds = phase_seconds.labels("commit")


class ShardedTickEngine:
    """Drive one orchestrator run through the two-phase sharded protocol."""

    def __init__(self, orchestrator, executor: str = "process") -> None:
        if executor not in SHARD_EXECUTORS:
            raise ValueError(
                f"unknown shard executor {executor!r}; choose from: {', '.join(SHARD_EXECUTORS)}"
            )
        # Lazy import against the lazy import in orchestrator.run().
        from repro.marketplace.churn import ChurnModel
        from repro.marketplace.orchestrator import Marketplace

        self._specs: List[CampaignSpec] = list(orchestrator._specs)
        self._config = orchestrator._config
        self._seed = orchestrator._seed
        self._metrics = orchestrator._metrics
        telemetry = orchestrator._telemetry
        self._shard_metrics = (
            _ShardMetrics(telemetry.registry) if telemetry is not None else None
        )
        n_shards = self._config.n_shards
        by_shard: Dict[int, List[CampaignSpec]] = {}
        for spec in self._specs:
            by_shard.setdefault(shard_of(spec.name, n_shards), []).append(spec)
        self._shard_indexes = sorted(by_shard)
        runtimes = [
            ShardRuntime(index, by_shard[index], self._config, self._seed)
            for index in self._shard_indexes
        ]
        self._shard_campaigns = {
            index: [spec.name for spec in by_shard[index]] for index in self._shard_indexes
        }
        population = orchestrator._population
        if population is None:
            # Same default as the reference engine: the first campaign's
            # dataset population. The campaign objects live in the (not
            # yet forked) runtimes.
            first = self._specs[0].name
            for runtime in runtimes:
                for handle in runtime.handles:
                    if handle.spec.name == first:
                        population = handle.campaign.instance.spec.population
        self.marketplace = Marketplace(self._config, population, self._seed)
        self._adapters = {spec.name: CommitCampaign(spec, self._config) for spec in self._specs}
        for spec in self._specs:
            self.marketplace.attach(self._adapters[spec.name])
        self._churn = ChurnModel(orchestrator._churn_config, self._seed)
        # Fork (or wrap) AFTER all shard state is built so child processes
        # inherit fully initialised runtimes.
        if executor == "process":
            self._executor = ProcessShardExecutor(runtimes)
        else:
            self._executor = InlineShardExecutor(runtimes)
        self._pending_outcomes: Dict[str, Dict[str, object]] = {}
        self._last_tick: Optional[int] = None

    # ------------------------------------------------------------------ #
    def _wire(self, worker_id: str) -> WireWorker:
        worker = self.marketplace.workers[worker_id]
        return WireWorker(
            worker_id=worker.worker_id,
            max_concurrent=worker.serving.max_concurrent,
            target_domain=worker.target_domain,
            exposure_offset=worker.exposure_offset,
            accuracies=dict(worker.accuracies),
            behavior=worker.behavior,
        )

    def _shard_payloads(
        self,
        tick: int,
        invalidations: Dict[str, List[Dict[str, object]]],
        departed: List[str],
        joined: Dict[str, List[WireWorker]],
    ) -> List[Dict[str, object]]:
        payloads = []
        for index in self._shard_indexes:
            names = self._shard_campaigns[index]
            payloads.append(
                {
                    "tick": tick,
                    "outcome_tick": tick - 1,
                    "outcomes": {
                        name: self._pending_outcomes[name]
                        for name in names
                        if name in self._pending_outcomes
                    },
                    "invalidations": {
                        name: invalidations[name] for name in names if name in invalidations
                    },
                    "departed": departed,
                    "joined": {name: joined[name] for name in names if name in joined},
                }
            )
        return payloads

    def tick(self, tick: int) -> Dict[str, object]:
        """One sharded tick; returns the (byte-identical) journal record."""
        # --- serial churn prologue: the reference tick order, verbatim ---
        departing = self._churn.departures_among(self.marketplace.present_ids(), tick)
        annotated: List[Dict[str, object]] = []
        for worker_id in departing:
            annotated.extend(self.marketplace.depart(worker_id, tick))
        invalidations: Dict[str, List[Dict[str, object]]] = {}
        for name, adapter in self._adapters.items():
            if adapter.pending_invalidations:
                invalidations[name] = adapter.pending_invalidations
                adapter.pending_invalidations = []
        arrivals = self.marketplace.admit_arrivals(tick, self._churn.arrivals_at(tick))
        joined: Dict[str, List[WireWorker]] = {}
        for event in arrivals:
            if not event["admitted"]:
                continue
            worker_id = str(event["worker_id"])
            for name, adapter in self._adapters.items():
                if adapter.pool is not None and worker_id in adapter.pool:
                    joined.setdefault(name, []).append(self._wire(worker_id))
        # --- parallel phase ---
        start = perf_counter()
        replies = self._executor.tick(
            self._shard_payloads(tick, invalidations, list(departing), joined)
        )
        parallel_s = perf_counter() - start
        outputs: Dict[str, Dict[str, object]] = {}
        steps = 0
        for reply in replies:
            outputs.update(reply["outputs"])
            steps += reply["steps"]
        # --- serial commit phase ---
        start = perf_counter()
        events: List[Dict[str, object]] = []
        outcomes: Dict[str, Dict[str, object]] = {}
        stalls = 0
        for spec in self._specs:
            event, outcome = self._commit_campaign(spec.name, outputs[spec.name], tick)
            events.append(event)
            if outcome is not None:
                outcomes[spec.name] = outcome
                if outcome.get("stalled"):
                    stalls += 1
        self._pending_outcomes = outcomes
        self._last_tick = tick
        commit_s = perf_counter() - start
        metrics = self._metrics
        if metrics is not None:
            metrics.ticks.inc()
            metrics.departures.inc(len(departing))
            metrics.invalidations.inc(len(annotated))
            for event in arrivals:
                (metrics.admitted if event["admitted"] else metrics.rejected).inc()
            for event in events:
                metrics.campaign_events.labels(str(event["phase"])).inc()
        if self._shard_metrics is not None:
            self._shard_metrics.ticks.inc(steps)
            self._shard_metrics.merge_conflicts.inc(stalls)
            self._shard_metrics.reroutes.inc(
                sum(len(record["replacements"]) for record in annotated)
            )
            self._shard_metrics.parallel_seconds.set(parallel_s)
            self._shard_metrics.commit_seconds.set(commit_s)
        return {
            "type": "tick",
            "tick": tick,
            "departures": list(departing),
            "invalidations": annotated,
            "arrivals": arrivals,
            "campaigns": events,
        }

    def _commit_campaign(
        self, name: str, output: Dict[str, object], tick: int
    ) -> Tuple[Dict[str, object], Optional[Dict[str, object]]]:
        adapter = self._adapters[name]
        kind = output["kind"]
        event: Dict[str, object] = {"campaign": name, "phase": adapter.phase.value}
        event.update(output.get("core", {}))
        if kind == "noop" or kind == "reselect_wait":
            return event, None
        if kind == "selecting":
            return event, None
        if kind == "selection_finished":
            selection = output["selection"]
            members = self.marketplace.register_selected(
                adapter, selection["manifest"], tick, behaviors=selection["behaviors"]
            )
            adapter.target_domain = selection["manifest"].target_domain
            adapter.campaign.k = None  # refreshed by resume requests when needed
            adapter.build_pool(members)
            adapter.phase = CampaignPhase.SERVING
            event["selected"] = [worker.worker_id for worker in members]
            event["phase"] = adapter.phase.value
            return event, {
                "kind": "build",
                "members": [self._wire(worker.worker_id) for worker in members],
            }
        if kind == "resume_request":
            resume = output["resume"]
            adapter.campaign.k = resume["k"]
            assert adapter.service is not None
            adapter.service.tracker = _EwmaView(resume["ewma"])
            members = self.marketplace.requalify(adapter, tick)
            event["reselected"] = [worker.worker_id for worker in members]
            if not members:
                return event, None
            adapter.build_pool(members)
            adapter.phase = CampaignPhase.SERVING
            event["phase"] = adapter.phase.value
            return event, {
                "kind": "resume",
                "members": [self._wire(worker.worker_id) for worker in members],
            }
        assert kind == "serving", kind
        service = adapter.service
        pool = adapter.pool
        assert service is not None and pool is not None
        for worker_id, domain in output["demote_intents"]:
            pool.demote(worker_id, domain)
        for task_id, worker_id, _answer in output["core"]["delivered"]:
            service.apply_delivered(task_id, worker_id)
        submitted: List[List[object]] = []
        routed: List[Tuple[str, List[str]]] = []
        stalled = False
        for task_id, domain in output["intents"]:
            try:
                worker_ids = service.route_intent(task_id, domain)
            except NoEligibleWorkersError:
                stalled = True
                break
            routed.append((task_id, worker_ids))
            submitted.append([task_id, list(worker_ids)])
        event["submitted"] = submitted
        event["stalled"] = stalled
        outcome: Dict[str, object] = {
            "kind": "serving",
            "routed": routed,
            "stalled": stalled,
            "reselected": False,
        }
        if output["reselect"]:
            event["reselection_triggered"] = True
            event["reselection_domains"] = list(output["reselection_domains"])
            event["abandoned"] = service.abandon_pending()
            adapter.phase = CampaignPhase.RESELECTING
            event["phase"] = adapter.phase.value
            outcome["reselected"] = True
            return event, outcome
        event["reselection_triggered"] = False
        event["phase"] = str(output["phase_after"])
        if output["done"]:
            adapter.phase = CampaignPhase.DONE
        return event, outcome

    def finalize(self) -> List[Dict[str, object]]:
        """Drain the last commit's outcomes into the shards; collect summaries."""
        payloads = []
        outcome_tick = self._last_tick if self._last_tick is not None else 0
        for index in self._shard_indexes:
            names = self._shard_campaigns[index]
            payloads.append(
                {
                    "outcome_tick": outcome_tick,
                    "outcomes": {
                        name: self._pending_outcomes[name]
                        for name in names
                        if name in self._pending_outcomes
                    },
                }
            )
        replies = self._executor.drain(payloads)
        summaries: Dict[str, Dict[str, object]] = {}
        for reply in replies:
            summaries.update(reply["summaries"])
        self._pending_outcomes = {}
        return [summaries[spec.name] for spec in self._specs]

    def close(self) -> None:
        self._executor.close()


__all__ = [
    "shard_of",
    "WireWorker",
    "ShardCampaignHandle",
    "ShardRuntime",
    "InlineShardExecutor",
    "ProcessShardExecutor",
    "SHARD_EXECUTORS",
    "CommitCampaign",
    "ShardedTickEngine",
]
