"""Per-(domain, tier) qualification indexes for O(log n) affinity routing.

The ``domain_affinity`` policy ranks a task's candidate workers by the
pinned affinity key ``(-estimate, worker_id)`` within each qualification
tier.  The reference implementation re-filters and re-sorts the whole pool
for every routed task — O(n log n) per task, which is why its measured
throughput was *inversely* proportional to pool size.  A
:class:`DomainIndexSet` keeps that ranking materialised instead: one
sorted list per ``(domain, tier)``, maintained incrementally from the
:class:`~repro.serving.pool.ServingPool` change-event bus, so a route is
a prefix walk of a pre-sorted list — O(votes + log n) amortised.

Consistency model
-----------------
The index is *lazily* consistent:

* **Inserts are eager.**  Arrivals, qualification changes and demotions
  (delivered through the pool's ``on_worker_added`` /
  ``on_qualification_changed`` listener hooks) ``bisect.insort`` the
  worker's fresh entry into the right tier list immediately, so a newly
  eligible worker is routable the moment the event fires.
* **Deletes are lazy.**  The entry the event superseded (old tier, old
  estimate, or a departed worker) stays in its list as garbage; a
  per-list dead counter is bumped instead.  Every entry read during a
  route is validated against the live pool state — worker present, tier
  unchanged, estimate unchanged — and stale entries encountered on the
  walk are physically dropped then.
* **Capacity is never indexed.**  ``has_capacity`` flips on every single
  vote, so the index stores no load state at all; the router checks
  capacity live on each candidate it walks (``on_load_changed`` is a
  deliberate no-op).
* **Compaction is periodic.**  When a list's dead counter reaches both
  the compaction floor and half the list, the list is rebuilt by one
  linear liveness filter, bounding garbage at ~50% regardless of churn.

Because every entry is re-validated at read time, a mutation that somehow
bypasses the event bus degrades throughput (uncounted garbage), never
correctness — the router cannot route a worker the pool no longer
qualifies.
"""

from __future__ import annotations

from bisect import insort
from typing import Dict, Iterator, List, Optional, Tuple

from repro.serving.pool import ServingPool, ServingWorker
from repro.serving.qualification import QualificationTier, affinity_rank_key

#: ``(-estimate, worker_id)`` — one materialised ranking entry.
IndexEntry = Tuple[float, str]

#: ``(domain, tier)`` — the key of one sorted ranking list.
IndexKey = Tuple[str, QualificationTier]

#: Tiers worth indexing: unqualified workers are never routed on a domain,
#: so they simply have no entry.
INDEXED_TIERS = (QualificationTier.QUALIFIED, QualificationTier.FALLBACK)


class DomainIndexSet:
    """Sorted per-(domain, tier) qualification rankings with lazy deletes.

    Parameters
    ----------
    pool:
        The serving pool the index mirrors.  The owner (normally
        :class:`~repro.serving.routing.DomainAffinityRouter`) forwards the
        pool's listener hooks here; the index does not subscribe itself,
        so one pool listener serves both the router and its index.
    compact_floor:
        Minimum dead entries before a list is compacted (compaction also
        requires the dead to be at least half the list).  Small values
        compact eagerly — useful in tests; the default amortises the
        linear filter over many routes.
    """

    def __init__(self, pool: ServingPool, compact_floor: int = 32) -> None:
        if compact_floor < 1:
            raise ValueError("compact_floor must be positive")
        self._pool = pool
        self._compact_floor = compact_floor
        #: One sorted entry list per (domain, tier), built on first route.
        self._lists: Dict[IndexKey, List[IndexEntry]] = {}
        #: Stale entries known per list (kept in sync by the event hooks).
        self._dead: Dict[IndexKey, int] = {}
        #: The entry currently recorded for each (worker, domain) — the
        #: one live entry; anything else in the lists is garbage.
        self._recorded: Dict[Tuple[str, str], Tuple[QualificationTier, float]] = {}
        #: Indexed domains in first-routed order (dict as ordered set).
        self._domains: Dict[str, None] = {}

    # ------------------------------------------------------------------ #
    # Read side (the routing hot path)
    # ------------------------------------------------------------------ #
    def iter_tier(self, domain: str, tier: QualificationTier) -> Iterator[ServingWorker]:
        """Live workers on ``(domain, tier)`` in pinned affinity order.

        Walks the materialised list front to back, dropping stale entries
        as they are encountered; every yielded worker is validated against
        the pool at yield time.  Capacity is *not* filtered here — the
        caller decides what to do with saturated workers.
        """
        self._ensure_domain(domain)
        key = (domain, tier)
        self._maybe_compact(key)
        entries = self._lists[key]
        index = 0
        while index < len(entries):
            entry = entries[index]
            worker = self._live(key, entry)
            if worker is None:
                # Stale — drop it for good and stay at the same position.
                del entries[index]
                self._dead[key] = max(0, self._dead[key] - 1)
                if self._recorded.get((entry[1], domain)) == (tier, entry[0]):
                    del self._recorded[(entry[1], domain)]
                continue
            if index > 0 and entries[index - 1] == entry:
                # Duplicate: a worker that departed and returned under the
                # same id at the same rank leaves garbage *identical* to its
                # live entry, which the pool check alone cannot tell apart.
                # Identical tuples sort adjacent, so one look-behind catches
                # every such pair before a task could pick the worker twice.
                del entries[index]
                self._dead[key] = max(0, self._dead[key] - 1)
                continue
            yield worker
            index += 1

    def _live(self, key: IndexKey, entry: IndexEntry) -> Optional[ServingWorker]:
        """The pool worker an entry still describes, or ``None`` if stale."""
        domain, tier = key
        neg_estimate, worker_id = entry
        worker = self._pool.get(worker_id)
        if (
            worker is None
            or worker.tier_on(domain) is not tier
            or affinity_rank_key(worker.estimate_on(domain), worker_id)[0] != neg_estimate
        ):
            return None
        return worker

    # ------------------------------------------------------------------ #
    # Event hooks (forwarded from the pool's listener bus)
    # ------------------------------------------------------------------ #
    def on_worker_added(self, worker_id: str) -> None:
        """Index an arrival on every domain already materialised."""
        worker = self._pool.get(worker_id)
        if worker is None:  # raced with an immediate removal
            return
        for domain in self._domains:
            self._reindex(worker, domain)

    def on_worker_removed(self, worker_id: str) -> None:
        """Mark a departure's entries dead (physically dropped lazily)."""
        for domain in self._domains:
            recorded = self._recorded.pop((worker_id, domain), None)
            if recorded is not None:
                self._dead[(domain, recorded[0])] += 1

    def on_qualification_changed(self, worker_id: str, domain: str) -> None:
        """Move a worker's entry after a demotion or re-qualification."""
        if domain not in self._domains:
            return
        worker = self._pool.get(worker_id)
        if worker is not None:
            self._reindex(worker, domain)

    def on_load_changed(self, worker_id: str) -> None:
        """Deliberate no-op: capacity is read live, never indexed."""

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def _ensure_domain(self, domain: str) -> None:
        """Materialise the tier lists of ``domain`` on its first route.

        Bulk build: append every worker's entry, then sort each list once.
        Going through :meth:`_reindex` here would ``insort`` into a
        growing list — O(n²) on a 100k-worker pool, which showed up as a
        10% first-route throughput tax in the serving benchmark.
        """
        if domain in self._domains:
            return
        self._domains[domain] = None
        for tier in INDEXED_TIERS:
            self._lists[(domain, tier)] = []
            self._dead[(domain, tier)] = 0
        for worker in self._pool.workers:
            tier = worker.tier_on(domain)
            if tier in INDEXED_TIERS:
                neg_estimate = affinity_rank_key(worker.estimate_on(domain), worker.worker_id)[0]
                self._lists[(domain, tier)].append((neg_estimate, worker.worker_id))
                self._recorded[(worker.worker_id, domain)] = (tier, neg_estimate)
        for tier in INDEXED_TIERS:
            self._lists[(domain, tier)].sort()

    def _reindex(self, worker: ServingWorker, domain: str) -> None:
        """Record the worker's current ``(tier, estimate)`` on ``domain``."""
        tier = worker.tier_on(domain)
        neg_estimate = affinity_rank_key(worker.estimate_on(domain), worker.worker_id)[0]
        record_key = (worker.worker_id, domain)
        previous = self._recorded.get(record_key)
        if previous == (tier, neg_estimate):
            return  # the live entry already matches; inserting would duplicate
        if previous is not None:
            self._dead[(domain, previous[0])] += 1
        if tier in INDEXED_TIERS:
            insort(self._lists[(domain, tier)], (neg_estimate, worker.worker_id))
            self._recorded[record_key] = (tier, neg_estimate)
        elif previous is not None:
            del self._recorded[record_key]

    def _maybe_compact(self, key: IndexKey) -> None:
        """Rebuild a list once dead entries hit the floor and half the list."""
        dead = self._dead[key]
        entries = self._lists[key]
        if dead < self._compact_floor or dead * 2 < len(entries):
            return
        domain, tier = key
        live: List[IndexEntry] = []
        for entry in entries:
            if self._live(key, entry) is not None:
                # Skip duplicates too (the departed-and-returned case): the
                # list is sorted, so a duplicate sits right behind its twin.
                if not live or live[-1] != entry:
                    live.append(entry)
            elif self._recorded.get((entry[1], domain)) == (tier, entry[0]):
                del self._recorded[(entry[1], domain)]
        self._lists[key] = live
        self._dead[key] = 0

    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, Dict[str, int]]:
        """Per-list sizes and dead counts, keyed ``"<domain>/<tier>"``."""
        return {
            f"{domain}/{tier.name.lower()}": {
                "entries": len(self._lists[(domain, tier)]),
                "dead": self._dead[(domain, tier)],
            }
            for domain in self._domains
            for tier in INDEXED_TIERS
        }


__all__ = ["DomainIndexSet", "INDEXED_TIERS", "IndexEntry", "IndexKey"]
