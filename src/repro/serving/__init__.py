"""Post-selection serving layer: route working tasks to the selected pool.

The paper's pipeline ends when the top-``k`` workers are selected; this
package picks up from there and drives the annotation phase itself:

* :mod:`~repro.serving.qualification` — per-domain qualification tiers
  derived from CPE estimates, training history and historical profiles;
* :mod:`~repro.serving.pool` — the :class:`ServingPool` with per-worker
  concurrency caps, load accounting and the change-event bus every
  membership/qualification/load mutation flows through;
* :mod:`~repro.serving.index` — :class:`DomainIndexSet`, the per-(domain,
  tier) pre-sorted qualification rankings the indexed affinity engine
  routes against;
* :mod:`~repro.serving.routing` — the routing-policy registry
  (``round_robin``, ``least_loaded``, ``domain_affinity``; extend with
  :func:`register_router`);
* :mod:`~repro.serving.aggregation` — streaming majority vote and an
  incremental Dawid-Skene whose exact EM replay matches the batch
  aggregator;
* :mod:`~repro.serving.quality` — per-worker/per-domain EWMA drift
  detection that demotes qualifications and raises a re-selection signal;
* :mod:`~repro.serving.service` — :class:`AnnotationService`, the serving
  loop tying it all together (handed off from
  :meth:`repro.campaign.Campaign.serve`).
"""

from repro.serving.aggregation import IncrementalDawidSkene, OnlineMajorityVote
from repro.serving.index import DomainIndexSet
from repro.serving.pool import POOL_EVENT_HOOKS, ServingPool, ServingWorker, pool_event_noop
from repro.serving.qualification import (
    DomainQualification,
    QualificationPolicy,
    QualificationTier,
    affinity_rank_key,
)
from repro.serving.quality import DriftConfig, DriftEvent, QualityTracker
from repro.serving.routing import (
    BaseRouter,
    NoEligibleWorkersError,
    RouterRegistry,
    make_router,
    register_router,
    resolve_router_name,
    router_accepts,
    router_exists,
    router_names,
)
from repro.serving.service import (
    SERVING_SCHEMA_VERSION,
    AnnotationService,
    ServingConfig,
    ServingReport,
    TaskAssignment,
    working_task_stream,
)

__all__ = [
    "POOL_EVENT_HOOKS",
    "SERVING_SCHEMA_VERSION",
    "AnnotationService",
    "BaseRouter",
    "DomainIndexSet",
    "DomainQualification",
    "DriftConfig",
    "DriftEvent",
    "IncrementalDawidSkene",
    "NoEligibleWorkersError",
    "OnlineMajorityVote",
    "QualificationPolicy",
    "QualificationTier",
    "QualityTracker",
    "RouterRegistry",
    "ServingConfig",
    "ServingPool",
    "ServingReport",
    "ServingWorker",
    "TaskAssignment",
    "affinity_rank_key",
    "make_router",
    "pool_event_noop",
    "register_router",
    "resolve_router_name",
    "router_accepts",
    "router_exists",
    "router_names",
    "working_task_stream",
]
