"""Online per-worker quality tracking and drift detection.

During serving there is no gold label, so worker quality is tracked by
*agreement*: once a task's votes are aggregated, each participating
worker either agreed with the aggregate label or did not.  Per
``(worker, domain)`` stream the tracker maintains two exponentially
weighted moving averages of that agreement signal:

* a **fast** EWMA (``alpha``) tracking the worker's current quality;
* a **slow** EWMA (``baseline_alpha``) serving as the worker's adaptive
  baseline — a stable-but-mediocre worker converges to its own level and
  never alarms, while a *degrading* worker's fast EWMA falls away from
  the lagging baseline.

Drift is declared when, after a warm-up of ``min_observations`` answers
(whose plain mean seeds both averages), the fast EWMA falls below the
absolute floor ``demote_below`` **or** more than ``drop_tolerance``
below the baseline.  Each detection emits a :class:`DriftEvent`; the
serving loop demotes the worker's qualification one tier and, once
enough of the pool has drifted, raises the re-selection signal — the cue
to re-run the cross-domain selection campaign.  After an event the
baseline is reset to the degraded level, so escalating another tier
requires a *further* decay, not the same one re-detected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass(frozen=True)
class DriftConfig:
    """Tuning of the EWMA drift detector.

    Attributes
    ----------
    alpha:
        Fast-EWMA smoothing factor in ``(0, 1]``; the detection window is
        roughly ``1/alpha`` answers.
    baseline_alpha:
        Slow-EWMA smoothing factor; should be well below ``alpha`` so the
        baseline lags genuine degradation.
    min_observations:
        Warm-up answers per ``(worker, domain)`` before drift can fire;
        their mean seeds both averages.
    demote_below:
        Absolute fast-EWMA floor under which a worker is drifting
        regardless of its baseline.
    drop_tolerance:
        Maximum allowed drop of the fast EWMA below the baseline.
    cooldown:
        Answers to ignore on a stream directly after one of its drift
        events (gives the demoted worker a fresh window before the next
        escalation).
    """

    alpha: float = 0.05
    baseline_alpha: float = 0.01
    min_observations: int = 10
    demote_below: float = 0.35
    drop_tolerance: float = 0.3
    cooldown: int = 20

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError("alpha must lie in (0, 1]")
        if not 0.0 < self.baseline_alpha <= 1.0:
            raise ValueError("baseline_alpha must lie in (0, 1]")
        if self.baseline_alpha > self.alpha:
            raise ValueError("baseline_alpha must not exceed alpha (the baseline must lag)")
        if self.min_observations < 1:
            raise ValueError("min_observations must be at least 1")
        if not 0.0 <= self.demote_below <= 1.0:
            raise ValueError("demote_below must lie in [0, 1]")
        if self.drop_tolerance < 0.0:
            raise ValueError("drop_tolerance must be non-negative")
        if self.cooldown < 0:
            raise ValueError("cooldown must be non-negative")


@dataclass(frozen=True)
class DriftEvent:
    """One drift detection on one ``(worker, domain)`` stream."""

    worker_id: str
    domain: str
    ewma: float
    baseline: float
    n_observations: int

    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        return {
            "worker_id": self.worker_id,
            "domain": self.domain,
            "ewma": self.ewma,
            "baseline": self.baseline,
            "n_observations": self.n_observations,
        }


@dataclass
class _Stream:
    """Mutable state of one ``(worker, domain)`` agreement stream."""

    count: int = 0
    warmup_sum: float = 0.0
    fast: Optional[float] = None
    slow: Optional[float] = None
    cooldown_remaining: int = 0
    events: int = 0


class QualityTracker:
    """Per-worker, per-domain EWMA agreement tracking with drift detection."""

    def __init__(self, config: Optional[DriftConfig] = None) -> None:
        self._config = config or DriftConfig()
        # Nested by worker first so one departure drops all of a worker's
        # streams in O(1) (see forget_worker) — under 100k-worker churn the
        # flat (worker, domain)-keyed layout grew without bound.
        self._streams: Dict[str, Dict[str, _Stream]] = {}
        self._events: List[DriftEvent] = []
        self._m_observations = None
        self._m_detections = None

    def bind_metrics(self, registry) -> None:
        """Attach observation/detection counters from a metrics registry."""
        self._m_observations = registry.counter(
            "quality.observations", "answer observations folded into EWMA quality state"
        )
        self._m_detections = registry.counter(
            "quality.drift.detections",
            "drift events raised by the EWMA tracker",
            ("domain",),
        )

    @property
    def config(self) -> DriftConfig:
        return self._config

    @property
    def events(self) -> List[DriftEvent]:
        """All drift events so far, in detection order (a copy)."""
        return list(self._events)

    def observe(self, worker_id: str, domain: str, agreed: bool) -> Optional[DriftEvent]:
        """Feed one agreement observation; returns a drift event if one fired."""
        stream = self._streams.setdefault(worker_id, {}).setdefault(domain, _Stream())
        config = self._config
        value = float(bool(agreed))
        stream.count += 1
        if self._m_observations is not None:
            self._m_observations.inc()

        if stream.fast is None:
            stream.warmup_sum += value
            if stream.count < config.min_observations:
                return None
            stream.fast = stream.warmup_sum / stream.count
            stream.slow = stream.fast
            return None

        assert stream.slow is not None
        stream.fast = (1.0 - config.alpha) * stream.fast + config.alpha * value
        stream.slow = (1.0 - config.baseline_alpha) * stream.slow + config.baseline_alpha * value
        if stream.cooldown_remaining > 0:
            stream.cooldown_remaining -= 1
            return None

        floor = max(config.demote_below, stream.slow - config.drop_tolerance)
        if stream.fast >= floor:
            return None
        event = DriftEvent(
            worker_id=worker_id,
            domain=domain,
            ewma=stream.fast,
            baseline=stream.slow,
            n_observations=stream.count,
        )
        stream.events += 1
        stream.cooldown_remaining = config.cooldown
        # The degraded level becomes the new baseline, so a further decay
        # (not the same one) is needed to escalate another tier.
        stream.slow = stream.fast
        self._events.append(event)
        if self._m_detections is not None:
            self._m_detections.labels(domain).inc()
        return event

    # ------------------------------------------------------------------ #
    def ewma(self, worker_id: str, domain: str) -> Optional[float]:
        """Current fast EWMA of a stream (``None`` before warm-up completes)."""
        stream = self._streams.get(worker_id, {}).get(domain)
        return stream.fast if stream is not None else None

    def baseline(self, worker_id: str, domain: str) -> Optional[float]:
        """Current baseline (slow EWMA) of a stream."""
        stream = self._streams.get(worker_id, {}).get(domain)
        return stream.slow if stream is not None else None

    def forget_worker(self, worker_id: str) -> None:
        """Drop every EWMA stream of a departed worker (O(1)).

        Bounds tracker memory on churny open-world pools: without it a
        100k-worker marketplace run accrues a stream per worker that ever
        answered, forever.  The drift-event *history* is kept — it drives
        the re-selection signal, which must remember drift that already
        happened — so a worker that later returns restarts its warm-up
        instead of resuming a stale average.
        """
        self._streams.pop(worker_id, None)

    def drifting_workers(self, domain: str) -> List[str]:
        """Workers with at least one drift event on ``domain``, in first-drift order."""
        seen: Dict[str, None] = {}
        for event in self._events:
            if event.domain == domain:
                seen.setdefault(event.worker_id, None)
        return list(seen)

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """``{worker: {domain: fast_ewma}}`` for every warmed-up stream."""
        result: Dict[str, Dict[str, float]] = {}
        for worker_id, streams in self._streams.items():
            for domain, stream in streams.items():
                if stream.fast is not None:
                    result.setdefault(worker_id, {})[domain] = stream.fast
        return result


__all__ = ["DriftConfig", "DriftEvent", "QualityTracker"]
