"""Streaming label aggregation for the serving phase.

The batch aggregators (:mod:`repro.aggregation`) assume the full
``(workers x tasks)`` answer matrix is available; a serving loop instead
sees one answer at a time and needs a label estimate *now*.  Two online
aggregators cover the spectrum:

* :class:`OnlineMajorityVote` — exact streaming majority: O(1) per answer,
  semantics identical to :func:`repro.aggregation.majority.majority_vote`.
* :class:`IncrementalDawidSkene` — a per-answer confusion-aware update:
  each arriving answer adjusts the task's posterior log-odds using the
  worker's current sensitivity/specificity estimate, and the worker's
  estimates using the task's refreshed posterior — O(1) per answer, no
  re-scan of earlier answers.  The streamed posterior is a first-order
  approximation; :meth:`IncrementalDawidSkene.converge` runs the exact EM
  of :class:`repro.aggregation.dawid_skene.DawidSkeneAggregator` over the
  accumulated sparse answer triplets (same initialisation, smoothing and
  stopping rule), so its converged posterior matches the batch aggregator
  on a replayed stream to numerical round-off.

Both classes key answers by string task/worker ids and preserve
first-seen order, so a deterministic routing trace yields a deterministic
label dictionary.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.aggregation.dawid_skene import DawidSkeneResult

_SMOOTH = 1e-6  # matches repro.aggregation.dawid_skene._SMOOTH
#: Pseudo-count anchoring a brand-new worker's streamed confusion estimate
#: at the batch initialiser's 0.7/0.7 starting point.
_PSEUDO_COUNT = 1.0
_PSEUDO_RATE = 0.7

#: EM iteration histogram bounds (converge() stops at max_iterations=100).
_ITERATION_BOUNDS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 100.0)


class _AggregatorMetrics:
    """Pre-bound convergence/ingestion metrics for one aggregator."""

    __slots__ = ("votes", "converged", "not_converged", "iterations")

    def __init__(self, registry, aggregator_name: str) -> None:
        self.votes = registry.counter(
            "aggregation.votes.ingested",
            "votes ingested by streaming aggregators",
            ("aggregator",),
        ).labels(aggregator_name)
        runs = registry.counter(
            "aggregation.converge.runs",
            "aggregator convergence runs by outcome",
            ("aggregator", "converged"),
        )
        self.converged = runs.labels(aggregator_name, "true")
        self.not_converged = runs.labels(aggregator_name, "false")
        self.iterations = registry.histogram(
            "aggregation.converge.iterations",
            "EM iterations per convergence run",
            ("aggregator",),
            bounds=_ITERATION_BOUNDS,
        ).labels(aggregator_name)


class OnlineMajorityVote:
    """Exact streaming majority vote over string task ids."""

    name = "majority"

    def __init__(self, tie_break: bool = True) -> None:
        self._tie_break = tie_break
        self._positive: Dict[str, int] = {}
        self._total: Dict[str, int] = {}
        self._metrics: Optional[_AggregatorMetrics] = None

    def bind_metrics(self, registry) -> None:
        """Attach ingestion counters from a metrics registry."""
        self._metrics = _AggregatorMetrics(registry, self.name)

    @property
    def n_tasks(self) -> int:
        return len(self._total)

    @property
    def n_answers(self) -> int:
        return sum(self._total.values())

    def add(self, task_id: str, worker_id: str, answer: bool) -> bool:
        """Record one answer; returns the task's updated label."""
        self._positive[task_id] = self._positive.get(task_id, 0) + int(bool(answer))
        self._total[task_id] = self._total.get(task_id, 0) + 1
        if self._metrics is not None:
            self._metrics.votes.inc()
        return self.label(task_id)

    def label(self, task_id: str) -> bool:
        """Current label of ``task_id`` (ties resolved by ``tie_break``)."""
        total = self._total.get(task_id, 0)
        positive = self._positive.get(task_id, 0)
        if total == 0 or positive * 2 == total:
            return self._tie_break
        return positive * 2 > total

    def labels(self) -> Dict[str, bool]:
        """All task labels, in first-seen task order."""
        return {task_id: self.label(task_id) for task_id in self._total}


class IncrementalDawidSkene:
    """Per-answer Dawid-Skene with an exact EM replay over its own state.

    ``add`` is O(1): it updates the task's posterior log-odds with the
    answering worker's current confusion estimate and then refreshes that
    worker's estimate with the task's new posterior.  ``labels`` reads the
    streamed posteriors.  ``converge`` runs the batch EM over the sparse
    ``(worker, task, answer)`` triplets accumulated so far — it never needs
    the platform's answer history, only the aggregator's own state.
    """

    def __init__(self, max_iterations: int = 100, tolerance: float = 1e-6) -> None:
        if max_iterations <= 0:
            raise ValueError("max_iterations must be positive")
        if tolerance <= 0:
            raise ValueError("tolerance must be positive")
        self._max_iterations = max_iterations
        self._tolerance = tolerance
        self._metrics: Optional[_AggregatorMetrics] = None

        self._task_index: Dict[str, int] = {}
        self._worker_index: Dict[str, int] = {}
        self._seen_pairs: Set[Tuple[int, int]] = set()
        # Sparse answer triplets, appended per answer.
        self._answer_workers: List[int] = []
        self._answer_tasks: List[int] = []
        self._answer_values: List[float] = []
        # Streaming state: per-task posterior log-odds, per-worker
        # posterior-weighted confusion counts.
        self._log_odds: List[float] = []
        self._votes_positive: List[int] = []
        self._votes_total: List[int] = []
        self._sens_num: List[float] = []
        self._sens_den: List[float] = []
        self._spec_num: List[float] = []
        self._spec_den: List[float] = []

    name = "dawid_skene"

    def bind_metrics(self, registry) -> None:
        """Attach ingestion and convergence metrics from a metrics registry."""
        self._metrics = _AggregatorMetrics(registry, self.name)

    # ------------------------------------------------------------------ #
    @property
    def n_tasks(self) -> int:
        return len(self._task_index)

    @property
    def n_workers(self) -> int:
        return len(self._worker_index)

    @property
    def n_answers(self) -> int:
        return len(self._answer_values)

    @property
    def task_ids(self) -> List[str]:
        """Task ids in first-seen order (the row order of ``converge``)."""
        return list(self._task_index)

    @property
    def worker_ids(self) -> List[str]:
        """Worker ids in first-seen order."""
        return list(self._worker_index)

    # ------------------------------------------------------------------ #
    def _task(self, task_id: str) -> int:
        index = self._task_index.get(task_id)
        if index is None:
            index = len(self._task_index)
            self._task_index[task_id] = index
            self._log_odds.append(0.0)
            self._votes_positive.append(0)
            self._votes_total.append(0)
        return index

    def _worker(self, worker_id: str) -> int:
        index = self._worker_index.get(worker_id)
        if index is None:
            index = len(self._worker_index)
            self._worker_index[worker_id] = index
            self._sens_num.append(_PSEUDO_RATE * _PSEUDO_COUNT)
            self._sens_den.append(_PSEUDO_COUNT)
            self._spec_num.append(_PSEUDO_RATE * _PSEUDO_COUNT)
            self._spec_den.append(_PSEUDO_COUNT)
        return index

    def _worker_rates(self, worker: int) -> Tuple[float, float]:
        sensitivity = (self._sens_num[worker] + _SMOOTH) / (self._sens_den[worker] + 2 * _SMOOTH)
        specificity = (self._spec_num[worker] + _SMOOTH) / (self._spec_den[worker] + 2 * _SMOOTH)
        return sensitivity, specificity

    def add(self, task_id: str, worker_id: str, answer: bool) -> bool:
        """Record one answer; returns the task's updated streamed label."""
        task = self._task(task_id)
        worker = self._worker(worker_id)
        if (worker, task) in self._seen_pairs:
            raise ValueError(f"worker {worker_id!r} already answered task {task_id!r}")
        self._seen_pairs.add((worker, task))
        value = float(bool(answer))

        sensitivity, specificity = self._worker_rates(worker)
        if answer:
            evidence = np.log(sensitivity) - np.log(1.0 - specificity)
        else:
            evidence = np.log(1.0 - sensitivity) - np.log(specificity)
        self._log_odds[task] += float(evidence)
        self._votes_positive[task] += int(bool(answer))
        self._votes_total[task] += 1
        posterior = self._posterior_of(task)

        self._sens_num[worker] += posterior * value
        self._sens_den[worker] += posterior
        self._spec_num[worker] += (1.0 - posterior) * (1.0 - value)
        self._spec_den[worker] += 1.0 - posterior

        self._answer_workers.append(worker)
        self._answer_tasks.append(task)
        self._answer_values.append(value)
        if self._metrics is not None:
            self._metrics.votes.inc()
        return bool(posterior >= 0.5)

    def _posterior_of(self, task: int) -> float:
        return float(1.0 / (1.0 + np.exp(-self._log_odds[task])))

    def label(self, task_id: str) -> bool:
        """Current streamed label of ``task_id``."""
        index = self._task_index.get(task_id)
        if index is None:
            raise KeyError(f"no answers recorded for task {task_id!r}")
        return self._posterior_of(index) >= 0.5

    def labels(self) -> Dict[str, bool]:
        """Streamed labels of every task, in first-seen order."""
        return {task_id: self._posterior_of(index) >= 0.5 for task_id, index in self._task_index.items()}

    # ------------------------------------------------------------------ #
    def converge(
        self,
        max_iterations: Optional[int] = None,
        tolerance: Optional[float] = None,
    ) -> DawidSkeneResult:
        """Exact EM over the accumulated answers (batch-equivalent).

        Runs the same EM as
        :class:`repro.aggregation.dawid_skene.DawidSkeneAggregator` —
        majority-vote initialisation clipped to ``[0.05, 0.95]``, identical
        smoothing and stopping rule — but over the sparse triplets this
        aggregator accumulated, task rows in first-seen order and worker
        rows in first-seen order.
        """
        if self.n_answers == 0:
            raise ValueError("cannot converge an aggregator with no answers")
        max_iterations = max_iterations if max_iterations is not None else self._max_iterations
        tolerance = tolerance if tolerance is not None else self._tolerance
        workers = np.asarray(self._answer_workers, dtype=np.intp)
        tasks = np.asarray(self._answer_tasks, dtype=np.intp)
        answers = np.asarray(self._answer_values, dtype=float)
        n_workers = self.n_workers
        n_tasks = self.n_tasks

        positive = np.asarray(self._votes_positive, dtype=float)
        totals = np.asarray(self._votes_total, dtype=float)
        majority = np.where(totals == 0, True, np.where(positive * 2 == totals, True, positive * 2 > totals))
        posterior = np.clip(majority.astype(float), 0.05, 0.95)

        sensitivity = np.full(n_workers, _PSEUDO_RATE)
        specificity = np.full(n_workers, _PSEUDO_RATE)
        prior = float(np.clip(posterior.mean(), _SMOOTH, 1.0 - _SMOOTH))

        converged = False
        iteration = 0
        for iteration in range(1, max_iterations + 1):
            # ---------------- M-step ---------------- #
            weight_pos = posterior[tasks]
            weight_neg = 1.0 - weight_pos
            sensitivity = np.bincount(workers, weights=weight_pos * answers, minlength=n_workers) + _SMOOTH
            sensitivity /= np.bincount(workers, weights=weight_pos, minlength=n_workers) + 2 * _SMOOTH
            specificity = np.bincount(workers, weights=weight_neg * (1.0 - answers), minlength=n_workers) + _SMOOTH
            specificity /= np.bincount(workers, weights=weight_neg, minlength=n_workers) + 2 * _SMOOTH
            prior = float(np.clip(posterior.mean(), _SMOOTH, 1.0 - _SMOOTH))

            # ---------------- E-step ---------------- #
            evidence_pos = answers * np.log(sensitivity[workers]) + (1.0 - answers) * np.log(
                1.0 - sensitivity[workers]
            )
            evidence_neg = (1.0 - answers) * np.log(specificity[workers]) + answers * np.log(
                1.0 - specificity[workers]
            )
            log_pos = np.log(prior) + np.bincount(tasks, weights=evidence_pos, minlength=n_tasks)
            log_neg = np.log(1.0 - prior) + np.bincount(tasks, weights=evidence_neg, minlength=n_tasks)
            shift = np.maximum(log_pos, log_neg)
            new_posterior = np.exp(log_pos - shift) / (np.exp(log_pos - shift) + np.exp(log_neg - shift))

            if np.max(np.abs(new_posterior - posterior)) < tolerance:
                posterior = new_posterior
                converged = True
                break
            posterior = new_posterior

        if self._metrics is not None:
            (self._metrics.converged if converged else self._metrics.not_converged).inc()
            self._metrics.iterations.observe(iteration)
        return DawidSkeneResult(
            labels=posterior >= 0.5,
            posterior_positive=posterior,
            worker_accuracy=0.5 * (sensitivity + specificity),
            class_prior=prior,
            n_iterations=iteration,
            converged=converged,
        )

    def converged_labels(self) -> Dict[str, bool]:
        """Task labels after the exact EM replay, in first-seen order."""
        result = self.converge()
        return {task_id: bool(result.labels[index]) for task_id, index in self._task_index.items()}


__all__ = ["OnlineMajorityVote", "IncrementalDawidSkene"]
