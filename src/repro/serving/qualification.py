"""Per-domain worker qualification for the serving phase.

Selection ends with *who* is in the pool; serving additionally needs to know
*what each worker may be asked*.  Following potato's category-based
assignment idiom, every worker carries one qualification per domain, derived
from whatever evidence the platform has:

* on the **target domain** — the selector's final CPE estimate plus the
  number of golden questions the worker answered during training;
* on the **prior domains** — the historical profile ``(h_i, n_i)``.

A :class:`QualificationPolicy` turns ``(estimate, questions)`` into a
:class:`QualificationTier`:

``QUALIFIED``
    estimate ≥ ``threshold`` and at least ``min_questions`` answered — the
    worker is routed to freely.
``FALLBACK``
    estimate ≥ ``fallback_threshold`` (or too few questions to judge) — a
    configurable second tier routers may use when qualified capacity runs
    out; disable it with ``allow_fallback=False``.
``UNQUALIFIED``
    everything else — never routed to on that domain.

Drift detection (:mod:`repro.serving.quality`) demotes qualifications one
tier at a time, so a degrading worker first loses priority and then loses
the domain entirely.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Tuple


class QualificationTier(enum.IntEnum):
    """Routing priority of one worker on one domain (higher is better)."""

    UNQUALIFIED = 0
    FALLBACK = 1
    QUALIFIED = 2

    def demoted(self) -> "QualificationTier":
        """The next tier down (``UNQUALIFIED`` stays put)."""
        return QualificationTier(max(self.value - 1, QualificationTier.UNQUALIFIED.value))


@dataclass(frozen=True)
class QualificationPolicy:
    """Thresholds mapping qualification evidence to a tier.

    Attributes
    ----------
    threshold:
        Minimum estimated accuracy for the ``QUALIFIED`` tier.
    fallback_threshold:
        Minimum estimated accuracy for the ``FALLBACK`` tier; must not
        exceed ``threshold``.
    min_questions:
        Golden/prior questions needed before an estimate is trusted; with
        fewer, the worker lands in the fallback tier (benefit of the doubt,
        never full qualification).
    allow_fallback:
        When ``False`` the fallback tier collapses into ``UNQUALIFIED``,
        i.e. only fully qualified workers are ever routed to.
    """

    threshold: float = 0.6
    fallback_threshold: float = 0.5
    min_questions: int = 10
    allow_fallback: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.threshold <= 1.0:
            raise ValueError("threshold must lie in [0, 1]")
        if not 0.0 <= self.fallback_threshold <= 1.0:
            raise ValueError("fallback_threshold must lie in [0, 1]")
        if self.fallback_threshold > self.threshold:
            raise ValueError("fallback_threshold cannot exceed threshold")
        if self.min_questions < 0:
            raise ValueError("min_questions must be non-negative")

    def qualify(self, estimate: float, questions: int) -> QualificationTier:
        """The tier earned by ``estimate`` over ``questions`` answered tasks."""
        fallback = QualificationTier.FALLBACK if self.allow_fallback else QualificationTier.UNQUALIFIED
        if questions < self.min_questions:
            return fallback if estimate >= self.fallback_threshold else QualificationTier.UNQUALIFIED
        if estimate >= self.threshold:
            return QualificationTier.QUALIFIED
        if estimate >= self.fallback_threshold:
            return fallback
        return QualificationTier.UNQUALIFIED


@dataclass(frozen=True)
class DomainQualification:
    """One worker's qualification on one domain."""

    worker_id: str
    domain: str
    estimate: float
    questions: int
    tier: QualificationTier

    def demoted(self) -> "DomainQualification":
        """A copy one tier lower (used by drift demotion)."""
        return replace(self, tier=self.tier.demoted())

    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        return {
            "worker_id": self.worker_id,
            "domain": self.domain,
            "estimate": self.estimate,
            "questions": self.questions,
            "tier": self.tier.name.lower(),
        }


def affinity_rank_key(estimate: float, worker_id: str) -> Tuple[float, str]:
    """The pinned affinity ranking key: ``(-estimate, worker_id)``.

    This IS the routing contract of the ``domain_affinity`` policy: within
    one qualification tier, candidates are ordered by descending estimate
    with the worker id as the only tie-break.  Live load deliberately does
    not participate — a key that depended on ``active`` would shift
    *between the votes of one task* as earlier picks are charged, and it
    could not be materialised in a pre-sorted index.  Both routing engines
    and :class:`~repro.serving.index.DomainIndexSet` order by exactly this
    function, which is what makes them byte-for-byte equivalent.
    """
    return (-float(estimate), worker_id)


def qualification_for(
    policy: QualificationPolicy,
    worker_id: str,
    domain: str,
    estimate: float,
    questions: int,
) -> DomainQualification:
    """Build one :class:`DomainQualification` under ``policy``."""
    return DomainQualification(
        worker_id=worker_id,
        domain=domain,
        estimate=float(estimate),
        questions=int(questions),
        tier=policy.qualify(float(estimate), int(questions)),
    )


__all__ = [
    "QualificationTier",
    "QualificationPolicy",
    "DomainQualification",
    "affinity_rank_key",
    "qualification_for",
]
