"""Routing policies: which workers annotate the next working task.

Mirrors the selector registry (:mod:`repro.core.registry`) for the serving
axis: every policy registers a keyword-configurable factory under a
canonical name, so deployments choose a policy by string and new policies
plug in with one decorator:

>>> from repro.serving.routing import make_router, register_router

Built-in policies (all deterministic, all enforcing the per-worker
concurrency cap by charging assignments through the pool):

``round_robin``
    Cycle through the eligible workers in pool order.
``least_loaded``
    A lazy min-heap over ``(active, assigned_total, worker_id)``; the
    worker with the fewest in-flight assignments wins, lifetime assignment
    count breaks ties, worker id makes it total.
``domain_affinity``
    Prefer fully qualified workers on the task's domain, ranked by the
    pinned affinity key ``(-estimate, worker_id)``; spill into the
    fallback tier only when qualified capacity is exhausted.  Two
    engines: ``indexed`` (the default) walks pre-sorted per-(domain,
    tier) :class:`~repro.serving.index.DomainIndexSet` rankings
    maintained from the pool event bus — O(votes + log n) per task;
    ``reference`` re-sorts the pool per task — O(n log n) — and exists
    as the independently-simple implementation the equivalence tests
    hold the index against.

A policy's :meth:`BaseRouter.route` picks ``n_votes`` *distinct* workers
and charges their in-flight load; the serving loop releases the load when
the answer is recorded.  The platform budget is enforced once, in
:class:`~repro.serving.service.AnnotationService`, before any policy is
consulted, so no policy can route past it.
"""

from __future__ import annotations

import abc
import heapq
import inspect
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.obs.timing import perf_counter
from repro.serving.index import DomainIndexSet
from repro.serving.pool import ServingPool, ServingWorker, pool_event_noop
from repro.serving.qualification import QualificationTier, affinity_rank_key


class NoEligibleWorkersError(RuntimeError):
    """Raised when no eligible worker has spare capacity for a task."""


#: Bounds for the (volatile) route latency histogram — routes run in the
#: single-digit-microsecond range on indexed engines.
ROUTE_LATENCY_BOUNDS = (
    0.000001,
    0.000002,
    0.000005,
    0.00001,
    0.00002,
    0.00005,
    0.0001,
    0.001,
)


class _RouterObs:
    """Pre-bound route metrics for one router (hot-path cheap).

    Children are resolved once at bind time so the per-route cost is a
    countdown decrement plus one counter ``inc``; the wall-clock latency
    histogram (volatile) is sampled every Nth call rather than on every
    route, which keeps enabled-telemetry overhead inside the benchmarked
    ≤3% budget.
    """

    __slots__ = ("full", "short", "exhausted", "latency", "sample_every", "countdown")

    def __init__(self, registry, router_name: str, sample_every: int) -> None:
        outcomes = registry.counter(
            "serving.route.outcomes",
            "route() calls by outcome: full quorum, short (fewer than "
            "requested), exhausted (no eligible worker)",
            ("router", "outcome"),
        )
        self.full = outcomes.labels(router_name, "full")
        self.short = outcomes.labels(router_name, "short")
        self.exhausted = outcomes.labels(router_name, "exhausted")
        self.latency = registry.histogram(
            "serving.route.latency_seconds",
            "sampled wall-clock latency of route() calls",
            ("router",),
            volatile=True,
            bounds=ROUTE_LATENCY_BOUNDS,
        ).labels(router_name)
        self.sample_every = sample_every
        self.countdown = sample_every


class BaseRouter(abc.ABC):
    """Interface every routing policy implements.

    Policies implement :meth:`_route`; the public :meth:`route` is a
    template method that validates the vote count and, when telemetry is
    bound, records per-router outcome counters and sampled latency.  With
    no telemetry bound the template adds a single ``is None`` check.
    """

    #: Canonical policy name (used in traces, reports and metric labels).
    name: str = "base"

    def __init__(self, pool: ServingPool, min_tier: QualificationTier = QualificationTier.FALLBACK) -> None:
        self._pool = pool
        self._min_tier = min_tier
        self._obs: Optional[_RouterObs] = None
        pool.add_listener(self)

    def bind_telemetry(self, telemetry) -> None:
        """Attach route metrics from a :class:`repro.obs.config.Telemetry`.

        A disabled (or ``None``) bundle unbinds: the route path goes back
        to the bare ``is None`` check.
        """
        if telemetry is None or not telemetry.enabled:
            self._obs = None
            return
        self._obs = _RouterObs(
            telemetry.registry,
            self.name,
            telemetry.config.route_latency_sample_every,
        )

    @property
    def pool(self) -> ServingPool:
        return self._pool

    # Index-invalidation hooks (see ServingPool.add_listener).  The
    # defaults are no-ops — and marked as such, so the pool skips them at
    # dispatch time; policies with derived state override the ones that
    # can invalidate it.
    @pool_event_noop
    def on_worker_added(self, worker_id: str) -> None:
        """Called by the pool after a worker is admitted."""

    @pool_event_noop
    def on_worker_removed(self, worker_id: str) -> None:
        """Called by the pool after a worker departs."""

    @pool_event_noop
    def on_qualification_changed(self, worker_id: str, domain: str) -> None:
        """Called after a worker's tier/estimate on ``domain`` changed."""

    @pool_event_noop
    def on_load_changed(self, worker_id: str) -> None:
        """Called after an in-flight slot was charged or released."""

    def route(self, domain: str, n_votes: int) -> List[str]:
        """Pick up to ``n_votes`` distinct workers for one ``domain`` task.

        Template method: validates ``n_votes``, delegates to the policy's
        :meth:`_route`, and — only when telemetry is bound — counts the
        outcome (``full`` quorum, ``short`` of the requested votes, or
        ``exhausted`` on :class:`NoEligibleWorkersError`) and samples
        wall-clock latency.
        """
        self._check_votes(n_votes)
        obs = self._obs
        if obs is None:
            return self._route(domain, n_votes)
        obs.countdown -= 1
        if obs.countdown <= 0:
            obs.countdown = obs.sample_every
            start = perf_counter()
            try:
                chosen = self._route(domain, n_votes)
            except NoEligibleWorkersError:
                obs.exhausted.inc()
                raise
            obs.latency.observe(perf_counter() - start)
        else:
            try:
                chosen = self._route(domain, n_votes)
            except NoEligibleWorkersError:
                obs.exhausted.inc()
                raise
        (obs.full if len(chosen) >= n_votes else obs.short).inc()
        return chosen

    def _route(self, domain: str, n_votes: int) -> List[str]:
        """Policy implementation behind :meth:`route` (``n_votes`` > 0).

        Implementations must charge every returned worker through
        :meth:`ServingPool.begin_assignment` (which enforces the
        concurrency cap) and must raise :class:`NoEligibleWorkersError`
        when not a single eligible worker has capacity.  Returning fewer
        than ``n_votes`` workers is allowed when capacity is short.

        Not abstract: a policy may instead override :meth:`route` whole
        (pre-existing third-party routers do), forgoing route metrics.
        """
        raise NotImplementedError(f"router {type(self).__name__} implements neither _route nor route")

    def _check_votes(self, n_votes: int) -> None:
        if n_votes <= 0:
            raise ValueError("n_votes must be positive")

    def route_excluding(self, domain: str, n_votes: int, exclude: Iterable[str]) -> List[str]:
        """Route up to ``n_votes`` workers, none of which are in ``exclude``.

        Used to reassign an invalidated vote: the replacement must not be
        a worker that already holds (or held) a vote on the same task.
        Over-requests by ``len(exclude)`` picks and releases the surplus
        charges, so the underlying policy needs no exclusion support.
        Unlike :meth:`route`, capacity exhaustion returns ``[]`` instead
        of raising — an unassignable replacement vote is dropped, not
        fatal.
        """
        self._check_votes(n_votes)
        excluded = set(exclude)
        try:
            picks = self.route(domain, n_votes + len(excluded))
        except NoEligibleWorkersError:
            return []
        chosen: List[str] = []
        for worker_id in picks:
            if worker_id not in excluded and len(chosen) < n_votes:
                chosen.append(worker_id)
            else:
                self._pool.release_assignment(worker_id)
        return chosen

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


# ---------------------------------------------------------------------- #
# Registry (the core/registry.py pattern, on the routing axis)
# ---------------------------------------------------------------------- #
#: A router factory: a serving pool plus keyword configuration in, policy out.
RouterFactory = Callable[..., BaseRouter]


class RouterRegistry:
    """A name -> factory mapping with aliases and friendly errors."""

    def __init__(self) -> None:
        self._factories: Dict[str, RouterFactory] = {}
        self._aliases: Dict[str, str] = {}

    @staticmethod
    def _canonical(name: str) -> str:
        return name.strip().lower().replace("-", "_")

    def register(
        self,
        name: str,
        factory: Optional[RouterFactory] = None,
        *,
        aliases: Iterable[str] = (),
        replace: bool = False,
    ):
        """Register ``factory`` under ``name`` (usable as a decorator)."""

        def _register(target: RouterFactory) -> RouterFactory:
            canonical = self._canonical(name)
            if not replace and (canonical in self._factories or canonical in self._aliases):
                raise ValueError(
                    f"router {canonical!r} is already registered (pass replace=True to override)"
                )
            self._aliases.pop(canonical, None)
            self._factories[canonical] = target
            for alias in aliases:
                alias_key = self._canonical(alias)
                if alias_key == canonical:
                    continue
                if alias_key in self._factories:
                    raise ValueError(
                        f"alias {alias_key!r} collides with the registered router {alias_key!r}"
                    )
                existing = self._aliases.get(alias_key)
                if not replace and existing is not None and existing != canonical:
                    raise ValueError(f"alias {alias_key!r} already points at router {existing!r}")
                self._aliases[alias_key] = canonical
            return target

        if factory is not None:
            return _register(factory)
        return _register

    def resolve(self, name: str) -> str:
        """Canonical name for ``name`` (follows aliases); KeyError if unknown."""
        key = self._canonical(name)
        key = self._aliases.get(key, key)
        if key not in self._factories:
            raise KeyError(f"unknown router {name!r}; registered routers: {', '.join(self.names())}")
        return key

    def __contains__(self, name: str) -> bool:
        key = self._canonical(name)
        return self._aliases.get(key, key) in self._factories

    def names(self) -> List[str]:
        """Canonical names of every registered router, sorted."""
        return sorted(self._factories)

    def engines(self, name: str) -> Tuple[str, ...]:
        """The ranking engines router ``name`` declares (``()`` when none).

        A router advertises its engines through an ``ENGINES`` class
        attribute (default first).  The serving layer forwards the
        ``routing_engine`` knob to a router only when the configured value
        appears here, so one config can name an engine that belongs to a
        different router without breaking the others.
        """
        canonical = self.resolve(name)
        return tuple(getattr(self._factories[canonical], "ENGINES", ()))

    def known_engines(self) -> List[str]:
        """Every engine declared by any registered router, sorted."""
        known = set()
        for name in self.names():
            known.update(self.engines(name))
        return sorted(known)

    def factory_accepts(self, name: str, param: str) -> bool:
        """Whether ``name``'s factory accepts the keyword argument ``param``.

        Lets callers forward optional configuration (the serving layer's
        ``engine=``) only to routers that understand it, so third-party
        routers without the knob keep working.  Factories whose signature
        cannot be introspected are assumed to accept everything.
        """
        canonical = self.resolve(name)
        factory = self._factories[canonical]
        try:
            signature = inspect.signature(factory)
        except (TypeError, ValueError):  # builtins / C-level factories
            return True
        for parameter in signature.parameters.values():
            if parameter.kind is inspect.Parameter.VAR_KEYWORD:
                return True
            if parameter.name == param and parameter.kind in (
                inspect.Parameter.POSITIONAL_OR_KEYWORD,
                inspect.Parameter.KEYWORD_ONLY,
            ):
                return True
        return False

    def create(self, name: str, pool: ServingPool, **config: object) -> BaseRouter:
        """Build the router registered under ``name`` for ``pool``."""
        canonical = self.resolve(name)
        factory = self._factories[canonical]
        try:
            return factory(pool, **config)
        except TypeError as exc:
            raise TypeError(
                f"invalid configuration for router {canonical!r}: {exc} "
                f"(signature: {canonical}{inspect.signature(factory)})"
            ) from exc


#: The process-wide registry used by :func:`make_router` and the CLI.
GLOBAL_ROUTER_REGISTRY = RouterRegistry()


def register_router(
    name: str,
    factory: Optional[RouterFactory] = None,
    *,
    aliases: Iterable[str] = (),
    replace: bool = False,
):
    """Register a router factory in the global registry (decorator-friendly)."""
    return GLOBAL_ROUTER_REGISTRY.register(name, factory, aliases=aliases, replace=replace)


def make_router(name: str, pool: ServingPool, **config: object) -> BaseRouter:
    """Construct a registered routing policy by name for ``pool``."""
    return GLOBAL_ROUTER_REGISTRY.create(name, pool, **config)


def router_names() -> List[str]:
    """Canonical names of every registered routing policy."""
    return GLOBAL_ROUTER_REGISTRY.names()


def router_exists(name: str) -> bool:
    """Whether ``name`` (or an alias of it) is registered."""
    return name in GLOBAL_ROUTER_REGISTRY


def resolve_router_name(name: str) -> str:
    """Canonical registered name for ``name`` (follows aliases, fixes case)."""
    return GLOBAL_ROUTER_REGISTRY.resolve(name)


def router_accepts(name: str, param: str) -> bool:
    """Whether the registered router ``name`` accepts keyword ``param``."""
    return GLOBAL_ROUTER_REGISTRY.factory_accepts(name, param)


def router_engines(name: str) -> Tuple[str, ...]:
    """The ranking engines the registered router ``name`` declares."""
    return GLOBAL_ROUTER_REGISTRY.engines(name)


def known_routing_engines() -> List[str]:
    """Every ranking engine declared by any registered router, sorted."""
    return GLOBAL_ROUTER_REGISTRY.known_engines()


# ---------------------------------------------------------------------- #
# Built-in policies
# ---------------------------------------------------------------------- #
class RoundRobinRouter(BaseRouter):
    """Cycle through eligible workers in pool order.

    The cycling order is a mirror of the pool's membership order,
    maintained from the membership hooks (arrivals append, departures
    delete in place — exactly how the pool's insertion-ordered dict
    evolves), so a route never rebuilds the id list: re-materialising all
    worker ids per task was an O(n) hidden scan that dominated routing
    cost on 100k-worker pools.
    """

    name = "round_robin"

    def __init__(self, pool: ServingPool, min_tier: QualificationTier = QualificationTier.FALLBACK) -> None:
        # Mirrored before the base class subscribes us: the membership
        # hooks keep this list identical to pool.worker_ids from then on.
        self._order: List[str] = pool.worker_ids
        super().__init__(pool, min_tier)
        self._cursor = 0

    def on_worker_added(self, worker_id: str) -> None:
        self._order.append(worker_id)

    def on_worker_removed(self, worker_id: str) -> None:
        self._order.remove(worker_id)

    def _route(self, domain: str, n_votes: int) -> List[str]:
        order = self._order
        chosen: List[str] = []
        scanned = 0
        while len(chosen) < n_votes and scanned < len(order):
            worker_id = order[self._cursor % len(order)]
            self._cursor += 1
            scanned += 1
            worker = self._pool[worker_id]
            if worker.tier_on(domain) >= self._min_tier and worker.has_capacity:
                self._pool.begin_assignment(worker_id)
                chosen.append(worker_id)
        if not chosen:
            raise NoEligibleWorkersError(f"no eligible worker with capacity on domain {domain!r}")
        return chosen


class LeastLoadedRouter(BaseRouter):
    """Least-loaded policy: fewest in-flight assignments wins.

    Per vote the minimal ``(active, assigned_total, worker_id)`` key among
    eligible workers is picked.  Two engines realise that order:

    ``heap`` (default)
        One min-heap over the full key — O(log n) per mutation,
        cache-hostile at 100k workers.
    ``bucket``
        A bucket queue over the discrete ``active`` load levels (bounded
        by ``max_concurrent``), one small ``(assigned_total, worker_id)``
        min-heap per level.  The global O(log n) heap churn collapses to
        O(log b) on the tiny per-level heaps, flattening throughput
        across pool sizes.

    Both engines are re-keyed **eagerly** from the pool's load events:
    every ``begin``/``complete``/``release`` files the worker's current
    key, leaving the old entry behind as garbage the route scan discards
    (the key mismatch gives it away).  Eager re-keying is what makes the
    documented order *true*: a lazy scheme that only re-keys at pop time
    would leave a worker whose key **decreased** (a completed assignment)
    buried at its stale position while a worse key routes first.  It is
    also what makes the two engines provably identical — each pop yields
    the global minimum live key, keys are unique (the worker id is part
    of the key), and the eligibility checks are the same code path (held
    in lockstep by ``tests/test_routing_equivalence.py``).

    Membership changes arrive on the same listener protocol: arrivals
    are pushed via :meth:`on_worker_added`, and entries for departed
    workers are discarded at pop time by a membership check.  Garbage —
    from load churn and departures alike — is bounded by compaction:
    once entries outnumber live workers 2:1 (plus a small floor) the
    structure is rebuilt from the pool in one linear sweep, so a long
    churny marketplace run cannot grow it without bound.  Compaction
    cannot change routing output: the pop sequence is the sorted order
    of the live keys regardless of internal layout.
    """

    name = "least_loaded"

    #: Valid ``engine=`` values, default first.
    ENGINES = ("heap", "bucket")

    def __init__(
        self,
        pool: ServingPool,
        min_tier: QualificationTier = QualificationTier.FALLBACK,
        engine: str = "heap",
    ) -> None:
        if engine not in self.ENGINES:
            raise ValueError(
                f"unknown routing engine {engine!r}; expected one of {', '.join(self.ENGINES)}"
            )
        self._engine = engine
        self._heap: Optional[List[Tuple[int, int, str]]] = None
        self._buckets: Optional[List[List[Tuple[int, str]]]] = None
        self._entries = 0
        # Bound as an *instance* attribute before the base class
        # subscribes us: the pool's hook pre-binding then dispatches load
        # events here (the class-level hook is a marked no-op the pool
        # would skip).
        self.on_load_changed = self._file_live_key  # type: ignore[method-assign]
        super().__init__(pool, min_tier)
        if engine == "heap":
            self._heap = [
                (worker.active, worker.assigned_total, worker.worker_id) for worker in pool.workers
            ]
            heapq.heapify(self._heap)
        else:
            self._buckets = []
            for worker in pool.workers:
                self._bucket_push(worker.active, worker.assigned_total, worker.worker_id)
        self._dead = 0

    @property
    def engine(self) -> str:
        """The active ranking engine (``heap`` or ``bucket``)."""
        return self._engine

    def on_worker_added(self, worker_id: str) -> None:
        worker = self._pool[worker_id]
        if self._heap is not None:
            heapq.heappush(self._heap, (worker.active, worker.assigned_total, worker_id))
        else:
            self._bucket_push(worker.active, worker.assigned_total, worker_id)

    def on_worker_removed(self, worker_id: str) -> None:
        # The departed worker's entry is now garbage; it is either popped
        # and discarded lazily (decrementing this counter) or swept by
        # _maybe_compact once garbage outnumbers live entries.
        self._dead += 1

    # -- shared plumbing ------------------------------------------------- #
    def _bucket_push(self, active: int, assigned: int, worker_id: str) -> None:
        buckets = self._buckets
        assert buckets is not None
        while len(buckets) <= active:
            buckets.append([])
        heapq.heappush(buckets[active], (assigned, worker_id))
        self._entries += 1

    def _file_live_key(self, worker_id: str) -> None:
        # Eager re-keying (bound as this instance's on_load_changed):
        # every load mutation files the worker's current key, leaving the
        # old entry behind as garbage that the route scan discards (the
        # key mismatch gives it away).
        worker = self._pool[worker_id]
        if self._heap is not None:
            heapq.heappush(self._heap, (worker.active, worker.assigned_total, worker_id))
        else:
            self._bucket_push(worker.active, worker.assigned_total, worker_id)

    def _maybe_compact(self) -> None:
        # Garbage grows with *load churn*, not just departures: each
        # begin/complete/release leaves one stale key behind.  Once
        # entries outnumber live workers 2:1 the structure is rebuilt in
        # one linear sweep — amortised O(1) per push.
        if self._heap is not None:
            if len(self._heap) <= 2 * len(self._pool) + 16:
                return
            self._heap = [
                (worker.active, worker.assigned_total, worker.worker_id)
                for worker in self._pool.workers
            ]
            heapq.heapify(self._heap)
            self._dead = 0
            return
        if self._entries <= 2 * len(self._pool) + 16:
            return
        self._buckets = []
        self._entries = 0
        for worker in self._pool.workers:
            self._bucket_push(worker.active, worker.assigned_total, worker.worker_id)
        self._dead = 0

    def _route_bucket(self, domain: str, n_votes: int) -> List[str]:
        buckets = self._buckets
        assert buckets is not None
        chosen: List[str] = []
        held_back: List[Tuple[int, int, str]] = []
        level = 0
        while level < len(buckets) and len(chosen) < n_votes:
            bucket = buckets[level]
            if not bucket:
                # A begin_assignment during this scan only pushes keys at
                # level + 1 or deeper, so the walk never has to back up.
                level += 1
                continue
            assigned, worker_id = heapq.heappop(bucket)
            self._entries -= 1
            worker = self._pool.get(worker_id)
            if worker is None:
                # Garbage entry for a departed worker — drop it for good.
                self._dead = max(0, self._dead - 1)
                continue
            if (worker.active, worker.assigned_total) != (level, assigned):
                # Stale key: the live key was already filed by the load
                # hook, so the old entry is pure garbage.
                continue
            if worker_id in chosen:
                held_back.append((level, assigned, worker_id))
                continue
            if worker.tier_on(domain) < self._min_tier or not worker.has_capacity:
                held_back.append((level, assigned, worker_id))
                continue
            # Charging moves the worker to the next load level (the load
            # hook files the new key there); the entry just popped is
            # consumed, so the worker cannot be picked twice.
            self._pool.begin_assignment(worker_id)
            chosen.append(worker_id)
        for level0, assigned, worker_id in held_back:
            self._bucket_push(level0, assigned, worker_id)
        if not chosen:
            raise NoEligibleWorkersError(f"no eligible worker with capacity on domain {domain!r}")
        return chosen

    def _route(self, domain: str, n_votes: int) -> List[str]:
        self._maybe_compact()
        if self._heap is None:
            return self._route_bucket(domain, n_votes)
        chosen: List[str] = []
        held_back: List[Tuple[int, int, str]] = []
        while self._heap and len(chosen) < n_votes:
            active, assigned, worker_id = heapq.heappop(self._heap)
            worker = self._pool.get(worker_id)
            if worker is None:
                # Garbage entry for a departed worker — drop it for good.
                self._dead = max(0, self._dead - 1)
                continue
            if (active, assigned) != (worker.active, worker.assigned_total):
                # Stale key: the live key was already filed by the load
                # hook, so the old entry is pure garbage.
                continue
            if worker_id in chosen:
                # The post-charge key of an earlier pick: one task must
                # never pick the same worker twice, so park it untouched.
                held_back.append((active, assigned, worker_id))
                continue
            if worker.tier_on(domain) < self._min_tier or not worker.has_capacity:
                held_back.append((active, assigned, worker_id))
                continue
            # Charging files the worker's next key via the load hook; the
            # entry just popped is consumed, so the worker cannot be
            # picked twice.
            self._pool.begin_assignment(worker_id)
            chosen.append(worker_id)
        for entry in held_back:
            heapq.heappush(self._heap, entry)
        if not chosen:
            raise NoEligibleWorkersError(f"no eligible worker with capacity on domain {domain!r}")
        return chosen


class DomainAffinityRouter(BaseRouter):
    """Prefer the workers best qualified on the task's domain.

    Within each tier candidates are ordered by the **pinned affinity
    key** ``(-estimate, worker_id)`` (:func:`affinity_rank_key`): the
    ranking a task sees is a pure function of qualification state, frozen
    for the whole task — live load deliberately does not participate, so
    the ranking cannot shift *between the votes of one task* as earlier
    picks are charged.  The fallback tier is consulted only when the
    qualified tier cannot supply ``n_votes`` workers with spare capacity.

    Two engines produce that ranking:

    ``indexed`` (default)
        Walks pre-sorted per-(domain, tier) lists kept incrementally
        consistent by a :class:`~repro.serving.index.DomainIndexSet` fed
        from the pool event bus — O(votes + log n) amortised per task.
    ``reference``
        Re-sorts the pool's tier members per task — O(n log n), kept as
        the obviously-correct implementation the equivalence tests hold
        the index against.

    Both check capacity live per candidate and are byte-for-byte
    equivalent (enforced by ``tests/test_routing_equivalence.py``).
    """

    name = "domain_affinity"

    #: Valid ``engine=`` values, default first.
    ENGINES = ("indexed", "reference")

    def __init__(
        self,
        pool: ServingPool,
        min_tier: QualificationTier = QualificationTier.FALLBACK,
        engine: str = "indexed",
        compact_floor: int = 32,
    ) -> None:
        if engine not in self.ENGINES:
            raise ValueError(
                f"unknown routing engine {engine!r}; expected one of {', '.join(self.ENGINES)}"
            )
        self._engine = engine
        # Built before the base class subscribes us to the pool: the hooks
        # the subscription binds forward straight to this index.
        self._index = DomainIndexSet(pool, compact_floor=compact_floor) if engine == "indexed" else None
        super().__init__(pool, min_tier)

    @property
    def engine(self) -> str:
        """The active ranking engine (``indexed`` or ``reference``)."""
        return self._engine

    # -- index-invalidation hooks (no-ops under the reference engine) -- #
    def on_worker_added(self, worker_id: str) -> None:
        if self._index is not None:
            self._index.on_worker_added(worker_id)

    def on_worker_removed(self, worker_id: str) -> None:
        if self._index is not None:
            self._index.on_worker_removed(worker_id)

    def on_qualification_changed(self, worker_id: str, domain: str) -> None:
        if self._index is not None:
            self._index.on_qualification_changed(worker_id, domain)

    # -- ranking -------------------------------------------------------- #
    def _iter_tier(self, domain: str, tier: QualificationTier) -> Iterator[ServingWorker]:
        """The tier's members in pinned affinity order, capacity unchecked."""
        if self._index is not None:
            return self._index.iter_tier(domain, tier)
        candidates = [w for w in self._pool.workers if w.tier_on(domain) is tier]
        candidates.sort(key=lambda w: affinity_rank_key(w.estimate_on(domain), w.worker_id))
        return iter(candidates)

    def _pick(self, domain: str, n_votes: int, excluded: Optional[Set[str]]) -> List[str]:
        chosen: List[str] = []
        for tier in (QualificationTier.QUALIFIED, QualificationTier.FALLBACK):
            if tier < self._min_tier or len(chosen) >= n_votes:
                break
            for worker in self._iter_tier(domain, tier):
                if len(chosen) >= n_votes:
                    break
                if excluded is not None and worker.worker_id in excluded:
                    continue
                if not worker.has_capacity:
                    continue
                self._pool.begin_assignment(worker.worker_id)
                chosen.append(worker.worker_id)
        return chosen

    def _route(self, domain: str, n_votes: int) -> List[str]:
        chosen = self._pick(domain, n_votes, excluded=None)
        if not chosen:
            raise NoEligibleWorkersError(f"no eligible worker with capacity on domain {domain!r}")
        return chosen

    def route_excluding(self, domain: str, n_votes: int, exclude: Iterable[str]) -> List[str]:
        """Native exclusion: skip excluded workers during the ranked walk.

        Equivalent to the base class's over-request-and-release dance (at
        most ``len(exclude)`` of the first ``n + len(exclude)`` ranked
        picks can be excluded, so the surviving prefix is identical) but
        without charging surplus assignments, which matters when a single
        index walk replaces the per-call re-sort.
        """
        self._check_votes(n_votes)
        return self._pick(domain, n_votes, excluded=set(exclude))


register_router("round_robin", RoundRobinRouter, aliases=("rr",))
register_router("least_loaded", LeastLoadedRouter, aliases=("ll",))
register_router("domain_affinity", DomainAffinityRouter, aliases=("affinity",))


__all__ = [
    "BaseRouter",
    "RouterFactory",
    "RouterRegistry",
    "GLOBAL_ROUTER_REGISTRY",
    "NoEligibleWorkersError",
    "RoundRobinRouter",
    "LeastLoadedRouter",
    "DomainAffinityRouter",
    "register_router",
    "make_router",
    "router_names",
    "router_exists",
    "resolve_router_name",
    "router_accepts",
    "router_engines",
    "known_routing_engines",
]
