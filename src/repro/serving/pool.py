"""The serving pool: selected workers, their qualifications and their load.

A :class:`ServingPool` is the mutable state the routing policies operate
on: for every selected worker it tracks per-domain
:class:`~repro.serving.qualification.DomainQualification`, the number of
in-flight assignments (bounded by a per-worker concurrency cap) and
lifetime assignment counters.  It is deliberately free of routing logic —
policies read eligibility and load here and write assignments back through
:meth:`begin_assignment` / :meth:`complete_assignment`, so every policy
enforces the same caps by construction.

Pool membership and qualification state are *mutable*: the marketplace
orchestrator adds workers as they arrive (prestudy-qualified), removes
them when they churn out, and re-qualifies returners; drift detection
demotes workers mid-run.  Because routing policies keep derived state
(the ``least_loaded`` heap, the ``domain_affinity`` qualification
indexes), every such mutation flows through an explicit change-event bus:
listeners registered via :meth:`add_listener` receive

``on_worker_added(worker_id)`` / ``on_worker_removed(worker_id)``
    membership changes (:meth:`add_worker` / :meth:`remove_worker`);
``on_qualification_changed(worker_id, domain)``
    a worker's tier or estimate on one domain changed (:meth:`demote`,
    :meth:`set_qualification`, or an external mutation announced via
    :meth:`notify_qualification_changed`);
``on_load_changed(worker_id)``
    an in-flight slot was charged or released (:meth:`begin_assignment`,
    :meth:`complete_assignment`, :meth:`release_assignment`).

so a router can never silently route off stale internal state.  Hooks a
listener does not define are skipped; hooks decorated with
:func:`pool_event_noop` are skipped too, *without even a call* — dispatch
is pre-bound per hook when the listener subscribes, which keeps the
high-frequency load events free for routers that don't care about load.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional

from repro.serving.qualification import (
    DomainQualification,
    QualificationPolicy,
    QualificationTier,
    qualification_for,
)
from repro.workers.profile import WorkerProfile

#: Every hook the pool change-event bus dispatches, in event order.
POOL_EVENT_HOOKS = (
    "on_worker_added",
    "on_worker_removed",
    "on_qualification_changed",
    "on_load_changed",
)


def pool_event_noop(method):
    """Mark a listener hook as a deliberate no-op.

    The pool's dispatch skips hooks carrying this marker entirely (they
    are left out of the pre-bound callback lists), so a router that
    defines the full listener protocol but ignores, say, load events pays
    nothing for them.  Used on the default hooks of ``BaseRouter``.
    """
    method.__pool_event_noop__ = True
    return method


@dataclass
class ServingWorker:
    """One selected worker as the serving layer sees it."""

    worker_id: str
    qualifications: Dict[str, DomainQualification] = field(default_factory=dict)
    max_concurrent: int = 8
    active: int = 0
    assigned_total: int = 0
    completed_total: int = 0

    def __post_init__(self) -> None:
        if self.max_concurrent <= 0:
            raise ValueError("max_concurrent must be positive")

    @property
    def has_capacity(self) -> bool:
        return self.active < self.max_concurrent

    def tier_on(self, domain: str) -> QualificationTier:
        qualification = self.qualifications.get(domain)
        return qualification.tier if qualification is not None else QualificationTier.UNQUALIFIED

    def estimate_on(self, domain: str) -> float:
        qualification = self.qualifications.get(domain)
        return qualification.estimate if qualification is not None else 0.0


class ServingPool:
    """Ordered collection of :class:`ServingWorker` with load accounting.

    ``policy`` records the qualification policy the workers were qualified
    under; :meth:`demote` consults it so a pool built with
    ``allow_fallback=False`` never demotes a worker *into* the fallback
    tier it promised to never route to.
    """

    def __init__(
        self,
        workers: Iterable[ServingWorker],
        policy: Optional[QualificationPolicy] = None,
    ) -> None:
        self._policy = policy
        self._workers: Dict[str, ServingWorker] = {}
        self._listeners: List[object] = []
        self._hooks: Dict[str, List[object]] = {hook: [] for hook in POOL_EVENT_HOOKS}
        for worker in workers:
            if worker.worker_id in self._workers:
                raise ValueError(f"duplicate worker id: {worker.worker_id!r}")
            self._workers[worker.worker_id] = worker
        if not self._workers:
            raise ValueError("a serving pool must contain at least one worker")

    # ------------------------------------------------------------------ #
    # Construction from a finished selection
    # ------------------------------------------------------------------ #
    @classmethod
    def from_selection(
        cls,
        worker_ids: Iterable[str],
        target_domain: str,
        target_estimates: Mapping[str, float],
        training_questions: Mapping[str, int],
        profiles: Mapping[str, WorkerProfile],
        policy: Optional[QualificationPolicy] = None,
        max_concurrent: int = 8,
    ) -> "ServingPool":
        """Qualify the selected workers from CPE estimates and history.

        Parameters
        ----------
        worker_ids:
            The selected workers, in selection order.
        target_domain:
            The campaign's target domain.
        target_estimates:
            The selector's final per-worker accuracy estimate (CPE or
            observed); workers missing here fall back to estimate 0.
        training_questions:
            Golden learning tasks each worker answered during selection.
        profiles:
            Historical ``(h_i, n_i)`` profiles; each prior domain with a
            record becomes an additional qualification.
        """
        policy = policy or QualificationPolicy()
        workers: List[ServingWorker] = []
        for worker_id in worker_ids:
            qualifications: Dict[str, DomainQualification] = {
                target_domain: qualification_for(
                    policy,
                    worker_id,
                    target_domain,
                    estimate=float(target_estimates.get(worker_id, 0.0)),
                    questions=int(training_questions.get(worker_id, 0)),
                )
            }
            profile = profiles.get(worker_id)
            if profile is not None:
                for domain in profile.domains:
                    qualifications[domain] = qualification_for(
                        policy,
                        worker_id,
                        domain,
                        estimate=profile.accuracies[domain],
                        questions=profile.task_counts[domain],
                    )
            workers.append(
                ServingWorker(
                    worker_id=worker_id,
                    qualifications=qualifications,
                    max_concurrent=max_concurrent,
                )
            )
        return cls(workers, policy=policy)

    # ------------------------------------------------------------------ #
    # Collection protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._workers)

    def __contains__(self, worker_id: str) -> bool:
        return worker_id in self._workers

    def __getitem__(self, worker_id: str) -> ServingWorker:
        try:
            return self._workers[worker_id]
        except KeyError:
            raise KeyError(f"unknown worker id: {worker_id!r}") from None

    def get(self, worker_id: str) -> Optional[ServingWorker]:
        """The worker record, or ``None`` when not (or no longer) a member.

        The non-raising lookup the indexes use to validate entries on the
        routing hot path, where departed workers are expected.
        """
        return self._workers.get(worker_id)

    @property
    def worker_ids(self) -> List[str]:
        """All worker identifiers in pool order."""
        return list(self._workers)

    @property
    def workers(self) -> List[ServingWorker]:
        """All serving workers in pool order."""
        return list(self._workers.values())

    # ------------------------------------------------------------------ #
    # Change-event bus (membership, qualification and load mutation)
    # ------------------------------------------------------------------ #
    def add_listener(self, listener: object) -> None:
        """Subscribe to pool change events.

        ``listener`` may implement any of the :data:`POOL_EVENT_HOOKS`;
        missing or :func:`pool_event_noop`-marked hooks are skipped.  The
        routing policies subscribe themselves at construction so their
        derived state (the ``least_loaded`` heap, the ``domain_affinity``
        indexes) is invalidated the moment the pool mutates.
        """
        if listener not in self._listeners:
            self._listeners.append(listener)
            self._rebind_hooks()

    def discard_listener(self, listener: object) -> None:
        """Unsubscribe a listener (no-op when it was never subscribed)."""
        if listener in self._listeners:
            self._listeners.remove(listener)
            self._rebind_hooks()

    def _rebind_hooks(self) -> None:
        """Pre-bind the dispatch lists so ``_notify`` is one list walk.

        Binding happens at (un)subscription time, not per event: the load
        hooks fire on every single vote, and resolving ``getattr`` plus a
        no-op marker check there would put listener bookkeeping on the
        routing hot path.
        """
        for hook in POOL_EVENT_HOOKS:
            callbacks: List[object] = []
            for listener in self._listeners:
                callback = getattr(listener, hook, None)
                if callback is not None and not getattr(callback, "__pool_event_noop__", False):
                    callbacks.append(callback)
            self._hooks[hook] = callbacks

    def _notify(self, hook: str, *args: str) -> None:
        for callback in self._hooks[hook]:
            callback(*args)

    def add_worker(self, worker: ServingWorker) -> None:
        """Admit one worker into the pool (marketplace arrival)."""
        if worker.worker_id in self._workers:
            raise ValueError(f"duplicate worker id: {worker.worker_id!r}")
        self._workers[worker.worker_id] = worker
        self._notify("on_worker_added", worker.worker_id)

    def remove_worker(self, worker_id: str) -> ServingWorker:
        """Remove one worker (marketplace departure); returns its record.

        In-flight assignments are *not* released here — the caller
        invalidates pending votes first (``release_assignment`` /
        :meth:`~repro.serving.service.AnnotationService.invalidate_worker`)
        while the worker is still a member.  Removal may empty the pool;
        routers then raise ``NoEligibleWorkersError`` until an arrival
        refills it.
        """
        if worker_id not in self._workers:
            raise KeyError(f"unknown worker id: {worker_id!r}")
        worker = self._workers.pop(worker_id)
        self._notify("on_worker_removed", worker_id)
        return worker

    # ------------------------------------------------------------------ #
    # Eligibility and load
    # ------------------------------------------------------------------ #
    def eligible(self, domain: str, min_tier: QualificationTier = QualificationTier.FALLBACK) -> List[str]:
        """Workers allowed on ``domain`` at ``min_tier`` or better, in pool order.

        Concurrency caps are *not* applied here — a policy may want to know
        the full eligible set even when everyone is momentarily busy.
        """
        return [w.worker_id for w in self._workers.values() if w.tier_on(domain) >= min_tier]

    def available(self, domain: str, min_tier: QualificationTier = QualificationTier.FALLBACK) -> List[str]:
        """Eligible workers that also have spare concurrency capacity."""
        return [
            w.worker_id
            for w in self._workers.values()
            if w.tier_on(domain) >= min_tier and w.has_capacity
        ]

    def begin_assignment(self, worker_id: str) -> None:
        """Charge one in-flight assignment to the worker (cap enforced)."""
        worker = self[worker_id]
        if not worker.has_capacity:
            raise RuntimeError(
                f"worker {worker_id!r} is at its concurrency cap ({worker.max_concurrent})"
            )
        worker.active += 1
        worker.assigned_total += 1
        self._notify("on_load_changed", worker_id)

    def complete_assignment(self, worker_id: str) -> None:
        """Release one in-flight assignment (answer received or abandoned)."""
        worker = self[worker_id]
        if worker.active <= 0:
            raise RuntimeError(f"worker {worker_id!r} has no in-flight assignment to complete")
        worker.active -= 1
        worker.completed_total += 1
        self._notify("on_load_changed", worker_id)

    def release_assignment(self, worker_id: str) -> None:
        """Undo a routing charge without counting it as completed work.

        Used when an in-flight vote is invalidated (the worker departed,
        or a ``route_excluding`` pick turned out to be surplus): the
        in-flight slot frees up and the lifetime ``assigned_total`` charge
        is rolled back, so load-based routing is not skewed by work that
        never happened.
        """
        worker = self[worker_id]
        if worker.active <= 0:
            raise RuntimeError(f"worker {worker_id!r} has no in-flight assignment to release")
        worker.active -= 1
        worker.assigned_total -= 1
        self._notify("on_load_changed", worker_id)

    def demote(self, worker_id: str, domain: str) -> QualificationTier:
        """Drop the worker one tier on ``domain``; returns the new tier.

        Under a policy with ``allow_fallback=False`` the fallback tier is
        skipped: a qualified worker demotes straight to unqualified.
        """
        worker = self[worker_id]
        qualification = worker.qualifications.get(domain)
        if qualification is None:
            return QualificationTier.UNQUALIFIED
        demoted = qualification.demoted()
        if (
            demoted.tier is QualificationTier.FALLBACK
            and self._policy is not None
            and not self._policy.allow_fallback
        ):
            demoted = demoted.demoted()
        worker.qualifications[domain] = demoted
        if demoted.tier is not qualification.tier:
            self._notify("on_qualification_changed", worker_id, domain)
        return worker.qualifications[domain].tier

    def set_qualification(
        self, worker_id: str, domain: str, qualification: DomainQualification
    ) -> None:
        """Replace the worker's qualification on ``domain`` and notify.

        The sanctioned write path for re-qualification (marketplace
        returners): routing indexes hear about the change immediately
        instead of discovering a stale ranking mid-route.
        """
        worker = self[worker_id]
        previous = worker.qualifications.get(domain)
        worker.qualifications[domain] = qualification
        if (
            previous is None
            or previous.tier is not qualification.tier
            or previous.estimate != qualification.estimate
        ):
            self._notify("on_qualification_changed", worker_id, domain)

    def notify_qualification_changed(self, worker_id: str, domain: str) -> None:
        """Announce an external qualification mutation on a member worker.

        Marketplace pools share ``ServingWorker`` objects across
        campaigns, so a re-qualification applied through one pool must be
        announced to every *other* pool holding the same record.  Unknown
        workers are ignored — the mutation cannot affect a pool the worker
        is not a member of.
        """
        if worker_id in self._workers:
            self._notify("on_qualification_changed", worker_id, domain)

    # ------------------------------------------------------------------ #
    def load_snapshot(self) -> Dict[str, Dict[str, int]]:
        """Per-worker load counters (for reports and tests)."""
        return {
            w.worker_id: {
                "active": w.active,
                "assigned_total": w.assigned_total,
                "completed_total": w.completed_total,
            }
            for w in self._workers.values()
        }


__all__ = ["ServingWorker", "ServingPool", "POOL_EVENT_HOOKS", "pool_event_noop"]
