"""The serving pool: selected workers, their qualifications and their load.

A :class:`ServingPool` is the mutable state the routing policies operate
on: for every selected worker it tracks per-domain
:class:`~repro.serving.qualification.DomainQualification`, the number of
in-flight assignments (bounded by a per-worker concurrency cap) and
lifetime assignment counters.  It is deliberately free of routing logic —
policies read eligibility and load here and write assignments back through
:meth:`begin_assignment` / :meth:`complete_assignment`, so every policy
enforces the same caps by construction.

Pool membership is *mutable*: the marketplace orchestrator adds workers as
they arrive (prestudy-qualified) and removes them when they churn out.
Because some policies keep derived state (the ``least_loaded`` heap),
mutation goes through an explicit invalidation protocol: listeners
registered via :meth:`add_listener` are notified on every
:meth:`add_worker` / :meth:`remove_worker`, so a router can never silently
route to a departed worker off stale internal state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional

from repro.serving.qualification import (
    DomainQualification,
    QualificationPolicy,
    QualificationTier,
    qualification_for,
)
from repro.workers.profile import WorkerProfile


@dataclass
class ServingWorker:
    """One selected worker as the serving layer sees it."""

    worker_id: str
    qualifications: Dict[str, DomainQualification] = field(default_factory=dict)
    max_concurrent: int = 8
    active: int = 0
    assigned_total: int = 0
    completed_total: int = 0

    def __post_init__(self) -> None:
        if self.max_concurrent <= 0:
            raise ValueError("max_concurrent must be positive")

    @property
    def has_capacity(self) -> bool:
        return self.active < self.max_concurrent

    def tier_on(self, domain: str) -> QualificationTier:
        qualification = self.qualifications.get(domain)
        return qualification.tier if qualification is not None else QualificationTier.UNQUALIFIED

    def estimate_on(self, domain: str) -> float:
        qualification = self.qualifications.get(domain)
        return qualification.estimate if qualification is not None else 0.0


class ServingPool:
    """Ordered collection of :class:`ServingWorker` with load accounting.

    ``policy`` records the qualification policy the workers were qualified
    under; :meth:`demote` consults it so a pool built with
    ``allow_fallback=False`` never demotes a worker *into* the fallback
    tier it promised to never route to.
    """

    def __init__(
        self,
        workers: Iterable[ServingWorker],
        policy: Optional[QualificationPolicy] = None,
    ) -> None:
        self._policy = policy
        self._workers: Dict[str, ServingWorker] = {}
        self._listeners: List[object] = []
        for worker in workers:
            if worker.worker_id in self._workers:
                raise ValueError(f"duplicate worker id: {worker.worker_id!r}")
            self._workers[worker.worker_id] = worker
        if not self._workers:
            raise ValueError("a serving pool must contain at least one worker")

    # ------------------------------------------------------------------ #
    # Construction from a finished selection
    # ------------------------------------------------------------------ #
    @classmethod
    def from_selection(
        cls,
        worker_ids: Iterable[str],
        target_domain: str,
        target_estimates: Mapping[str, float],
        training_questions: Mapping[str, int],
        profiles: Mapping[str, WorkerProfile],
        policy: Optional[QualificationPolicy] = None,
        max_concurrent: int = 8,
    ) -> "ServingPool":
        """Qualify the selected workers from CPE estimates and history.

        Parameters
        ----------
        worker_ids:
            The selected workers, in selection order.
        target_domain:
            The campaign's target domain.
        target_estimates:
            The selector's final per-worker accuracy estimate (CPE or
            observed); workers missing here fall back to estimate 0.
        training_questions:
            Golden learning tasks each worker answered during selection.
        profiles:
            Historical ``(h_i, n_i)`` profiles; each prior domain with a
            record becomes an additional qualification.
        """
        policy = policy or QualificationPolicy()
        workers: List[ServingWorker] = []
        for worker_id in worker_ids:
            qualifications: Dict[str, DomainQualification] = {
                target_domain: qualification_for(
                    policy,
                    worker_id,
                    target_domain,
                    estimate=float(target_estimates.get(worker_id, 0.0)),
                    questions=int(training_questions.get(worker_id, 0)),
                )
            }
            profile = profiles.get(worker_id)
            if profile is not None:
                for domain in profile.domains:
                    qualifications[domain] = qualification_for(
                        policy,
                        worker_id,
                        domain,
                        estimate=profile.accuracies[domain],
                        questions=profile.task_counts[domain],
                    )
            workers.append(
                ServingWorker(
                    worker_id=worker_id,
                    qualifications=qualifications,
                    max_concurrent=max_concurrent,
                )
            )
        return cls(workers, policy=policy)

    # ------------------------------------------------------------------ #
    # Collection protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._workers)

    def __contains__(self, worker_id: str) -> bool:
        return worker_id in self._workers

    def __getitem__(self, worker_id: str) -> ServingWorker:
        try:
            return self._workers[worker_id]
        except KeyError:
            raise KeyError(f"unknown worker id: {worker_id!r}") from None

    @property
    def worker_ids(self) -> List[str]:
        """All worker identifiers in pool order."""
        return list(self._workers)

    @property
    def workers(self) -> List[ServingWorker]:
        """All serving workers in pool order."""
        return list(self._workers.values())

    # ------------------------------------------------------------------ #
    # Membership mutation (open-world marketplaces)
    # ------------------------------------------------------------------ #
    def add_listener(self, listener: object) -> None:
        """Subscribe to membership changes.

        ``listener`` may implement ``on_worker_added(worker_id)`` and/or
        ``on_worker_removed(worker_id)``; missing hooks are skipped.  The
        routing policies subscribe themselves at construction so their
        derived state (e.g. the ``least_loaded`` heap) is invalidated the
        moment membership changes.
        """
        if listener not in self._listeners:
            self._listeners.append(listener)

    def discard_listener(self, listener: object) -> None:
        """Unsubscribe a listener (no-op when it was never subscribed)."""
        if listener in self._listeners:
            self._listeners.remove(listener)

    def _notify(self, hook: str, worker_id: str) -> None:
        for listener in self._listeners:
            callback = getattr(listener, hook, None)
            if callback is not None:
                callback(worker_id)

    def add_worker(self, worker: ServingWorker) -> None:
        """Admit one worker into the pool (marketplace arrival)."""
        if worker.worker_id in self._workers:
            raise ValueError(f"duplicate worker id: {worker.worker_id!r}")
        self._workers[worker.worker_id] = worker
        self._notify("on_worker_added", worker.worker_id)

    def remove_worker(self, worker_id: str) -> ServingWorker:
        """Remove one worker (marketplace departure); returns its record.

        In-flight assignments are *not* released here — the caller
        invalidates pending votes first (``release_assignment`` /
        :meth:`~repro.serving.service.AnnotationService.invalidate_worker`)
        while the worker is still a member.  Removal may empty the pool;
        routers then raise ``NoEligibleWorkersError`` until an arrival
        refills it.
        """
        if worker_id not in self._workers:
            raise KeyError(f"unknown worker id: {worker_id!r}")
        worker = self._workers.pop(worker_id)
        self._notify("on_worker_removed", worker_id)
        return worker

    # ------------------------------------------------------------------ #
    # Eligibility and load
    # ------------------------------------------------------------------ #
    def eligible(self, domain: str, min_tier: QualificationTier = QualificationTier.FALLBACK) -> List[str]:
        """Workers allowed on ``domain`` at ``min_tier`` or better, in pool order.

        Concurrency caps are *not* applied here — a policy may want to know
        the full eligible set even when everyone is momentarily busy.
        """
        return [w.worker_id for w in self._workers.values() if w.tier_on(domain) >= min_tier]

    def available(self, domain: str, min_tier: QualificationTier = QualificationTier.FALLBACK) -> List[str]:
        """Eligible workers that also have spare concurrency capacity."""
        return [
            w.worker_id
            for w in self._workers.values()
            if w.tier_on(domain) >= min_tier and w.has_capacity
        ]

    def begin_assignment(self, worker_id: str) -> None:
        """Charge one in-flight assignment to the worker (cap enforced)."""
        worker = self[worker_id]
        if not worker.has_capacity:
            raise RuntimeError(
                f"worker {worker_id!r} is at its concurrency cap ({worker.max_concurrent})"
            )
        worker.active += 1
        worker.assigned_total += 1

    def complete_assignment(self, worker_id: str) -> None:
        """Release one in-flight assignment (answer received or abandoned)."""
        worker = self[worker_id]
        if worker.active <= 0:
            raise RuntimeError(f"worker {worker_id!r} has no in-flight assignment to complete")
        worker.active -= 1
        worker.completed_total += 1

    def release_assignment(self, worker_id: str) -> None:
        """Undo a routing charge without counting it as completed work.

        Used when an in-flight vote is invalidated (the worker departed,
        or a ``route_excluding`` pick turned out to be surplus): the
        in-flight slot frees up and the lifetime ``assigned_total`` charge
        is rolled back, so load-based routing is not skewed by work that
        never happened.
        """
        worker = self[worker_id]
        if worker.active <= 0:
            raise RuntimeError(f"worker {worker_id!r} has no in-flight assignment to release")
        worker.active -= 1
        worker.assigned_total -= 1

    def demote(self, worker_id: str, domain: str) -> QualificationTier:
        """Drop the worker one tier on ``domain``; returns the new tier.

        Under a policy with ``allow_fallback=False`` the fallback tier is
        skipped: a qualified worker demotes straight to unqualified.
        """
        worker = self[worker_id]
        qualification = worker.qualifications.get(domain)
        if qualification is None:
            return QualificationTier.UNQUALIFIED
        demoted = qualification.demoted()
        if (
            demoted.tier is QualificationTier.FALLBACK
            and self._policy is not None
            and not self._policy.allow_fallback
        ):
            demoted = demoted.demoted()
        worker.qualifications[domain] = demoted
        return worker.qualifications[domain].tier

    # ------------------------------------------------------------------ #
    def load_snapshot(self) -> Dict[str, Dict[str, int]]:
        """Per-worker load counters (for reports and tests)."""
        return {
            w.worker_id: {
                "active": w.active,
                "assigned_total": w.assigned_total,
                "completed_total": w.completed_total,
            }
            for w in self._workers.values()
        }


__all__ = ["ServingWorker", "ServingPool"]
