"""The annotation service: stream working tasks through the selected pool.

:class:`AnnotationService` is the serving-phase counterpart of
:class:`~repro.platform.session.AnnotationEnvironment`: where the
environment drives the *learning* tasks of the selection phase, the
service drives the *working* tasks afterwards.  Per task it

1. checks the serving budget (one unit per vote, enforced before any
   routing policy is consulted — reusing the platform's
   :class:`~repro.platform.session.BudgetExceededError`);
2. asks the routing policy for ``votes_per_task`` distinct workers (the
   policy charges their in-flight load, bounded by the concurrency cap);
3. records the workers' answers into the online aggregator;
4. once a task's votes are complete, scores each worker's *agreement*
   with the aggregated label and feeds the drift tracker; a drift event
   demotes the worker's qualification one tier and, past the configured
   pool fraction, raises the re-selection signal.

Everything is deterministic under ``(seed, policy)``: the routing trace
and the aggregated labels of two runs with the same configuration are
byte-identical (see :meth:`ServingReport.trace_dict`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.listener import PoolMetricsListener
from repro.obs.timing import perf_counter
from repro.platform.session import BudgetExceededError
from repro.platform.tasks import Task, TaskBank
from repro.serving.aggregation import IncrementalDawidSkene, OnlineMajorityVote
from repro.serving.pool import ServingPool
from repro.serving.quality import DriftConfig, DriftEvent, QualityTracker
from repro.serving.routing import (
    NoEligibleWorkersError,
    known_routing_engines,
    make_router,
    resolve_router_name,
    router_engines,
)

#: ``(worker_id, task) -> answer`` — how a routed worker answers a task.
AnswerOracle = Callable[[str, Task], bool]

#: Schema version stamped into every serialised serving trace, mirroring
#: ``RECORD_SCHEMA_VERSION`` in :mod:`repro.experiments.store`: bump it on
#: any payload-shape change so journaled traces stay forward-compatible.
SERVING_SCHEMA_VERSION = 1

_AGGREGATORS = ("dawid_skene", "majority")


@dataclass(frozen=True)
class ServingConfig:
    """Configuration of one serving run.

    Attributes
    ----------
    router:
        Registered routing-policy name (``repro.serving.router_names()``).
    routing_engine:
        Ranking engine for routers that declare one: ``domain_affinity``
        understands ``"indexed"`` / ``"reference"``, ``least_loaded``
        understands ``"heap"`` / ``"bucket"``.  Paired engines produce
        byte-identical traces; the knob exists so the equivalence can be
        checked and the old complexity reproduced.  The value is forwarded
        only to the router whose ``ENGINES`` declares it — any other
        router keeps its own default engine.
    votes_per_task:
        Distinct workers asked per working task.
    max_concurrent:
        Per-worker in-flight assignment cap, applied when the pool is
        built from this config (:meth:`repro.campaign.Campaign.serving_service`
        / :meth:`ServingPool.from_selection`).  A caller-built pool keeps
        the caps already set on its :class:`~repro.serving.pool.ServingWorker`
        entries; the routing policies enforce whichever cap the pool
        carries.
    max_assignments:
        Serving budget in vote units; ``None`` means unlimited.
    aggregator:
        ``"dawid_skene"`` (incremental, confusion-aware) or ``"majority"``.
    converge_final:
        For the Dawid-Skene aggregator: report labels from the exact EM
        replay instead of the streamed posterior.
    drift:
        EWMA drift-detection tuning.
    reselect_fraction:
        Fraction of the pool that must drift on one domain before the
        re-selection signal is raised for it.
    seed:
        Root seed of the serving run (consumed by the answer simulation).
    """

    router: str = "domain_affinity"
    routing_engine: str = "indexed"
    votes_per_task: int = 3
    max_concurrent: int = 8
    max_assignments: Optional[int] = None
    aggregator: str = "dawid_skene"
    converge_final: bool = True
    drift: DriftConfig = field(default_factory=DriftConfig)
    reselect_fraction: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.votes_per_task <= 0:
            raise ValueError("votes_per_task must be positive")
        if self.max_concurrent <= 0:
            raise ValueError("max_concurrent must be positive")
        if self.max_assignments is not None and self.max_assignments <= 0:
            raise ValueError("max_assignments must be positive when given")
        if self.aggregator not in _AGGREGATORS:
            raise ValueError(f"unknown aggregator {self.aggregator!r}; choose from: {', '.join(_AGGREGATORS)}")
        if not 0.0 < self.reselect_fraction <= 1.0:
            raise ValueError("reselect_fraction must lie in (0, 1]")
        if self.routing_engine not in known_routing_engines():
            raise ValueError(
                f"unknown routing engine {self.routing_engine!r}; "
                f"choose from: {', '.join(known_routing_engines())}"
            )
        # Resolving eagerly rejects unknown router names at config time.
        resolve_router_name(self.router)


@dataclass(frozen=True)
class TaskAssignment:
    """One routed working task: which workers were asked."""

    task_id: str
    domain: str
    worker_ids: Tuple[str, ...]

    # repro: allow[C004] -- nested sub-record; schema_version is stamped by the enclosing report
    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        return {"task_id": self.task_id, "domain": self.domain, "worker_ids": list(self.worker_ids)}


@dataclass(frozen=True)
class ServingReport:
    """Outcome of one serving run (JSON-serialisable via ``to_dict``)."""

    router: str
    aggregator: str
    n_tasks_routed: int
    n_answers: int
    assignments: List[TaskAssignment]
    labels: Dict[str, bool]
    drift_events: List[DriftEvent]
    demotions: List[Dict[str, str]]
    reselection_recommended: bool
    spent_assignments: int
    max_assignments: Optional[int]
    budget_exhausted: bool
    capacity_exhausted: bool
    label_accuracy: Optional[float]
    worker_load: Dict[str, Dict[str, int]]
    elapsed_s: float
    reselection_domains: List[str] = field(default_factory=list)
    invalidations: List[Dict[str, object]] = field(default_factory=list)

    @property
    def tasks_per_second(self) -> float:
        """Routed-task throughput of the run (0 when nothing was timed)."""
        return self.n_tasks_routed / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def trace_dict(self) -> Dict[str, object]:
        """The deterministic subset: identical across runs of one (seed, policy)."""
        return {
            "schema_version": SERVING_SCHEMA_VERSION,
            "router": self.router,
            "aggregator": self.aggregator,
            "n_tasks_routed": self.n_tasks_routed,
            "n_answers": self.n_answers,
            "assignments": [assignment.to_dict() for assignment in self.assignments],
            "labels": dict(self.labels),
            "drift_events": [event.to_dict() for event in self.drift_events],
            "demotions": list(self.demotions),
            "invalidations": list(self.invalidations),
            "reselection_recommended": self.reselection_recommended,
            "reselection_domains": list(self.reselection_domains),
            "spent_assignments": self.spent_assignments,
            "max_assignments": self.max_assignments,
            "budget_exhausted": self.budget_exhausted,
            "capacity_exhausted": self.capacity_exhausted,
            "label_accuracy": self.label_accuracy,
            "worker_load": dict(self.worker_load),
        }

    def to_dict(self) -> Dict[str, object]:
        """Full JSON payload (adds the run's wall-clock timing)."""
        payload = self.trace_dict()
        payload["elapsed_s"] = self.elapsed_s
        payload["tasks_per_second"] = self.tasks_per_second
        return payload


@dataclass
class _PendingTask:
    """A routed task waiting for its votes to complete."""

    task: Task
    expected: Tuple[str, ...]
    answers: Dict[str, bool] = field(default_factory=dict)


class _ServiceMetrics:
    """Pre-bound serving metrics (one object per instrumented service).

    Children are resolved once at construction; the serving loop pays a
    single ``is None`` check when telemetry is off and plain attribute
    ``inc`` calls when on.
    """

    __slots__ = (
        "tasks_submitted",
        "votes_requested",
        "votes_assigned",
        "answers_recorded",
        "agreed",
        "disagreed",
        "tasks_finalized",
        "votes_invalidated",
        "votes_reassigned",
        "drift_demotions",
        "elapsed",
    )

    def __init__(self, registry) -> None:
        self.tasks_submitted = registry.counter(
            "serving.tasks.submitted", "tasks accepted by AnnotationService.submit()"
        )
        self.votes_requested = registry.counter(
            "serving.votes.requested",
            "votes requested across submitted tasks (before budget clamping)",
        )
        self.votes_assigned = registry.counter(
            "serving.votes.assigned", "vote assignments actually routed to workers"
        )
        self.answers_recorded = registry.counter(
            "serving.answers.recorded", "worker answers ingested by record_answer()"
        )
        agreement = registry.counter(
            "serving.answers.agreement",
            "per-answer agreement with the finalized task label",
            ("agreed",),
        )
        self.agreed = agreement.labels("true")
        self.disagreed = agreement.labels("false")
        self.tasks_finalized = registry.counter(
            "serving.tasks.finalized", "tasks finalized with a label"
        )
        self.votes_invalidated = registry.counter(
            "serving.votes.invalidated",
            "in-flight votes invalidated by worker departure/demotion",
        )
        self.votes_reassigned = registry.counter(
            "serving.votes.reassigned",
            "invalidated votes successfully re-routed to replacement workers",
        )
        self.drift_demotions = registry.counter(
            "serving.drift.demotions",
            "drift-triggered qualification demotions applied by the service",
            ("domain",),
        )
        self.elapsed = registry.gauge(
            "serving.serve.elapsed_seconds",
            "wall-clock duration of the last serve() run",
            volatile=True,
        )


class AnnotationService:
    """Drive the annotation phase over a :class:`ServingPool`.

    Parameters
    ----------
    pool:
        The serving pool built from a finished selection.
    config:
        Serving configuration (routing policy, votes, budget, drift).
    answer_oracle:
        How routed workers answer (required for :meth:`process` /
        :meth:`serve`; the submit/record API works without it).
    track_gold:
        Capture each submitted task's ``gold_label`` so the report can
        score label accuracy (a simulation convenience — disable for
        streams whose gold labels are genuinely unknown).
    telemetry:
        Optional :class:`repro.obs.config.Telemetry` bundle.  Deliberately
        *not* part of :class:`ServingConfig` — the config is fingerprinted
        into traces, and telemetry must never change a run's outputs.
        ``None`` (or a disabled bundle) leaves every hot path with a
        single ``is None`` check.
    """

    def __init__(
        self,
        pool: ServingPool,
        config: Optional[ServingConfig] = None,
        answer_oracle: Optional[AnswerOracle] = None,
        track_gold: bool = True,
        telemetry=None,
        defer_invalidation_finalize: bool = False,
    ) -> None:
        self._pool = pool
        self._config = config or ServingConfig()
        self._answer_oracle = answer_oracle
        # With deferral on (the marketplace engines), a task whose
        # remaining votes are all in after an invalidation stays pending
        # until finalize_ready() drains it at the next campaign step —
        # pinning drift demotions to one point in the tick order that the
        # serial and sharded engines can both reproduce.
        self._defer_invalidation_finalize = bool(defer_invalidation_finalize)
        self._track_gold = track_gold
        self._gold_labels: Dict[str, bool] = {}
        router_config: Dict[str, object] = {}
        # The engine knob is forwarded only to the router that declares
        # the configured value in its ENGINES — so one ServingConfig can
        # carry "indexed" while routing through least_loaded (which then
        # simply keeps its own default engine).
        if self._config.routing_engine in router_engines(self._config.router):
            router_config["engine"] = self._config.routing_engine
        self._router = make_router(self._config.router, pool, **router_config)
        self._aggregator: Union[IncrementalDawidSkene, OnlineMajorityVote]
        if self._config.aggregator == "majority":
            self._aggregator = OnlineMajorityVote()
        else:
            self._aggregator = IncrementalDawidSkene()
        self._tracker = QualityTracker(self._config.drift)
        self._assignments: List[TaskAssignment] = []
        self._pending: Dict[str, _PendingTask] = {}
        self._demotions: List[Dict[str, str]] = []
        self._invalidations: List[Dict[str, object]] = []
        self._spent_assignments = 0
        self._budget_exhausted = False
        self._capacity_exhausted = False
        self._elapsed_s = 0.0
        self._telemetry = telemetry if telemetry is not None and telemetry.enabled else None
        self._metrics: Optional[_ServiceMetrics] = None
        if self._telemetry is not None:
            registry = self._telemetry.registry
            self._metrics = _ServiceMetrics(registry)
            # Third-party routers may not subclass BaseRouter; route
            # metrics are then simply not collected for them.
            bind = getattr(self._router, "bind_telemetry", None)
            if bind is not None:
                bind(self._telemetry)
            self._tracker.bind_metrics(registry)
            self._aggregator.bind_metrics(registry)
            PoolMetricsListener(
                registry, load_events=self._telemetry.config.pool_load_events
            ).attach(pool)
        # The service listens on the pool bus itself (besides its router):
        # a departure drops the worker's drift streams, bounding tracker
        # memory on churny open-world pools.
        pool.add_listener(self)

    def on_worker_removed(self, worker_id: str) -> None:
        """Pool-bus hook: forget a departed worker's drift streams."""
        self._tracker.forget_worker(worker_id)

    # ------------------------------------------------------------------ #
    @property
    def pool(self) -> ServingPool:
        return self._pool

    @property
    def config(self) -> ServingConfig:
        return self._config

    @property
    def tracker(self) -> QualityTracker:
        return self._tracker

    @property
    def spent_assignments(self) -> int:
        return self._spent_assignments

    @property
    def remaining_assignments(self) -> Optional[int]:
        """Votes left under the serving budget (``None`` = unlimited)."""
        if self._config.max_assignments is None:
            return None
        return self._config.max_assignments - self._spent_assignments

    @property
    def reselection_domains(self) -> List[str]:
        """Domains whose drifted-worker count crossed the re-selection threshold (sorted)."""
        drifted_by_domain: Dict[str, set] = {}
        for event in self._tracker.events:
            drifted_by_domain.setdefault(event.domain, set()).add(event.worker_id)
        threshold = self._config.reselect_fraction * len(self._pool)
        return sorted(
            domain for domain, workers in drifted_by_domain.items() if len(workers) >= threshold
        )

    @property
    def reselection_recommended(self) -> bool:
        """Whether enough of the pool drifted on one domain to warrant a fresh campaign."""
        return bool(self.reselection_domains)

    @property
    def demotions(self) -> List[Dict[str, str]]:
        """Qualification demotions so far (drift events that cost a tier)."""
        return list(self._demotions)

    @property
    def invalidations(self) -> List[Dict[str, object]]:
        """In-flight vote invalidations so far (see :meth:`invalidate_worker`)."""
        return list(self._invalidations)

    @property
    def pending_task_ids(self) -> List[str]:
        """Ids of routed tasks still waiting for votes, in routing order."""
        return list(self._pending)

    def is_awaiting(self, task_id: str, worker_id: str) -> bool:
        """Whether ``worker_id`` still owes an answer on ``task_id``."""
        pending = self._pending.get(task_id)
        return (
            pending is not None
            and worker_id in pending.expected
            and worker_id not in pending.answers
        )

    # ------------------------------------------------------------------ #
    # Low-level serving API
    # ------------------------------------------------------------------ #
    def submit(self, task: Task) -> TaskAssignment:
        """Route one working task; charges budget and in-flight load.

        Raises
        ------
        BudgetExceededError
            When not a single vote is left under the serving budget.
        NoEligibleWorkersError
            When no eligible worker has spare capacity.
        """
        if task.task_id in self._pending:
            raise ValueError(f"task {task.task_id!r} is already in flight")
        votes = self._config.votes_per_task
        remaining = self.remaining_assignments
        if remaining is not None:
            if remaining <= 0:
                raise BudgetExceededError(
                    f"serving budget of {self._config.max_assignments} assignments is exhausted"
                )
            votes = min(votes, remaining)
        worker_ids = self._router.route(task.domain, votes)
        self._spent_assignments += len(worker_ids)
        metrics = self._metrics
        if metrics is not None:
            metrics.tasks_submitted.inc()
            metrics.votes_requested.inc(self._config.votes_per_task)
            metrics.votes_assigned.inc(len(worker_ids))
        if self._track_gold:
            self._gold_labels[task.task_id] = task.gold_label
        assignment = TaskAssignment(task_id=task.task_id, domain=task.domain, worker_ids=tuple(worker_ids))
        self._assignments.append(assignment)
        self._pending[task.task_id] = _PendingTask(task=task, expected=assignment.worker_ids)
        return assignment

    def record_answer(self, task_id: str, worker_id: str, answer: bool) -> None:
        """Record one worker's answer to a routed task."""
        pending = self._pending.get(task_id)
        if pending is None:
            raise KeyError(f"task {task_id!r} has no pending assignment")
        if worker_id not in pending.expected:
            raise KeyError(f"worker {worker_id!r} was not assigned task {task_id!r}")
        if worker_id in pending.answers:
            raise ValueError(f"worker {worker_id!r} already answered task {task_id!r}")
        pending.answers[worker_id] = bool(answer)
        self._aggregator.add(task_id, worker_id, bool(answer))
        self._pool.complete_assignment(worker_id)
        if self._metrics is not None:
            self._metrics.answers_recorded.inc()
        if len(pending.answers) == len(pending.expected):
            self._finalize(task_id, pending)

    def _finalize(self, task_id: str, pending: _PendingTask) -> None:
        """Score agreement and run drift detection once all votes are in."""
        del self._pending[task_id]
        label = self._aggregator.label(task_id)
        domain = pending.task.domain
        metrics = self._metrics
        for worker_id in pending.expected:
            agreed = pending.answers[worker_id] == label
            if metrics is not None:
                (metrics.agreed if agreed else metrics.disagreed).inc()
            event = self._tracker.observe(worker_id, domain, agreed)
            if event is not None:
                new_tier = self._pool.demote(worker_id, domain)
                self._demotions.append(
                    {"worker_id": worker_id, "domain": domain, "new_tier": new_tier.name.lower()}
                )
                if metrics is not None:
                    metrics.drift_demotions.labels(domain).inc()
        if metrics is not None:
            metrics.tasks_finalized.inc()

    def invalidate_worker(self, worker_id: str, reassign: bool = True) -> List[Dict[str, object]]:
        """Invalidate every unanswered in-flight vote held by ``worker_id``.

        Called when a worker departs the marketplace mid-assignment: each
        vote the worker still owes is released (the routing charge and the
        budget spend are rolled back — the work never happened) and, when
        ``reassign`` is set and budget remains, re-routed to one worker not
        already on the task.  Answers the worker already gave stay counted.
        A task whose expected-vote set empties is abandoned entirely; one
        whose remaining votes are all in is finalised immediately.

        Returns the invalidation records (also accumulated on
        :attr:`invalidations` and in the serving report), each carrying
        ``task_id``, ``domain``, ``worker_id``, ``replacements`` and
        ``abandoned``.
        """
        invalidated: List[Dict[str, object]] = []
        for task_id in list(self._pending):
            pending = self._pending[task_id]
            if worker_id not in pending.expected or worker_id in pending.answers:
                continue
            self._pool.release_assignment(worker_id)
            self._spent_assignments -= 1
            exclude = set(pending.expected) | {worker_id}
            pending.expected = tuple(w for w in pending.expected if w != worker_id)
            replacements: List[str] = []
            if reassign and (self.remaining_assignments is None or self.remaining_assignments > 0):
                replacements = self._router.route_excluding(pending.task.domain, 1, exclude)
                self._spent_assignments += len(replacements)
                pending.expected = pending.expected + tuple(replacements)
            if self._metrics is not None:
                self._metrics.votes_invalidated.inc()
                self._metrics.votes_reassigned.inc(len(replacements))
            record: Dict[str, object] = {
                "task_id": task_id,
                "domain": pending.task.domain,
                "worker_id": worker_id,
                "replacements": list(replacements),
                "abandoned": not pending.expected,
            }
            invalidated.append(record)
            self._invalidations.append(record)
            if not pending.expected:
                del self._pending[task_id]
            elif len(pending.answers) == len(pending.expected) and not self._defer_invalidation_finalize:
                self._finalize(task_id, pending)
        return invalidated

    def finalize_ready(self) -> List[str]:
        """Finalise deferred-ready tasks (all remaining votes already in).

        Only invalidations can leave a complete task pending (and only
        under ``defer_invalidation_finalize``) — :meth:`record_answer`
        finalises inline.  Returns the finalised task ids in routing
        order.  The marketplace lifecycle drains this at the *start* of
        every serving step, before answer delivery.
        """
        finalized: List[str] = []
        for task_id in list(self._pending):
            pending = self._pending[task_id]
            if pending.expected and len(pending.answers) == len(pending.expected):
                self._finalize(task_id, pending)
                finalized.append(task_id)
        return finalized

    def adopt_assignment(self, task: Task, worker_ids: Sequence[str]) -> TaskAssignment:
        """Register an externally routed assignment (no routing, no budget).

        The sharded marketplace engine routes at the parent's commit phase
        and ships the chosen workers to the shard, which adopts them here:
        the in-flight charges, the pending record and the spend accounting
        land exactly as :meth:`submit` would have left them.
        """
        if task.task_id in self._pending:
            raise ValueError(f"task {task.task_id!r} is already in flight")
        for worker_id in worker_ids:
            self._pool.begin_assignment(worker_id)
        self._spent_assignments += len(worker_ids)
        if self._track_gold:
            self._gold_labels[task.task_id] = task.gold_label
        assignment = TaskAssignment(task_id=task.task_id, domain=task.domain, worker_ids=tuple(worker_ids))
        self._assignments.append(assignment)
        self._pending[task.task_id] = _PendingTask(task=task, expected=assignment.worker_ids)
        return assignment

    def apply_invalidation_record(self, record: Dict[str, object]) -> None:
        """Replay one :meth:`invalidate_worker` record onto this service.

        The sharded engine's parent computes invalidations (including the
        replacement routing) against the authoritative shared pool; the
        shard replays the record here so its pending state, in-flight
        charges and spend stay in lockstep — without consulting a router.
        """
        task_id = str(record["task_id"])
        pending = self._pending[task_id]
        worker_id = str(record["worker_id"])
        self._pool.release_assignment(worker_id)
        self._spent_assignments -= 1
        replacements = [str(replacement) for replacement in record["replacements"]]
        for replacement in replacements:
            self._pool.begin_assignment(replacement)
        self._spent_assignments += len(replacements)
        pending.expected = tuple(w for w in pending.expected if w != worker_id) + tuple(replacements)
        self._invalidations.append(dict(record))
        if not pending.expected:
            del self._pending[task_id]

    def abandon_pending(self) -> List[str]:
        """Drop every in-flight task, releasing its unanswered routing charges.

        Called when a campaign leaves its serving segment (drift-triggered
        re-selection): without the release, shared marketplace workers
        would keep phantom in-flight load and starve other campaigns.
        Returns the abandoned task ids in routing order so the caller can
        re-queue them.
        """
        abandoned: List[str] = []
        for task_id in list(self._pending):
            pending = self._pending.pop(task_id)
            for worker_id in pending.expected:
                if worker_id not in pending.answers:
                    self._pool.release_assignment(worker_id)
                    self._spent_assignments -= 1
            abandoned.append(task_id)
        return abandoned

    # ------------------------------------------------------------------ #
    # Simulated serving loop
    # ------------------------------------------------------------------ #
    def process(self, task: Task) -> TaskAssignment:
        """Submit one task and collect the oracle's answers for it."""
        if self._answer_oracle is None:
            raise RuntimeError("process() requires an answer_oracle; use submit()/record_answer() instead")
        assignment = self.submit(task)
        for worker_id in assignment.worker_ids:
            self.record_answer(task.task_id, worker_id, self._answer_oracle(worker_id, task))
        return assignment

    def serve(self, tasks: Sequence[Task]) -> ServingReport:
        """Drive a stream of working tasks to completion and report.

        Stops early (without raising) when the serving budget runs out
        (``budget_exhausted``) or capacity disappears entirely
        (``capacity_exhausted``); the report records which.
        """
        start = perf_counter()
        for task in tasks:
            try:
                self.process(task)
            except BudgetExceededError:
                self._budget_exhausted = True
                break
            except NoEligibleWorkersError:
                self._capacity_exhausted = True
                break
        self._elapsed_s += perf_counter() - start
        if self._metrics is not None:
            self._metrics.elapsed.set(self._elapsed_s)
        return self.report()

    # ------------------------------------------------------------------ #
    def labels(self) -> Dict[str, bool]:
        """Current aggregated labels, in first-routed order."""
        if (
            isinstance(self._aggregator, IncrementalDawidSkene)
            and self._config.converge_final
            and self._aggregator.n_answers > 0
        ):
            return self._aggregator.converged_labels()
        return self._aggregator.labels()

    def report(self) -> ServingReport:
        """Snapshot the serving run into a :class:`ServingReport`."""
        labels = self.labels()
        label_accuracy: Optional[float] = None
        scored = [task_id for task_id in labels if task_id in self._gold_labels]
        if scored:
            hits = sum(labels[task_id] == self._gold_labels[task_id] for task_id in scored)
            label_accuracy = hits / len(scored)
        return ServingReport(
            router=self._router.name,
            aggregator=self._config.aggregator,
            n_tasks_routed=len(self._assignments),
            n_answers=self._aggregator.n_answers,
            assignments=list(self._assignments),
            labels=labels,
            drift_events=self._tracker.events,
            demotions=list(self._demotions),
            reselection_recommended=self.reselection_recommended,
            spent_assignments=self._spent_assignments,
            max_assignments=self._config.max_assignments,
            budget_exhausted=self._budget_exhausted,
            capacity_exhausted=self._capacity_exhausted,
            label_accuracy=label_accuracy,
            worker_load=self._pool.load_snapshot(),
            elapsed_s=self._elapsed_s,
            reselection_domains=self.reselection_domains,
            invalidations=list(self._invalidations),
        )


def working_task_stream(task_bank: TaskBank, n_tasks: Optional[int] = None) -> List[Task]:
    """A deterministic stream of working tasks from a task bank.

    Cycles the bank's working tasks in order when ``n_tasks`` exceeds the
    bank size; cycled replicas get distinct ids (``...#r<cycle>``) so the
    aggregators treat each occurrence as a fresh task.
    """
    if not task_bank.working_tasks:
        raise ValueError("the task bank holds no working tasks")
    if n_tasks is None:
        n_tasks = task_bank.n_working
    if n_tasks < 0:
        raise ValueError("n_tasks must be non-negative")
    stream: List[Task] = []
    n = task_bank.n_working
    for index in range(n_tasks):
        task = task_bank.working_tasks[index % n]
        cycle = index // n
        if cycle == 0:
            stream.append(task)
        else:
            stream.append(
                Task(
                    task_id=f"{task.task_id}#r{cycle}",
                    domain=task.domain,
                    kind=task.kind,
                    gold_label=task.gold_label,
                    prompt=task.prompt,
                )
            )
    return stream


__all__ = [
    "AnswerOracle",
    "SERVING_SCHEMA_VERSION",
    "ServingConfig",
    "TaskAssignment",
    "ServingReport",
    "AnnotationService",
    "working_task_stream",
]
