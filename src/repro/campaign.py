"""High-level annotation-campaign facade: one selection run as a first-class object.

The experiment harness answers *"how do the methods compare over many
repetitions?"* — a production platform instead serves *one campaign at a
time*: pick ``k`` workers for a new target domain under a task budget.
:class:`Campaign` packages that unit behind a builder-style API on top of
the dataset and selector registries:

>>> from repro import Campaign
>>> campaign = Campaign(dataset="S-1", selector="ours", k=5, seed=0)
>>> report = campaign.run()
>>> len(report.selected_worker_ids)
5

Three usage modes, all yielding bit-identical selections for one seed:

* **one-shot** — :meth:`Campaign.run` drives everything and returns a
  JSON-round-trippable :class:`CampaignReport`;
* **streaming** — :meth:`Campaign.steps` yields one :class:`CampaignEvent`
  per elimination round (survivors, CPE/LGE estimates, budget spent) so a
  caller can render progress or stop consuming between rounds;
* **checkpoint/resume** — :meth:`Campaign.state_dict` captures a paused
  campaign, :meth:`Campaign.from_state_dict` restores it.  Every source of
  randomness is derived from the campaign seed, so restoration replays the
  completed rounds deterministically and then continues; the resumed
  campaign's final selection is identical to an uninterrupted run.

A finished campaign hands off to the serving layer: :meth:`Campaign.serve`
streams the dataset's working tasks through the selected pool (routing,
online aggregation, drift detection) and returns a
:class:`~repro.serving.service.ServingReport`; :meth:`Campaign.serving_service`
returns the configured :class:`~repro.serving.service.AnnotationService`
itself for callers that drive the stream manually.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Generator, Iterator, List, Mapping, Optional

from repro.core.pipeline import RoundDiagnostics
from repro.core.registry import make_selector, resolve_selector_name
from repro.core.selector import BaseWorkerSelector, SelectionResult
from repro.datasets.registry import load_dataset
from repro.evaluation.metrics import precision_at_k
from repro.platform.answers import ANSWER_ENGINES
from repro.platform.session import AnnotationEnvironment
from repro.serving.pool import ServingPool
from repro.serving.qualification import QualificationPolicy
from repro.serving.service import (
    AnnotationService,
    AnswerOracle,
    ServingConfig,
    ServingReport,
    working_task_stream,
)
from repro.stats.rng import as_generator, derive_seed
from repro.workers.profile import WorkerProfile

_STATE_VERSION = 1


@dataclass(frozen=True)
class SelectionManifest:
    """Everything the serving/marketplace layer needs from a finished selection.

    Produced by :meth:`Campaign.selection_manifest`; consumed by
    :meth:`Campaign.serving_service` and by the marketplace orchestrator,
    which registers the selected workers into its shared registry instead
    of building a pool directly.

    Attributes
    ----------
    target_domain:
        The campaign's target domain.
    worker_ids:
        The selected workers, in selection order.
    target_estimates:
        The selector's final accuracy estimate per selected worker (falls
        back to the observed training accuracy, or 0.5 for a worker the
        selector never tested).
    training_questions:
        Golden learning tasks each selected worker answered during selection.
    final_accuracies:
        Each selected worker's fully trained latent accuracy on the target
        domain (drives the simulated answer oracles).
    profiles:
        Historical cross-domain profiles of the selected workers.
    """

    target_domain: str
    worker_ids: List[str]
    target_estimates: Dict[str, float]
    training_questions: Dict[str, int]
    final_accuracies: Dict[str, float]
    profiles: Dict[str, WorkerProfile]


@dataclass(frozen=True)
class CampaignEvent:
    """One elimination round of a running campaign, as observed by the caller.

    Attributes
    ----------
    round_index:
        1-based index of the round.
    n_rounds:
        Total rounds the campaign schedule prescribes.
    worker_ids:
        Workers that entered the round.
    survivors:
        Workers kept after the round's elimination decision.
    tasks_per_worker:
        Learning tasks each participating worker answered this round.
    observed_accuracies / cpe_estimates / lge_estimates:
        Per-worker observables and model estimates for the round (empty for
        estimate kinds the selector does not produce).
    spent_budget / remaining_budget:
        Budget state *after* the round was charged.
    """

    round_index: int
    n_rounds: int
    worker_ids: List[str]
    survivors: List[str]
    tasks_per_worker: int
    observed_accuracies: Dict[str, float] = field(default_factory=dict)
    cpe_estimates: Dict[str, float] = field(default_factory=dict)
    lge_estimates: Dict[str, float] = field(default_factory=dict)
    spent_budget: int = 0
    remaining_budget: int = 0

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable representation."""
        return {
            "round_index": self.round_index,
            "n_rounds": self.n_rounds,
            "worker_ids": list(self.worker_ids),
            "survivors": list(self.survivors),
            "tasks_per_worker": self.tasks_per_worker,
            "observed_accuracies": dict(self.observed_accuracies),
            "cpe_estimates": dict(self.cpe_estimates),
            "lge_estimates": dict(self.lge_estimates),
            "spent_budget": self.spent_budget,
            "remaining_budget": self.remaining_budget,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "CampaignEvent":
        """Inverse of :meth:`to_dict`."""
        return cls(
            round_index=int(payload["round_index"]),
            n_rounds=int(payload["n_rounds"]),
            worker_ids=list(payload["worker_ids"]),
            survivors=list(payload["survivors"]),
            tasks_per_worker=int(payload["tasks_per_worker"]),
            observed_accuracies=dict(payload.get("observed_accuracies", {})),
            cpe_estimates=dict(payload.get("cpe_estimates", {})),
            lge_estimates=dict(payload.get("lge_estimates", {})),
            spent_budget=int(payload.get("spent_budget", 0)),
            remaining_budget=int(payload.get("remaining_budget", 0)),
        )


@dataclass(frozen=True)
class CampaignReport:
    """Final outcome of a campaign, JSON-round-trippable via ``to_dict``/``from_dict``.

    ``mean_accuracy`` is the *evaluated* working-task accuracy of the
    selected workers (the paper's headline metric), ``estimated_accuracies``
    the selector's own final estimates, and ``ground_truth_accuracy`` the
    mean accuracy of the truly best ``k`` workers of this pool draw.
    """

    dataset: str
    selector: str
    k: int
    seed: int
    selected_worker_ids: List[str]
    estimated_accuracies: Dict[str, float]
    mean_accuracy: float
    per_worker_accuracy: Dict[str, float]
    precision_at_k: float
    ground_truth_accuracy: float
    spent_budget: int
    total_budget: int
    n_rounds: int
    events: List[CampaignEvent] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable representation (events included)."""
        return {
            "dataset": self.dataset,
            "selector": self.selector,
            "k": self.k,
            "seed": self.seed,
            "selected_worker_ids": list(self.selected_worker_ids),
            "estimated_accuracies": dict(self.estimated_accuracies),
            "mean_accuracy": self.mean_accuracy,
            "per_worker_accuracy": dict(self.per_worker_accuracy),
            "precision_at_k": self.precision_at_k,
            "ground_truth_accuracy": self.ground_truth_accuracy,
            "spent_budget": self.spent_budget,
            "total_budget": self.total_budget,
            "n_rounds": self.n_rounds,
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "CampaignReport":
        """Inverse of :meth:`to_dict`."""
        return cls(
            dataset=str(payload["dataset"]),
            selector=str(payload["selector"]),
            k=int(payload["k"]),
            seed=int(payload["seed"]),
            selected_worker_ids=list(payload["selected_worker_ids"]),
            estimated_accuracies=dict(payload["estimated_accuracies"]),
            mean_accuracy=float(payload["mean_accuracy"]),
            per_worker_accuracy=dict(payload["per_worker_accuracy"]),
            precision_at_k=float(payload["precision_at_k"]),
            ground_truth_accuracy=float(payload["ground_truth_accuracy"]),
            spent_budget=int(payload["spent_budget"]),
            total_budget=int(payload["total_budget"]),
            n_rounds=int(payload["n_rounds"]),
            events=[CampaignEvent.from_dict(event) for event in payload.get("events", [])],
        )


class Campaign:
    """One annotation campaign: dataset + selector + budget, run to a selection.

    Parameters
    ----------
    dataset:
        Name of a registered dataset (``repro.DATASET_NAMES``).
    selector:
        Name of a registered selector (``repro.selector_names()``).
    k:
        Number of workers to select (default: the dataset's canonical ``k``).
    seed:
        Single root seed; the pool draw, the simulated answer stream and the
        selector's randomness are all derived from it, which is what makes
        checkpoint/resume deterministic.
    tasks_per_batch:
        Override of the dataset's per-batch learning-task count ``Q``.
    answer_engine:
        Answer-simulation engine (``"vectorized"`` default,
        ``"reference"`` for the per-worker verification loop); both engines
        produce bit-identical reports for one seed.
    selector_config:
        Extra keyword configuration for the selector factory (must be
        JSON-serialisable so it can travel through :meth:`state_dict`);
        keyword arguments beyond the named parameters are merged into it.
    """

    def __init__(
        self,
        dataset: str = "S-1",
        selector: str = "ours",
        *,
        k: Optional[int] = None,
        seed: int = 0,
        tasks_per_batch: Optional[int] = None,
        answer_engine: str = "vectorized",
        selector_config: Optional[Mapping[str, object]] = None,
        **extra_selector_config: object,
    ) -> None:
        if answer_engine not in ANSWER_ENGINES:
            raise ValueError(f"answer_engine must be one of {ANSWER_ENGINES}, got {answer_engine!r}")
        self._answer_engine = answer_engine
        self._dataset_name = dataset
        # Canonicalise eagerly (raises KeyError on unknown names) so aliases
        # and case variants derive the same selector seed — and the same
        # selection — as the canonical spelling.
        self._selector_name = resolve_selector_name(selector)
        self._requested_k = k
        self._seed = int(seed)
        self._tasks_per_batch = tasks_per_batch
        self._selector_config: Dict[str, object] = dict(selector_config or {})
        self._selector_config.update(extra_selector_config)

        self._instance = load_dataset(
            dataset,
            seed=derive_seed(self._seed, "campaign", "instance"),
            k=k,
            tasks_per_batch=tasks_per_batch,
        )
        # Built eagerly so invalid selector configuration fails at
        # construction time, not on the first step.
        self._selector: BaseWorkerSelector = make_selector(
            self._selector_name,
            seed=derive_seed(self._seed, "campaign", "selector", self._selector_name),
            **self._selector_config,
        )
        self._environment: Optional[AnnotationEnvironment] = None
        self._generator: Optional[Generator[object, None, SelectionResult]] = None
        self._events: List[CampaignEvent] = []
        self._result: Optional[SelectionResult] = None
        self._report: Optional[CampaignReport] = None

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def dataset_name(self) -> str:
        return self._instance.name

    @property
    def selector_name(self) -> str:
        return self._selector_name

    @property
    def k(self) -> int:
        """The resolved selection size."""
        return self._instance.schedule.k

    @property
    def seed(self) -> int:
        return self._seed

    @property
    def instance(self):
        """The loaded dataset instance this campaign runs against."""
        return self._instance

    @property
    def n_rounds(self) -> int:
        """Elimination rounds the schedule prescribes."""
        return self._instance.schedule.n_rounds

    @property
    def rounds_completed(self) -> int:
        return len(self._events)

    @property
    def finished(self) -> bool:
        return self._result is not None

    @property
    def events(self) -> List[CampaignEvent]:
        """Events of the rounds completed so far (copies on every access)."""
        return list(self._events)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Campaign(dataset={self.dataset_name!r}, selector={self._selector_name!r}, "
            f"k={self.k}, seed={self._seed}, rounds={self.rounds_completed}/{self.n_rounds})"
        )

    # ------------------------------------------------------------------ #
    # Stepwise execution
    # ------------------------------------------------------------------ #
    def _ensure_started(self) -> Generator[object, None, SelectionResult]:
        if self._generator is None:
            self._environment = self._instance.environment(
                run_seed=derive_seed(self._seed, "campaign", "answers"),
                answer_engine=self._answer_engine,
            )
            self._generator = self._selector.stepwise(self._environment, self._requested_k)
        return self._generator

    def _event_from(self, raw: object) -> CampaignEvent:
        environment = self._environment
        assert environment is not None
        spent = environment.spent_budget
        remaining = environment.remaining_budget
        if isinstance(raw, RoundDiagnostics):
            return CampaignEvent(
                round_index=raw.round_index,
                n_rounds=self.n_rounds,
                worker_ids=list(raw.worker_ids),
                survivors=list(raw.survivors),
                tasks_per_worker=raw.tasks_per_worker,
                observed_accuracies=dict(raw.observed_accuracies),
                cpe_estimates=dict(raw.cpe_estimates),
                lge_estimates=dict(raw.lge_estimates),
                spent_budget=spent,
                remaining_budget=remaining,
            )
        # A selector may yield something other than RoundDiagnostics; expose
        # what is generically known so streaming still works.
        return CampaignEvent(
            round_index=len(self._events) + 1,
            n_rounds=self.n_rounds,
            worker_ids=list(environment.worker_ids),
            survivors=list(environment.worker_ids),
            tasks_per_worker=0,
            spent_budget=spent,
            remaining_budget=remaining,
        )

    def step(self) -> Optional[CampaignEvent]:
        """Advance by one elimination round; ``None`` once the run finished."""
        if self._result is not None:
            return None
        generator = self._ensure_started()
        try:
            raw = next(generator)
        except StopIteration as stop:
            result = stop.value
            if not isinstance(result, SelectionResult):
                raise TypeError("a stepwise selector generator must return a SelectionResult")
            self._result = result
            return None
        event = self._event_from(raw)
        self._events.append(event)
        return event

    def steps(self) -> Iterator[CampaignEvent]:
        """Iterate the remaining rounds, yielding one event per round."""
        while True:
            event = self.step()
            if event is None:
                return
            yield event

    def run(self) -> CampaignReport:
        """Drive the campaign to completion and return its report."""
        for _ in self.steps():
            pass
        return self.report()

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #
    def result(self) -> SelectionResult:
        """The raw :class:`SelectionResult` (runs to completion if needed)."""
        if self._result is None:
            self.run()
        assert self._result is not None
        return self._result

    def report(self) -> CampaignReport:
        """The evaluated :class:`CampaignReport` (runs to completion if needed)."""
        if self._report is not None:
            return self._report
        result = self.result()
        environment = self._environment
        assert environment is not None
        outcome = environment.evaluate_selection(result.selected_worker_ids)
        self._report = CampaignReport(
            dataset=self.dataset_name,
            selector=self._selector_name,
            k=self.k,
            seed=self._seed,
            selected_worker_ids=list(result.selected_worker_ids),
            estimated_accuracies=dict(result.estimated_accuracies),
            mean_accuracy=outcome.mean_accuracy,
            per_worker_accuracy=dict(outcome.per_worker_accuracy),
            precision_at_k=precision_at_k(environment, result, k=self.k),
            ground_truth_accuracy=self._instance.ground_truth_mean_accuracy(self.k),
            spent_budget=result.spent_budget,
            total_budget=self._instance.schedule.total_budget,
            n_rounds=result.n_rounds,
            events=self.events,
        )
        return self._report

    # ------------------------------------------------------------------ #
    # Serving handoff
    # ------------------------------------------------------------------ #
    def serving_service(
        self,
        config: Optional[ServingConfig] = None,
        *,
        qualification: Optional[QualificationPolicy] = None,
        answer_oracle: Optional[AnswerOracle] = None,
        telemetry=None,
        **overrides: object,
    ) -> AnnotationService:
        """Build the serving layer from this campaign's finished selection.

        Runs the campaign to completion if needed, qualifies the selected
        workers per domain (target domain from the selector's final
        estimates and training history, prior domains from the historical
        profiles) and returns a ready
        :class:`~repro.serving.service.AnnotationService`.

        Parameters
        ----------
        config:
            Full :class:`~repro.serving.service.ServingConfig`; keyword
            ``overrides`` (e.g. ``router="least_loaded"``) patch the
            default config instead.
        qualification:
            Qualification policy (thresholds, fallback tier).
        answer_oracle:
            Override how routed workers answer; the default simulates each
            worker at its fully trained latent accuracy, drawing from a
            stream derived from the campaign seed and the serving seed —
            same seed and routing policy ⇒ identical trace and labels.
        telemetry:
            Optional :class:`repro.obs.Telemetry` bundle the service
            reports metrics through (kept out of ``ServingConfig`` so
            observing a run never changes its trace).
        """
        if config is not None and overrides:
            raise ValueError("pass either a full ServingConfig or keyword overrides, not both")
        resolved = config if config is not None else replace(ServingConfig(), **overrides)  # type: ignore[arg-type]
        manifest = self.selection_manifest()
        pool = ServingPool.from_selection(
            worker_ids=manifest.worker_ids,
            target_domain=manifest.target_domain,
            target_estimates=manifest.target_estimates,
            training_questions=manifest.training_questions,
            profiles=manifest.profiles,
            policy=qualification,
            max_concurrent=resolved.max_concurrent,
        )
        if answer_oracle is None:
            generator = as_generator(
                derive_seed(self._seed, "campaign", "serving", resolved.seed)
            )
            final_accuracies = manifest.final_accuracies

            def answer_oracle(worker_id, task):  # noqa: F811 - deliberate default binding
                correct = bool(generator.uniform() < final_accuracies[worker_id])
                return task.gold_label if correct else not task.gold_label

        return AnnotationService(pool, resolved, answer_oracle=answer_oracle, telemetry=telemetry)

    def selection_manifest(self) -> SelectionManifest:
        """Summarise the finished selection for the serving/marketplace layer.

        Runs the campaign to completion if needed.
        """
        result = self.result()
        environment = self._environment
        assert environment is not None
        history = environment.history

        def observed_accuracy(worker_id: str) -> float:
            total = 0
            correct = 0
            for record in history.rounds_for_worker(worker_id):
                total += record.tasks_per_worker
                correct += int(record.correctness[worker_id].sum())
            # A worker the selector never tested is "unknown", which the
            # qualification policy maps to the fallback tier — not to
            # unqualified, and not to fully qualified either.
            return correct / total if total else 0.5

        selected = list(result.selected_worker_ids)
        profiles = {w.worker_id: w.profile for w in self._instance.pool}
        return SelectionManifest(
            target_domain=self._instance.target_domain,
            worker_ids=selected,
            target_estimates={
                worker_id: float(
                    result.estimated_accuracies.get(worker_id, observed_accuracy(worker_id))
                )
                for worker_id in selected
            },
            training_questions={
                worker_id: history.cumulative_exposure(worker_id) for worker_id in selected
            },
            final_accuracies={
                worker_id: environment.final_accuracy(worker_id) for worker_id in selected
            },
            profiles={worker_id: profiles[worker_id] for worker_id in selected if worker_id in profiles},
        )

    def serve(
        self,
        n_tasks: Optional[int] = None,
        config: Optional[ServingConfig] = None,
        *,
        qualification: Optional[QualificationPolicy] = None,
        answer_oracle: Optional[AnswerOracle] = None,
        telemetry=None,
        **overrides: object,
    ) -> ServingReport:
        """Serve ``n_tasks`` working tasks through the selected pool.

        Convenience wrapper over :meth:`serving_service`: streams the
        dataset's working tasks (cycled deterministically when ``n_tasks``
        exceeds the bank) and returns the resulting
        :class:`~repro.serving.service.ServingReport`.
        """
        service = self.serving_service(
            config,
            qualification=qualification,
            answer_oracle=answer_oracle,
            telemetry=telemetry,
            **overrides,
        )
        tasks = working_task_stream(self._instance.task_bank, n_tasks)
        return service.serve(tasks)

    # ------------------------------------------------------------------ #
    # Checkpoint / resume
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, object]:
        """JSON-serialisable checkpoint of the campaign's progress.

        The checkpoint stores the campaign *recipe* plus the number of
        completed rounds; because every random stream is derived from the
        campaign seed, :meth:`from_state_dict` replays those rounds
        deterministically and the resumed campaign is indistinguishable
        from one that never paused.
        """
        return {
            "version": _STATE_VERSION,
            "dataset": self._dataset_name,
            "selector": self._selector_name,
            "k": self._requested_k,
            "seed": self._seed,
            "tasks_per_batch": self._tasks_per_batch,
            "answer_engine": self._answer_engine,
            "selector_config": dict(self._selector_config),
            "rounds_completed": self.rounds_completed,
            "finished": self.finished,
        }

    @classmethod
    def from_state_dict(cls, state: Mapping[str, object]) -> "Campaign":
        """Restore a campaign checkpointed with :meth:`state_dict`."""
        version = state.get("version")
        if version != _STATE_VERSION:
            raise ValueError(f"unsupported campaign state version {version!r} (expected {_STATE_VERSION})")
        campaign = cls(
            dataset=str(state["dataset"]),
            selector=str(state["selector"]),
            k=state.get("k"),
            seed=int(state["seed"]),
            tasks_per_batch=state.get("tasks_per_batch"),
            answer_engine=str(state.get("answer_engine", "vectorized")),
            selector_config=dict(state.get("selector_config", {})),
        )
        rounds_completed = int(state.get("rounds_completed", 0))
        for _ in range(rounds_completed):
            if campaign.step() is None:
                break
        if state.get("finished"):
            campaign.run()
        return campaign


__all__ = [
    "Campaign",
    "CampaignEvent",
    "CampaignReport",
    "SelectionManifest",
    "ServingConfig",
    "ServingReport",
]
