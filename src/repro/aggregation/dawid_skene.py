"""Dawid-Skene EM aggregation for binary labels.

The classic (1979) model: every task has a latent true label, every worker a
2x2 confusion matrix, and EM alternates between estimating the posterior of
the true labels (E-step) and re-estimating the confusion matrices and class
prior (M-step).  We specialise it to binary Yes/No tasks, which is all the
paper's task type requires, and keep the implementation dependency-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.aggregation.majority import majority_vote

_SMOOTH = 1e-6


@dataclass(frozen=True)
class DawidSkeneResult:
    """Posterior labels and per-worker quality estimates."""

    labels: np.ndarray
    posterior_positive: np.ndarray
    worker_accuracy: np.ndarray
    class_prior: float
    n_iterations: int
    converged: bool

    def accuracy_against(self, gold_labels: Sequence[bool]) -> float:
        """Fraction of tasks whose inferred label matches the gold label."""
        gold = np.asarray(gold_labels, dtype=bool)
        if gold.shape[0] != self.labels.shape[0]:
            raise ValueError("gold_labels must match the number of tasks")
        return float(np.mean(self.labels == gold))


class DawidSkeneAggregator:
    """Binary Dawid-Skene EM with majority-vote initialisation."""

    def __init__(self, max_iterations: int = 100, tolerance: float = 1e-6) -> None:
        if max_iterations <= 0:
            raise ValueError("max_iterations must be positive")
        if tolerance <= 0:
            raise ValueError("tolerance must be positive")
        self._max_iterations = max_iterations
        self._tolerance = tolerance

    # ------------------------------------------------------------------ #
    def aggregate(self, answers: np.ndarray, mask: Optional[np.ndarray] = None) -> DawidSkeneResult:
        """Run EM on a ``(workers x tasks)`` binary answer matrix.

        ``nan`` entries (or ``mask == False``) mark missing answers.
        """
        matrix = np.atleast_2d(np.asarray(answers, dtype=float))
        valid = ~np.isnan(matrix)
        if mask is not None:
            mask = np.asarray(mask, dtype=bool)
            if mask.shape != matrix.shape:
                raise ValueError("mask must match the shape of answers")
            valid &= mask
        observed = np.where(valid, matrix, 0.0)

        # Initialise the posterior from majority vote.
        initial = majority_vote(np.where(valid, matrix, np.nan))
        posterior = np.clip(initial.labels.astype(float), 0.05, 0.95)

        sensitivity = np.full(matrix.shape[0], 0.7)  # P(answer=1 | true=1) per worker
        specificity = np.full(matrix.shape[0], 0.7)  # P(answer=0 | true=0) per worker
        prior = float(np.clip(posterior.mean(), _SMOOTH, 1.0 - _SMOOTH))

        converged = False
        iteration = 0
        for iteration in range(1, self._max_iterations + 1):
            # ---------------- M-step ---------------- #
            weight_pos = posterior[None, :] * valid
            weight_neg = (1.0 - posterior)[None, :] * valid
            sensitivity = (weight_pos * observed).sum(axis=1) + _SMOOTH
            sensitivity /= weight_pos.sum(axis=1) + 2 * _SMOOTH
            specificity = (weight_neg * (1.0 - observed)).sum(axis=1) + _SMOOTH
            specificity /= weight_neg.sum(axis=1) + 2 * _SMOOTH
            prior = float(np.clip(posterior.mean(), _SMOOTH, 1.0 - _SMOOTH))

            # ---------------- E-step ---------------- #
            log_pos = np.log(prior) + np.where(
                valid,
                observed * np.log(sensitivity[:, None]) + (1.0 - observed) * np.log(1.0 - sensitivity[:, None]),
                0.0,
            ).sum(axis=0)
            log_neg = np.log(1.0 - prior) + np.where(
                valid,
                (1.0 - observed) * np.log(specificity[:, None]) + observed * np.log(1.0 - specificity[:, None]),
                0.0,
            ).sum(axis=0)
            shift = np.maximum(log_pos, log_neg)
            new_posterior = np.exp(log_pos - shift) / (np.exp(log_pos - shift) + np.exp(log_neg - shift))

            if np.max(np.abs(new_posterior - posterior)) < self._tolerance:
                posterior = new_posterior
                converged = True
                break
            posterior = new_posterior

        labels = posterior >= 0.5
        worker_accuracy = 0.5 * (sensitivity + specificity)
        return DawidSkeneResult(
            labels=labels,
            posterior_positive=posterior,
            worker_accuracy=worker_accuracy,
            class_prior=prior,
            n_iterations=iteration,
            converged=converged,
        )


__all__ = ["DawidSkeneAggregator", "DawidSkeneResult"]
