"""Majority-vote label aggregation.

Answers are a ``(workers x tasks)`` matrix of binary labels (True = "Yes").
Missing answers are encoded as ``numpy.nan`` in a float matrix or masked via
the optional ``mask`` argument.  Ties are broken by the configurable
``tie_break`` value so aggregation is deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class AggregationResult:
    """Aggregated labels plus per-task vote statistics."""

    labels: np.ndarray
    positive_votes: np.ndarray
    total_votes: np.ndarray

    @property
    def n_tasks(self) -> int:
        return int(self.labels.shape[0])

    def accuracy_against(self, gold_labels: Sequence[bool]) -> float:
        """Fraction of tasks whose aggregated label matches the gold label."""
        gold = np.asarray(gold_labels, dtype=bool)
        if gold.shape[0] != self.labels.shape[0]:
            raise ValueError("gold_labels must match the number of tasks")
        if gold.size == 0:
            raise ValueError("gold_labels must be non-empty")
        return float(np.mean(self.labels == gold))


def majority_vote(
    answers: np.ndarray,
    mask: Optional[np.ndarray] = None,
    tie_break: bool = True,
) -> AggregationResult:
    """Aggregate binary answers by per-task majority.

    Parameters
    ----------
    answers:
        ``(workers x tasks)`` array of 0/1 (or boolean) answers; ``nan``
        entries are treated as missing.
    mask:
        Optional boolean array of the same shape; ``False`` marks missing
        answers (combined with the NaN convention).
    tie_break:
        Label assigned when the vote is exactly tied or no votes exist.
    """
    matrix = np.atleast_2d(np.asarray(answers, dtype=float))
    if matrix.ndim != 2:
        raise ValueError("answers must be a 2-D (workers x tasks) array")
    valid = ~np.isnan(matrix)
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != matrix.shape:
            raise ValueError("mask must match the shape of answers")
        valid &= mask

    votes = np.where(valid, matrix, 0.0)
    positive = votes.sum(axis=0)
    totals = valid.sum(axis=0).astype(float)
    labels = np.where(
        totals == 0,
        tie_break,
        np.where(positive * 2 == totals, tie_break, positive * 2 > totals),
    ).astype(bool)
    return AggregationResult(labels=labels, positive_votes=positive, total_votes=totals)


__all__ = ["majority_vote", "AggregationResult"]
