"""Label-aggregation substrate (the downstream consumer of worker selection).

The paper motivates worker selection by the quality of the final annotations
the selected workers produce.  This package closes that loop: given the
selected workers' answers to the working tasks, it aggregates them into a
single label per task, so examples and extended benchmarks can report
end-to-end annotation quality and not only per-worker accuracy.

Two standard aggregators are provided:

* :func:`majority_vote` — the simplest and most widely used rule;
* :class:`DawidSkeneAggregator` — the classic EM estimator of per-worker
  confusion matrices, which outperforms majority vote when worker quality is
  heterogeneous (exactly the setting of this paper).
"""

from repro.aggregation.dawid_skene import DawidSkeneAggregator, DawidSkeneResult
from repro.aggregation.majority import AggregationResult, majority_vote

__all__ = [
    "majority_vote",
    "AggregationResult",
    "DawidSkeneAggregator",
    "DawidSkeneResult",
]
