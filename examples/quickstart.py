"""Quickstart: select the best crowd workers for a new annotation domain.

Loads the S-1 synthetic dataset (40 workers, three prior domains, one target
domain), runs the paper's cross-domain-aware selection pipeline next to the
Uniform Sampling and Median Elimination baselines under the same budget, and
reports the working-task accuracy of each method's selected workers.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    MedianEliminationSelector,
    OursSelector,
    UniformSamplingSelector,
    load_dataset,
)
from repro.evaluation.metrics import precision_at_k, selection_accuracy


def main() -> None:
    dataset = load_dataset("S-1", seed=0)
    print(f"Dataset {dataset.name}: {len(dataset.pool)} workers, "
          f"budget B={dataset.schedule.total_budget}, "
          f"{dataset.schedule.n_rounds} elimination rounds, k={dataset.schedule.k}")
    print(f"Ground-truth top-{dataset.schedule.k} mean accuracy: "
          f"{dataset.ground_truth_mean_accuracy():.3f}\n")

    selectors = [
        UniformSamplingSelector(),
        MedianEliminationSelector(rng=0),
        OursSelector(rng=0),
    ]
    for selector in selectors:
        environment = dataset.environment(run_seed=0)
        result = selector.select(environment)
        accuracy = selection_accuracy(environment, result)
        precision = precision_at_k(environment, result)
        print(f"{selector.name:8s} selected {len(result.selected_worker_ids)} workers | "
              f"working-task accuracy {accuracy:.3f} | overlap with true top-k {precision:.0%} | "
              f"budget used {result.spent_budget}")

    print("\nThe proposed method ('ours') combines the workers' historical cross-domain")
    print("profiles (CPE) with per-worker learning curves fitted during training (LGE),")
    print("so it can keep fast learners that the observation-only baselines eliminate early.")


if __name__ == "__main__":
    main()
