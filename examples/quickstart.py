"""Quickstart: select the best crowd workers for a new annotation domain.

Walks the package's public surface top-down:

1. the :class:`repro.Campaign` facade — one annotation campaign, run either
   one-shot or streamed round by round, with a JSON-serialisable checkpoint
   taken (and resumed) mid-run;
2. the selector registry — every strategy is string-addressable, so
   comparing methods is a loop over names, and custom strategies plug in
   with one decorator.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import Campaign

COMPARED_SELECTORS = ["us", "me", "ours"]


def main() -> None:
    # --- One campaign, streamed round by round, checkpointed mid-run. --- #
    campaign = Campaign(dataset="S-1", selector="ours", k=5, seed=0)
    print(
        f"Campaign on {campaign.dataset_name}: select k={campaign.k} workers "
        f"over {campaign.n_rounds} elimination rounds"
    )

    state = None
    for event in campaign.steps():
        print(
            f"  round {event.round_index}/{event.n_rounds}: "
            f"{len(event.worker_ids)} -> {len(event.survivors)} workers, "
            f"budget spent {event.spent_budget}/{event.spent_budget + event.remaining_budget}"
        )
        if event.round_index == 1:
            state = campaign.state_dict()  # JSON-serialisable checkpoint

    report = campaign.report()
    print(f"selected: {', '.join(report.selected_worker_ids)}")
    print(f"mean working-task accuracy {report.mean_accuracy:.3f} "
          f"(ground-truth top-{report.k}: {report.ground_truth_accuracy:.3f})\n")

    # --- Resume from the round-1 checkpoint: same final selection. --- #
    resumed = Campaign.from_state_dict(state)
    assert resumed.run().selected_worker_ids == report.selected_worker_ids
    print("checkpoint after round 1 resumed to the identical selection\n")

    # --- Compare registered strategies under the same budget. --- #
    print(f"{'method':8s} {'accuracy':>9s} {'top-k overlap':>14s} {'budget':>7s}")
    for selector_name in COMPARED_SELECTORS:
        result = Campaign(dataset="S-1", selector=selector_name, k=5, seed=0).run()
        print(
            f"{selector_name:8s} {result.mean_accuracy:9.3f} "
            f"{result.precision_at_k:14.0%} {result.spent_budget:7d}"
        )

    print("\nThe proposed method ('ours') combines the workers' historical cross-domain")
    print("profiles (CPE) with per-worker learning curves fitted during training (LGE),")
    print("so it can keep fast learners that the observation-only baselines eliminate early.")


if __name__ == "__main__":
    main()
