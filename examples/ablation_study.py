"""Scenario: which part of the pipeline earns its keep?

Reproduces the spirit of the paper's ablation study (Table V, ME / ME-CPE /
Ours) on the two simulated real-world datasets and additionally compares the
learning-curve model used by LGE against the BKT and PFA knowledge-tracing
alternatives surveyed in the paper's related work, using each model to
extrapolate worker accuracy from the same observed training trajectories.

Run with::

    python examples/ablation_study.py
"""

from __future__ import annotations

import numpy as np

from repro import MeCpeSelector, MedianEliminationSelector, OursSelector, load_dataset
from repro.evaluation.metrics import selection_accuracy
from repro.irt.bkt import BayesianKnowledgeTracing
from repro.irt.learning_curve import LearningCurveModel
from repro.irt.pfa import PerformanceFactorModel

DATASETS = ("RW-1", "RW-2")
N_REPETITIONS = 3


def component_ablation() -> None:
    print("Component ablation (mean selected-worker accuracy):")
    print(f"{'dataset':>8} {'ME':>7} {'ME-CPE':>7} {'Ours':>7} {'GT':>7}")
    for name in DATASETS:
        accuracies = {"me": [], "me-cpe": [], "ours": []}
        ground_truths = []
        for repetition in range(N_REPETITIONS):
            dataset = load_dataset(name, seed=repetition)
            ground_truths.append(dataset.ground_truth_mean_accuracy())
            for key, selector in (
                ("me", MedianEliminationSelector(rng=repetition)),
                ("me-cpe", MeCpeSelector(rng=repetition)),
                ("ours", OursSelector(rng=repetition)),
            ):
                environment = dataset.environment(run_seed=repetition)
                accuracies[key].append(selection_accuracy(environment, selector.select(environment)))
        print(f"{name:>8} {np.mean(accuracies['me']):>7.3f} {np.mean(accuracies['me-cpe']):>7.3f} "
              f"{np.mean(accuracies['ours']):>7.3f} {np.mean(ground_truths):>7.3f}")


def learning_model_comparison() -> None:
    """Compare how well each knowledge-tracing family extrapolates a learning worker."""
    print("\nLearning-model comparison (predicting accuracy after 30 training tasks")
    print("from the first 10 observed answers of a fast learner):")
    true_curve = LearningCurveModel(learning_rate=0.45, difficulty=0.0)
    rng = np.random.default_rng(4)
    observed = (rng.uniform(size=10) < true_curve.probability(np.arange(10))).astype(int)
    truth_at_30 = true_curve.probability(30)

    irt_alpha = np.clip(np.log(max(observed.mean(), 1e-3) / max(1 - observed.mean(), 1e-3)), 0, None) / np.log(11)
    irt_prediction = LearningCurveModel(float(irt_alpha), 0.0).probability(30)
    bkt_prediction = BayesianKnowledgeTracing(p_init=0.2, p_learn=0.12, p_slip=0.08, p_guess=0.3)
    pfa_prediction = PerformanceFactorModel(easiness=0.0, success_weight=0.12, failure_weight=0.02)

    print(f"  true accuracy after 30 tasks      : {truth_at_30:.3f}")
    print(f"  modified IRT (the paper's choice) : {irt_prediction:.3f}")
    print(f"  Bayesian Knowledge Tracing        : {bkt_prediction.expected_accuracy_curve(30)[-1]:.3f}")
    print(f"  Performance Factor Analysis       : {pfa_prediction.expected_accuracy_curve(30, latent_accuracy=observed.mean())[-1]:.3f}")
    print("The paper adopts the modified IRT model because it extrapolates the training")
    print("curve without per-skill bookkeeping; BKT/PFA are provided for experimentation.")


def main() -> None:
    component_ablation()
    learning_model_comparison()


if __name__ == "__main__":
    main()
