"""Live serving demo: from worker selection straight into annotation serving.

End-to-end walk through the serving layer on the S-1 dataset:

1. run a selection :class:`repro.Campaign` (the paper's pipeline picks the
   top-k workers for the target domain);
2. hand the selected pool to the serving layer and stream working tasks
   through ``domain_affinity`` routing with incremental Dawid-Skene
   aggregation;
3. print the aggregated labels, the per-worker load, and the drift log —
   including a second run where one selected worker is deliberately
   degraded mid-stream, so the EWMA drift detector demotes it and (once
   enough of the pool drifts) raises the re-selection signal.

Run with::

    python examples/live_serving_demo.py
"""

from __future__ import annotations

import numpy as np

from repro import Campaign
from repro.serving import DriftConfig, ServingConfig, working_task_stream

N_TASKS = 200


def run_healthy_pool() -> None:
    campaign = Campaign(dataset="S-1", selector="ours", k=5, seed=0)
    report = campaign.run()
    print(
        f"selected {len(report.selected_worker_ids)} workers on {campaign.dataset_name} "
        f"(mean working accuracy {report.mean_accuracy:.3f})"
    )

    serving = campaign.serve(n_tasks=N_TASKS, router="domain_affinity", votes_per_task=3)
    print(f"\nserved {serving.n_tasks_routed} working tasks via {serving.router}:")
    shown = list(serving.labels.items())[:8]
    for task_id, label in shown:
        print(f"  {task_id}: {'Yes' if label else 'No'}")
    print(f"  ... ({len(serving.labels) - len(shown)} more)")
    print(f"aggregated label accuracy vs gold: {serving.label_accuracy:.3f}")
    print("worker load (assigned):", {w: load["assigned_total"] for w, load in serving.worker_load.items()})
    print(f"drift events: {len(serving.drift_events)}, re-selection recommended: {serving.reselection_recommended}")


def run_degrading_pool() -> None:
    campaign = Campaign(dataset="S-1", selector="ours", k=5, seed=0)
    campaign.run()
    degraded = campaign.result().selected_worker_ids[0]
    rng = np.random.default_rng(42)
    answered = {"count": 0}

    def oracle(worker_id, task):
        """Simulate answers; the first selected worker collapses after ~50 tasks."""
        answered["count"] += 1
        accuracy = 0.85
        if worker_id == degraded and answered["count"] > 150:
            accuracy = 0.25
        correct = rng.uniform() < accuracy
        return task.gold_label if correct else not task.gold_label

    service = campaign.serving_service(
        ServingConfig(router="round_robin", votes_per_task=3, drift=DriftConfig()),
        answer_oracle=oracle,
    )
    report = service.serve(working_task_stream(campaign._instance.task_bank, N_TASKS * 2))

    print(f"\n--- drift injection: {degraded} degrades mid-stream ---")
    for event in report.drift_events:
        print(
            f"  drift: {event.worker_id} on {event.domain} after {event.n_observations} answers "
            f"(ewma {event.ewma:.3f}, baseline {event.baseline:.3f})"
        )
    for demotion in report.demotions:
        print(f"  demoted: {demotion['worker_id']} -> {demotion['new_tier']} on {demotion['domain']}")
    print(f"re-selection recommended: {report.reselection_recommended}")


def main() -> None:
    run_healthy_pool()
    run_degrading_pool()


if __name__ == "__main__":
    main()
