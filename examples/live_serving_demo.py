"""Live serving demo: from worker selection straight into annotation serving.

End-to-end walk through the serving layer on the S-1 dataset:

1. run a selection :class:`repro.Campaign` (the paper's pipeline picks the
   top-k workers for the target domain);
2. hand the selected pool to the serving layer and stream working tasks
   through ``domain_affinity`` routing with incremental Dawid-Skene
   aggregation;
3. print the aggregated labels, the per-worker load, and the drift log —
   including a second run where one selected worker is deliberately
   degraded mid-stream, so the EWMA drift detector demotes it and (once
   enough of the pool drifts) raises the re-selection signal;
4. repeat the exercise with a *drifter-contaminated scenario pool*
   (``S-1:drift20`` with the step pushed past the training schedule): the
   drifters look healthy through selection, survive into the serving pool,
   then collapse mid-stream — and the drift detector catches them without
   any hand-injected degradation.

Run with::

    python examples/live_serving_demo.py
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import replace

import numpy as np

from repro import Campaign, DrifterWorker, make_selector
from repro.datasets import get_spec, scenario_spec
from repro.serving import (
    AnnotationService,
    DriftConfig,
    ServingConfig,
    ServingPool,
    working_task_stream,
)

N_TASKS = 200


def run_healthy_pool() -> None:
    campaign = Campaign(dataset="S-1", selector="ours", k=5, seed=0)
    report = campaign.run()
    print(
        f"selected {len(report.selected_worker_ids)} workers on {campaign.dataset_name} "
        f"(mean working accuracy {report.mean_accuracy:.3f})"
    )

    serving = campaign.serve(n_tasks=N_TASKS, router="domain_affinity", votes_per_task=3)
    print(f"\nserved {serving.n_tasks_routed} working tasks via {serving.router}:")
    shown = list(serving.labels.items())[:8]
    for task_id, label in shown:
        print(f"  {task_id}: {'Yes' if label else 'No'}")
    print(f"  ... ({len(serving.labels) - len(shown)} more)")
    print(f"aggregated label accuracy vs gold: {serving.label_accuracy:.3f}")
    print("worker load (assigned):", {w: load["assigned_total"] for w, load in serving.worker_load.items()})
    print(f"drift events: {len(serving.drift_events)}, re-selection recommended: {serving.reselection_recommended}")


def run_degrading_pool() -> None:
    campaign = Campaign(dataset="S-1", selector="ours", k=5, seed=0)
    campaign.run()
    degraded = campaign.result().selected_worker_ids[0]
    rng = np.random.default_rng(42)
    answered = {"count": 0}

    def oracle(worker_id, task):
        """Simulate answers; the first selected worker collapses after ~50 tasks."""
        answered["count"] += 1
        accuracy = 0.85
        if worker_id == degraded and answered["count"] > 150:
            accuracy = 0.25
        correct = rng.uniform() < accuracy
        return task.gold_label if correct else not task.gold_label

    service = campaign.serving_service(
        ServingConfig(router="round_robin", votes_per_task=3, drift=DriftConfig()),
        answer_oracle=oracle,
    )
    report = service.serve(working_task_stream(campaign._instance.task_bank, N_TASKS * 2))

    print(f"\n--- drift injection: {degraded} degrades mid-stream ---")
    for event in report.drift_events:
        print(
            f"  drift: {event.worker_id} on {event.domain} after {event.n_observations} answers "
            f"(ewma {event.ewma:.3f}, baseline {event.baseline:.3f})"
        )
    for demotion in report.demotions:
        print(f"  demoted: {demotion['worker_id']} -> {demotion['new_tier']} on {demotion['domain']}")
    print(f"re-selection recommended: {report.reselection_recommended}")


def run_drifter_scenario() -> None:
    """A contaminated scenario pool whose drifters collapse during *serving*.

    The ``drift20`` scenario normally drifts workers mid-campaign (so good
    selectors filter them); here the step is pushed past the training
    schedule via ``behavior_params``, producing sleeper cells: workers whose
    training answers are flawless and whose accuracy collapses only once
    real annotation traffic flows.
    """
    scenario = scenario_spec(get_spec("S-1"), "drift20")
    # The full S-1 training schedule exposes every surviving worker to 140
    # golden questions; a drift step at 160 is invisible during selection.
    population = replace(
        scenario.population,
        behavior_params={"drifter": {"drift_exposure": 160.0, "drifted_accuracy": 0.25}},
    )
    instance = scenario.with_overrides(population=population).instantiate(seed=4)
    environment = instance.environment(run_seed=0)
    result = make_selector("ours", seed=0, cpe_epochs=8).select(environment, k=5)
    sleepers = [
        worker_id
        for worker_id in result.selected_worker_ids
        if isinstance(instance.pool[worker_id], DrifterWorker)
    ]
    print(f"\n--- drifter scenario: {instance.name}, selection by 'ours' ---")
    print(f"selected {len(result.selected_worker_ids)} workers; sleeper drifters among them: {sleepers or 'none'}")

    pool = ServingPool.from_selection(
        worker_ids=result.selected_worker_ids,
        target_domain=instance.target_domain,
        target_estimates=result.estimated_accuracies,
        training_questions={
            worker_id: environment.history.cumulative_exposure(worker_id)
            for worker_id in result.selected_worker_ids
        },
        profiles={worker.worker_id: worker.profile for worker in instance.pool},
    )
    served = defaultdict(int)
    rng = np.random.default_rng(9)

    def live_oracle(worker_id, task):
        """Answers follow each behaviour's *live* curve: exposure keeps growing."""
        behavior = instance.pool[worker_id]
        accuracy = behavior.accuracy_at(behavior.training_exposure + served[worker_id])
        served[worker_id] += 1
        correct = rng.uniform() < accuracy
        return task.gold_label if correct else not task.gold_label

    service = AnnotationService(
        pool,
        ServingConfig(router="round_robin", votes_per_task=3, drift=DriftConfig()),
        answer_oracle=live_oracle,
    )
    report = service.serve(working_task_stream(instance.task_bank, N_TASKS * 2))
    for event in report.drift_events:
        print(
            f"  drift: {event.worker_id} on {event.domain} after {event.n_observations} answers "
            f"(ewma {event.ewma:.3f}, baseline {event.baseline:.3f})"
        )
    if not report.drift_events:
        print("  no drift events (try another seed)")
    print(f"re-selection recommended: {report.reselection_recommended}")


def main() -> None:
    run_healthy_pool()
    run_degrading_pool()
    run_drifter_scenario()


if __name__ == "__main__":
    main()
