"""Scenario: staffing a flower-annotation campaign from an existing worker pool.

This mirrors the paper's motivating example (Figure 1): a platform has
workers with annotation history on *elephants*, *clownfish* and *planes* and
must pick the best seven for a brand-new *petunia* classification job.  The
script builds the pool explicitly through the public worker API (rather than
loading a canned dataset), runs the full selection pipeline, and then has the
selected workers annotate a batch of working tasks whose labels are
aggregated with majority vote and Dawid-Skene.

Run with::

    python examples/flower_annotation_campaign.py
"""

from __future__ import annotations

import numpy as np

from repro import OursSelector
from repro.aggregation import DawidSkeneAggregator, majority_vote
from repro.platform.budget import compute_budget, default_total_budget
from repro.platform.session import AnnotationEnvironment
from repro.platform.tasks import generate_task_bank
from repro.workers.pool import WorkerPool
from repro.workers.population import PopulationConfig, sample_learning_population

PRIOR_DOMAINS = ("elephant", "clownfish", "plane")
TARGET_DOMAIN = "petunia"
POOL_SIZE = 27
K = 7
TASKS_PER_BATCH = 10


def build_worker_pool(seed: int = 11) -> WorkerPool:
    """Sample a pool of workers with cross-domain history and learning dynamics."""
    population = PopulationConfig(
        prior_domains=PRIOR_DOMAINS,
        target_domain=TARGET_DOMAIN,
        prior_means=(0.70, 0.88, 0.58),
        prior_stds=(0.22, 0.10, 0.25),
        target_mean=0.55,
        target_std=0.17,
        prior_task_count=20,
        learning_mode="target_quality",
        start_accuracy=0.5,
        initial_spread=0.4,
        initial_noise_std=0.5,
        reference_exposure=TASKS_PER_BATCH,
        min_learning_rate=0.0,
    )
    workers = sample_learning_population(population, n_workers=POOL_SIZE, rng=seed, id_prefix="crowd")
    return WorkerPool(workers)


def main() -> None:
    pool = build_worker_pool()
    budget = default_total_budget(POOL_SIZE, K, TASKS_PER_BATCH)
    schedule = compute_budget(POOL_SIZE, K, budget)
    task_bank = generate_task_bank(
        TARGET_DOMAIN,
        n_learning=schedule.full_training_exposure + TASKS_PER_BATCH,
        n_working=60,
        rng=5,
        prompt_template="Is the flower in image #{index} a petunia?",
    )
    environment = AnnotationEnvironment(
        pool=pool,
        task_bank=task_bank,
        schedule=schedule,
        prior_domains=list(PRIOR_DOMAINS),
        rng=3,
        batch_size=TASKS_PER_BATCH,
    )

    print(f"Campaign: select {K} of {POOL_SIZE} workers for the '{TARGET_DOMAIN}' domain")
    print(f"Golden-question budget: {budget} assignments over {schedule.n_rounds} rounds\n")

    selector = OursSelector(rng=1)
    result = selector.select(environment)
    print("Selected workers:", ", ".join(result.selected_worker_ids))
    print("Estimated cross-domain correlations with the petunia domain:")
    for domain, value in result.diagnostics["estimated_correlations"].items():
        print(f"  {domain:10s} {value:+.2f}")

    outcome = environment.evaluate_selection(result.selected_worker_ids)
    print(f"\nMean working-task accuracy of the selected team: {outcome.mean_accuracy:.3f}")
    print(f"Ground-truth best-{K} accuracy:                   "
          f"{environment.evaluate_selection(environment.ground_truth_top_k(K)).mean_accuracy:.3f}")

    # --- Downstream: annotate the working tasks and aggregate the labels. ---
    rng = np.random.default_rng(17)
    working_tasks = task_bank.working_tasks
    gold = np.array([task.gold_label for task in working_tasks])
    answers = np.vstack(
        [
            np.where(
                rng.uniform(size=len(working_tasks)) < environment.final_accuracy(worker_id), gold, ~gold
            )
            for worker_id in result.selected_worker_ids
        ]
    ).astype(float)

    mv = majority_vote(answers)
    ds = DawidSkeneAggregator().aggregate(answers)
    print(f"\nAggregated label quality on {len(working_tasks)} working tasks:")
    print(f"  majority vote : {mv.accuracy_against(gold):.3f}")
    print(f"  Dawid-Skene   : {ds.accuracy_against(gold):.3f}")


if __name__ == "__main__":
    main()
