"""Marketplace demo: concurrent campaigns over one churning worker pool.

End-to-end walk through the marketplace orchestration layer:

1. run two campaigns (S-1 and S-2) concurrently against one shared
   marketplace with open-world churn — including an injected recruitment
   *burst* at tick 10 — and print what each campaign and the marketplace
   saw, with every tick journaled to disk;
2. simulate a crash by truncating the journal mid-run, then ``resume``:
   the orchestrator replays the surviving prefix deterministically and
   the final journal is byte-for-byte identical to the uninterrupted run;
3. run a campaign on a drifter-contaminated pool (``S-1:drift40``): the
   drifters collapse mid-serving, the drift detector raises the
   re-selection signal, and the campaign handle checkpoints through
   ``Campaign.state_dict()``, re-qualifies against the live marketplace
   and finishes the stream with a refreshed pool.

Run with::

    python examples/marketplace_demo.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import CampaignSpec, ChurnConfig, MarketplaceConfig, MarketplaceOrchestrator
from repro.serving import DriftConfig

N_TICKS = 40
TOTAL_TASKS = 30


def two_campaign_specs() -> list:
    return [
        CampaignSpec(name="flowers", dataset="S-1", selector="us", k=5, seed=1),
        CampaignSpec(name="birds", dataset="S-2", selector="us", k=5, seed=2),
    ]


def build_orchestrator(journal_path: Path) -> MarketplaceOrchestrator:
    return MarketplaceOrchestrator(
        two_campaign_specs(),
        config=MarketplaceConfig(total_tasks=TOTAL_TASKS),
        # A steady trickle of arrivals and departures, plus a recruitment
        # burst of 5 extra prestudy candidates at tick 10.
        churn=ChurnConfig(arrival_rate=0.8, departure_rate=0.05, bursts={10: 5}),
        journal_path=journal_path,
        seed=7,
    )


def print_report(report) -> None:
    market = report.marketplace
    print(
        f"  churn: {market['arrivals_admitted']} admitted / "
        f"{market['arrivals_rejected']} rejected arrivals, "
        f"{market['departures']} departures "
        f"({market['workers_present']}/{market['workers_total']} present)"
    )
    for campaign in report.campaigns:
        print(
            f"  {campaign['name']} [{campaign['phase']}]: "
            f"{campaign['n_labels']} labels (accuracy {campaign['label_accuracy']:.3f}), "
            f"{campaign['reselections']} re-selections, "
            f"{campaign['invalidated_votes']} votes invalidated by departures"
        )


def run_shared_marketplace(journal_path: Path) -> bytes:
    print(f"two campaigns, one marketplace ({N_TICKS} ticks, burst at tick 10):")
    report = build_orchestrator(journal_path).run(N_TICKS, tick_batch=8)
    print_report(report)
    return journal_path.read_bytes()


def run_crash_resume(journal_path: Path, reference: bytes) -> None:
    # Keep the header plus nine tick records, tearing the rest away — the
    # crash the append-only fsynced journal is designed for.
    lines = reference.decode("utf-8").splitlines(keepends=True)
    journal_path.write_text("".join(lines[:10]), encoding="utf-8")
    print(f"\ncrash simulated: journal truncated to {10}/{len(lines)} lines; resuming...")
    build_orchestrator(journal_path).run(N_TICKS, tick_batch=8, resume=True)
    identical = journal_path.read_bytes() == reference
    print(f"resumed journal byte-identical to the uninterrupted run: {identical}")
    assert identical


def run_drift_reselection() -> None:
    print("\ndrift-triggered re-selection (40% drifters in the S-1 pool):")
    spec = CampaignSpec(name="drifty", dataset="S-1:drift40", selector="us", k=6, seed=3)
    orchestrator = MarketplaceOrchestrator(
        [spec],
        config=MarketplaceConfig(
            total_tasks=120,
            tasks_per_tick=4,
            drift=DriftConfig(
                alpha=0.2, min_observations=5, demote_below=0.5, drop_tolerance=0.3, cooldown=5
            ),
            reselect_fraction=0.3,
            max_reselections=2,
            requalify_ticks=2,
        ),
        churn=ChurnConfig(arrival_rate=1.0, departure_rate=0.01),
        seed=11,
    )
    report = orchestrator.run(120, tick_batch=8)
    campaign = report.campaigns[0]
    print(
        f"  {campaign['name']} [{campaign['phase']}]: "
        f"{campaign['reselections']} re-selections, "
        f"{campaign['tasks_routed']} tasks routed for a {120}-task stream "
        f"(abandoned tasks re-queued), {campaign['n_labels']} labels"
    )
    assert campaign["reselections"] >= 1


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        journal_path = Path(tmp) / "marketplace.jsonl"
        reference = run_shared_marketplace(journal_path)
        run_crash_resume(journal_path, reference)
    run_drift_reselection()


if __name__ == "__main__":
    main()
