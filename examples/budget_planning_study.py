"""Scenario: how many golden questions does a requester actually need?

A task requester with a fixed worker pool wants to know how the per-batch
golden-question budget ``Q`` trades off against the quality of the selected
team — the practical question behind the paper's Figure 7.  The script sweeps
``Q`` on a mid-sized synthetic pool, compares the proposed method against the
Uniform Sampling baseline at every budget, and prints the theoretical
per-round error bound (Theorem 2) alongside the measured accuracies.

Run with::

    python examples/budget_planning_study.py
"""

from __future__ import annotations

import numpy as np

from repro import OursSelector, UniformSamplingSelector
from repro.core.bounds import round_error_bound
from repro.datasets.synthetic import synthetic_spec
from repro.evaluation.metrics import selection_accuracy

POOL_SIZE = 32
K = 4
Q_VALUES = (6, 10, 16, 24)
N_REPETITIONS = 3


def evaluate(q: int) -> dict:
    spec = synthetic_spec("budget-study", n_workers=POOL_SIZE, tasks_per_batch=q, k=K)
    ours_accuracies, us_accuracies, ground_truths = [], [], []
    for repetition in range(N_REPETITIONS):
        instance = spec.instantiate(seed=repetition)
        ground_truths.append(instance.ground_truth_mean_accuracy())
        for selector, bucket in ((OursSelector(rng=repetition), ours_accuracies),
                                 (UniformSamplingSelector(), us_accuracies)):
            environment = instance.environment(run_seed=repetition)
            result = selector.select(environment)
            bucket.append(selection_accuracy(environment, result))
    schedule = spec.schedule()
    return {
        "Q": q,
        "budget": schedule.total_budget,
        "rounds": schedule.n_rounds,
        "epsilon_bound": round_error_bound(schedule.n_rounds, K, schedule.total_budget, delta=0.1),
        "ours": float(np.mean(ours_accuracies)),
        "us": float(np.mean(us_accuracies)),
        "ground_truth": float(np.mean(ground_truths)),
    }


def main() -> None:
    print(f"Budget planning for a {POOL_SIZE}-worker pool, selecting k={K} "
          f"(averaged over {N_REPETITIONS} pool draws)\n")
    print(f"{'Q':>4} {'budget':>7} {'rounds':>7} {'eps bound':>10} {'US':>7} {'Ours':>7} {'GT':>7} {'gap closed':>11}")
    for q in Q_VALUES:
        row = evaluate(q)
        gap_closed = (row["ours"] - row["us"]) / max(row["ground_truth"] - row["us"], 1e-9)
        print(f"{row['Q']:>4} {row['budget']:>7} {row['rounds']:>7} {row['epsilon_bound']:>10.3f} "
              f"{row['us']:>7.3f} {row['ours']:>7.3f} {row['ground_truth']:>7.3f} {gap_closed:>10.0%}")
    print("\nReading the table: as Q grows the theoretical per-round error bound and the")
    print("advantage of cross-domain information both shrink — matching the paper's")
    print("Figure 7 observation that golden questions are most precious when scarce.")


if __name__ == "__main__":
    main()
