"""Benchmark E5 — Figure 6: sensitivity to the number of selected workers k.

Sweeps k per dataset (the full paper grid on the small datasets, the
endpoints on S-3/S-4 to bound the runtime) with every method, and checks the
qualitative observations of Section V-G: accuracies stay below the ground
truth, larger k (fewer elimination rounds) brings methods closer together,
and the proposed method never falls far behind the best baseline.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import SWEEP_CONFIG, record, run_once
from repro.config import METHOD_ORDER
from repro.experiments.figure6 import run_figure6
from repro.experiments.report import format_table

K_GRID = {
    "RW-1": [7, 14],
    "RW-2": [9, 18],
    "S-1": [5, 10, 20],
    "S-2": [5, 10, 20],
    "S-3": [5, 40],
    "S-4": [5, 40],
}


@pytest.mark.parametrize("dataset", list(K_GRID))
def test_figure6_k_sensitivity(benchmark, dataset):
    rows = run_once(
        benchmark,
        lambda: run_figure6([dataset], k_values={dataset: K_GRID[dataset]}, config=SWEEP_CONFIG),
    )
    print(f"\nFigure 6 — {dataset}")
    print(format_table(rows))

    for row in rows:
        for method in METHOD_ORDER:
            assert 0.0 <= float(row[method]) <= 1.0
            assert float(row[method]) <= float(row["ground-truth"]) + 1e-6
        ours = float(row["ours"])
        best_baseline = max(float(row[m]) for m in METHOD_ORDER if m != "ours")
        assert ours >= best_baseline - 0.08

    # Larger k selects deeper into the pool, so the ground-truth mean falls.
    ground_truths = [float(row["ground-truth"]) for row in rows]
    assert ground_truths[0] >= ground_truths[-1] - 1e-6

    record(
        benchmark,
        {f"k={row['k']}:{m}": round(float(row[m]), 3) for row in rows for m in ("ours", "me", "us")},
    )
