"""Benchmark E4 — Figure 5: sensitivity to the initial target accuracy a_T.

Sweeps a_T for the proposed method and checks the paper's observation that
performance is stable over the central range of a_T (the curve is flat for
a_T in roughly [0.2, 0.8] and the default 0.5 is not a knife-edge choice).
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import SWEEP_CONFIG, record, run_once
from repro.experiments.figure5 import run_figure5
from repro.experiments.report import format_table

AT_VALUES = (0.1, 0.3, 0.5, 0.7, 0.9)
DATASETS = ["RW-1", "RW-2", "S-1", "S-2"]


def test_figure5_at_sensitivity(benchmark):
    rows = run_once(benchmark, lambda: run_figure5(DATASETS, at_values=AT_VALUES, config=SWEEP_CONFIG))
    print("\nFigure 5 — accuracy of the proposed method vs a_T")
    print(format_table(rows))

    for dataset in DATASETS:
        series = np.array([float(row[dataset]) for row in rows])
        central = series[1:4]  # a_T in {0.3, 0.5, 0.7}
        # Stability claim: the central values stay within a narrow band.
        assert central.max() - central.min() < 0.12, dataset
        # The default a_T = 0.5 is close to the best setting.
        assert series[2] >= series.max() - 0.08, dataset

    record(
        benchmark,
        {
            f"{dataset}@aT={row['a_T']}": round(float(row[dataset]), 3)
            for row in rows
            for dataset in DATASETS
        },
    )
