"""Experiment-runner benchmark: serial vs sharded-parallel wall clock.

The comparison grid behind Tables IV–V and Figures 5–7 decomposes into
independent ``(dataset, method, repetition, k, q)`` work units; this
benchmark times the same tiny Table V grid at several ``n_jobs`` settings
and records the speedup over the serial run.  It doubles as a correctness
probe: for every job count the aggregated accuracies, precisions and
ground truths are compared bit-for-bit against the serial baseline.

Run it as a script (the pytest suite does not collect it):

    PYTHONPATH=src python benchmarks/bench_runner.py
    PYTHONPATH=src python benchmarks/bench_runner.py \
        --datasets S-1 --repetitions 2 --epochs 5 --jobs 1 2 \
        --output /tmp/bench.json

The machine-readable output extends the repo's perf trajectory
(``BENCH_runner.json`` alongside ``BENCH_cpe_hotpath.json``); its schema is
documented in the README's "Parallel experiment execution" section and
stamped into the payload as ``schema_version``.  ``environment.cpu_count``
matters when reading the numbers: process sharding cannot beat serial on a
single-core host, so speedups there sit at ~1x regardless of ``n_jobs``.
"""


from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional, Sequence

from conftest import assert_bench_environment, bench_environment
from repro.config import METHOD_ORDER, ExperimentConfig
from repro.experiments.runner import DatasetResult, plan_work_units, run_method_comparison
from repro.obs.timing import perf_counter

SCHEMA_VERSION = 1

DEFAULT_DATASETS = ("S-1",)
DEFAULT_JOBS = (1, 2, 4, 8)
DEFAULT_REPETITIONS = 4


def _comparable(results: Dict[str, DatasetResult]) -> Dict[str, object]:
    """The deterministic projection of a run (runtimes are wall clock, excluded)."""
    return {
        name: (result.k, result.tasks_per_batch, result.method_accuracies,
               result.method_precisions, result.ground_truths)
        for name, result in results.items()
    }


def run_benchmark(
    datasets: Sequence[str],
    jobs: Sequence[int],
    n_repetitions: int = DEFAULT_REPETITIONS,
    cpe_epochs: int = 50,
    base_seed: int = 7,
    methods: Optional[Sequence[str]] = None,
) -> Dict[str, object]:
    """Time the tiny comparison grid at each job count and assemble the payload."""
    config = ExperimentConfig(n_repetitions=n_repetitions, base_seed=base_seed, cpe_epochs=cpe_epochs)
    methods = list(methods) if methods is not None else list(METHOD_ORDER)
    n_units = len(plan_work_units(datasets, config=config, methods=methods))
    print(f"grid: {list(datasets)} x {methods} x {n_repetitions} reps = {n_units} work units")

    serial_wall: Optional[float] = None
    serial_projection: Optional[Dict[str, object]] = None
    results: List[Dict[str, object]] = []
    for n_jobs in jobs:
        start = perf_counter()
        run = run_method_comparison(datasets, config=config, methods=methods, n_jobs=n_jobs)
        wall = perf_counter() - start
        projection = _comparable(run)
        if serial_wall is None:
            serial_wall, serial_projection = wall, projection
        row: Dict[str, object] = {
            "n_jobs": int(n_jobs),
            "wall_s": wall,
            "speedup": serial_wall / wall,
            "identical_to_serial": projection == serial_projection,
        }
        results.append(row)
        print(
            f"  n_jobs={n_jobs:>2} | wall {row['wall_s']:.3f}s | "
            f"speedup {row['speedup']:.2f}x | "
            f"identical_to_serial {row['identical_to_serial']}"
        )
        if not row["identical_to_serial"]:
            raise AssertionError(f"n_jobs={n_jobs} diverged from the serial run")
    return {
        "benchmark": "runner",
        "schema_version": SCHEMA_VERSION,
        "config": {
            "datasets": list(datasets),
            "methods": methods,
            "n_repetitions": n_repetitions,
            "cpe_epochs": cpe_epochs,
            "base_seed": base_seed,
            "n_work_units": n_units,
        },
        "environment": bench_environment(),
        "results": results,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--datasets",
        nargs="+",
        default=list(DEFAULT_DATASETS),
        metavar="NAME",
        help=f"datasets in the grid (default: {' '.join(DEFAULT_DATASETS)})",
    )
    parser.add_argument(
        "--methods",
        nargs="+",
        default=None,
        metavar="NAME",
        help="methods in the grid (default: the full Table V roster)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        nargs="+",
        default=list(DEFAULT_JOBS),
        help=f"n_jobs settings to time (default: {' '.join(map(str, DEFAULT_JOBS))}); the first is the baseline",
    )
    parser.add_argument(
        "--repetitions", type=int, default=DEFAULT_REPETITIONS, help="repetitions per cell (default 4)"
    )
    parser.add_argument("--epochs", type=int, default=50, help="CPE gradient epochs (paper: 50)")
    parser.add_argument("--seed", type=int, default=7, help="base random seed (default 7)")
    parser.add_argument(
        "--output",
        default="BENCH_runner.json",
        help="path of the machine-readable result (default: BENCH_runner.json)",
    )
    args = parser.parse_args(argv)

    print(f"experiment-runner benchmark — jobs={args.jobs}, cpu_count={os.cpu_count()}")
    payload = run_benchmark(
        args.datasets,
        args.jobs,
        n_repetitions=args.repetitions,
        cpe_epochs=args.epochs,
        base_seed=args.seed,
        methods=args.methods,
    )
    assert_bench_environment(payload)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
