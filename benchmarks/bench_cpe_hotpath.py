"""Hot-path benchmark: CPE ``update()`` / ``predict()`` across pool sizes.

The CPE gradient update is the dominant cost of every selection run, so this
benchmark times it directly — reference engine vs. vectorized engine — on
synthetic 3-domain pools from the RW-1 scale (27 workers) up to far beyond
the paper's largest survey (640 workers).  It doubles as a correctness
probe: for every pool size the two engines' log-likelihoods are compared on
the same data.

Run it as a script (the pytest suite does not collect it):

    PYTHONPATH=src python benchmarks/bench_cpe_hotpath.py
    PYTHONPATH=src python benchmarks/bench_cpe_hotpath.py \
        --pool-sizes 27 160 --repeats 1 --epochs 5 --output /tmp/bench.json

The machine-readable output seeds the repo's perf trajectory
(``BENCH_cpe_hotpath.json``); its schema is documented in the README's
"CPE hot-path architecture" section and stamped into the payload as
``schema_version``.
"""


from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from conftest import assert_bench_environment, bench_environment
from repro.core.cpe import CPEConfig, CrossDomainPerformanceEstimator
from repro.obs.timing import perf_counter

SCHEMA_VERSION = 1

DEFAULT_POOL_SIZES = (27, 54, 160, 320, 640)
DEFAULT_N_DOMAINS = 3
#: Fraction of workers given a missing prior domain, mirroring the sparse
#: RW profiles so the pattern-grouping path is exercised, not idled.
MISSING_DOMAIN_FRACTION = 0.1


def build_workload(
    n_workers: int,
    n_domains: int = DEFAULT_N_DOMAINS,
    tasks_per_worker: int = 20,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Synthetic historical profiles and one round of counts for a pool."""
    rng = np.random.default_rng(seed)
    profiles = np.clip(rng.normal(0.7, 0.12, size=(n_workers, n_domains)), 0.05, 0.95)
    n_missing = int(MISSING_DOMAIN_FRACTION * n_workers)
    for row in rng.choice(n_workers, size=n_missing, replace=False):
        profiles[row, rng.integers(n_domains)] = np.nan
    latent = np.clip(rng.normal(0.7, 0.12, size=n_workers), 0.05, 0.95)
    correct = rng.binomial(tasks_per_worker, latent).astype(float)
    wrong = tasks_per_worker - correct
    return profiles, correct, wrong


def make_estimator(engine: str, n_epochs: int, seed: int = 0) -> CrossDomainPerformanceEstimator:
    config = CPEConfig(likelihood_engine=engine, n_epochs=n_epochs)
    domains = [f"d{index}" for index in range(1, DEFAULT_N_DOMAINS + 1)]
    return CrossDomainPerformanceEstimator(domains, config, rng=seed)


def time_engine(
    engine: str,
    workload: Tuple[np.ndarray, np.ndarray, np.ndarray],
    n_epochs: int,
    repeats: int,
) -> Dict[str, float]:
    """Best-of-``repeats`` wall time of ``update()`` and ``predict()``."""
    profiles, correct, wrong = workload
    update_times: List[float] = []
    predict_times: List[float] = []
    for _ in range(repeats):
        estimator = make_estimator(engine, n_epochs)
        estimator.initialize(profiles)
        start = perf_counter()
        estimator.update(profiles, correct, wrong)
        update_times.append(perf_counter() - start)
        start = perf_counter()
        estimator.predict(profiles, correct, wrong)
        predict_times.append(perf_counter() - start)
    return {"update_s": min(update_times), "predict_s": min(predict_times)}


def engine_agreement(
    workload: Tuple[np.ndarray, np.ndarray, np.ndarray],
    n_probe_models: int = 16,
    seed: int = 1,
) -> float:
    """Max |reference - vectorized| log-likelihood over a cloud of models.

    Probes the initialised model plus randomly perturbed parameter vectors
    around it (the regime the gradient update actually visits), so the
    reported maximum reflects the whole workload, not one friendly point.
    """
    from repro.stats.mvn import MultivariateNormalModel

    profiles, correct, wrong = workload
    estimator = make_estimator("vectorized", n_epochs=0)
    base = estimator.initialize(profiles)
    rng = np.random.default_rng(seed)
    thetas = base.pack_parameters()[None, :] + np.concatenate(
        [np.zeros((1, base.pack_parameters().size)),
         rng.normal(0.0, 0.05, size=(n_probe_models, base.pack_parameters().size))]
    )
    models = MultivariateNormalModel.unpack_parameter_matrix(thetas, base.dimension)
    data = estimator.prepare_round(profiles, correct, wrong)
    fast = estimator.log_likelihood_batch(models, data)
    reference = np.array(
        [estimator.log_likelihood(model, profiles, correct, wrong) for model in models]
    )
    return float(np.max(np.abs(fast - reference)))


def run_benchmark(
    pool_sizes: Sequence[int],
    n_epochs: int = 50,
    repeats: int = 3,
) -> Dict[str, object]:
    """Time both engines over the pool-size sweep and assemble the payload."""
    results: List[Dict[str, object]] = []
    for n_workers in pool_sizes:
        workload = build_workload(n_workers)
        reference = time_engine("reference", workload, n_epochs, repeats)
        vectorized = time_engine("vectorized", workload, n_epochs, repeats)
        row: Dict[str, object] = {
            "n_workers": int(n_workers),
            "update_reference_s": reference["update_s"],
            "update_vectorized_s": vectorized["update_s"],
            "update_speedup": reference["update_s"] / vectorized["update_s"],
            "predict_s": vectorized["predict_s"],
            "max_abs_loglik_diff": engine_agreement(workload),
        }
        results.append(row)
        print(
            f"  {n_workers:>4} workers | reference {row['update_reference_s']:.3f}s | "
            f"vectorized {row['update_vectorized_s']:.3f}s | "
            f"speedup {row['update_speedup']:.1f}x | "
            f"predict {row['predict_s'] * 1e3:.2f}ms | "
            f"loglik diff {row['max_abs_loglik_diff']:.2e}"
        )
    return {
        "benchmark": "cpe_hotpath",
        "schema_version": SCHEMA_VERSION,
        "config": {
            "n_domains": DEFAULT_N_DOMAINS,
            "n_epochs": n_epochs,
            "n_quadrature_nodes": CPEConfig().n_quadrature_nodes,
            "repeats": repeats,
            "missing_domain_fraction": MISSING_DOMAIN_FRACTION,
        },
        "environment": bench_environment(),
        "results": results,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--pool-sizes",
        type=int,
        nargs="+",
        default=list(DEFAULT_POOL_SIZES),
        help=f"worker-pool sizes to sweep (default: {' '.join(map(str, DEFAULT_POOL_SIZES))})",
    )
    parser.add_argument(
        "--epochs", type=int, default=50, help="gradient epochs per update (paper: 50)"
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing repetitions; best-of is reported"
    )
    parser.add_argument(
        "--output",
        default="BENCH_cpe_hotpath.json",
        help="path of the machine-readable result (default: BENCH_cpe_hotpath.json)",
    )
    args = parser.parse_args(argv)

    print(f"CPE hot-path benchmark — epochs={args.epochs}, repeats={args.repeats}")
    payload = run_benchmark(args.pool_sizes, n_epochs=args.epochs, repeats=args.repeats)
    assert_bench_environment(payload)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
