"""Benchmark E8 — Section V-H: recovered cross-domain correlations.

The simulated RW datasets embed the correlations the paper reports as their
true generative values; this benchmark runs the proposed method and checks
that the CPE's fitted correlations recover the *ordering* of prior domains
(e.g. clownfish/elephant more predictive of the flower target than planes on
RW-1, English marigold the most predictive of Lenten roses on RW-2).
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import BENCH_CONFIG, record, run_once
from repro.experiments.correlation import PAPER_CORRELATIONS, run_correlation_recovery
from repro.experiments.report import format_table


def test_correlation_recovery(benchmark):
    rows = run_once(benchmark, lambda: run_correlation_recovery(config=BENCH_CONFIG))
    print("\nSection V-H — estimated target-domain correlations")
    print(format_table(rows))

    for row in rows:
        assert np.isfinite(row["estimated"])
        assert -1.0 <= row["estimated"] <= 1.0

    # Ordering check on RW-2, where the paper's gap is largest: the most
    # predictive prior domain (English marigold, 0.68 vs 0.23 / 0.10) should
    # not be estimated as the least predictive one.
    rw2 = {row["prior_domain"]: row["estimated"] for row in rows if row["dataset"] == "RW-2"}
    if rw2:
        assert rw2["english_marigold"] >= min(rw2.values())

    record(
        benchmark,
        {
            f"{row['dataset']}:{row['prior_domain']}": f"{row['estimated']:.2f} (paper {row['paper']:.2f})"
            for row in rows
        },
    )
