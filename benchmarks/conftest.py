"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures, prints the
reproduced rows (run pytest with ``-s`` to see them) and records the key
numbers in ``benchmark.extra_info`` so they appear in the pytest-benchmark
JSON output.  Benchmarks run their workload exactly once
(``rounds=1, iterations=1``) — the interesting quantity is the reproduced
result, not a micro-timing distribution.
"""

from __future__ import annotations

import os
import platform
from typing import Callable, Dict

import pytest

from repro.config import ExperimentConfig

#: Configuration shared by the heavier table/figure benchmarks.
BENCH_CONFIG = ExperimentConfig(n_repetitions=2, base_seed=7)

#: Lighter configuration for the sweep benchmarks (figures).
SWEEP_CONFIG = ExperimentConfig(n_repetitions=1, base_seed=7)


def bench_environment(**extra: object) -> Dict[str, object]:
    """The environment block every benchmark payload records.

    ``cpu_count`` is mandatory: parallel cells (runner shards, marketplace
    campaign shards) are meaningless without knowing how many cores the
    numbers were taken on, and the shard-speedup gate soft-skips below
    four.  Extra keyword pairs are merged on top.
    """
    import numpy as np

    environment: Dict[str, object] = {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
    }
    environment.update(extra)
    return environment


def assert_bench_environment(payload: Dict[str, object]) -> None:
    """Fail fast when a benchmark payload forgot the environment contract."""
    environment = payload.get("environment")
    if not isinstance(environment, dict) or not isinstance(environment.get("cpu_count"), int):
        raise AssertionError("benchmark payload must record environment.cpu_count")


def run_once(benchmark, func: Callable[[], object]) -> object:
    """Run ``func`` exactly once under the benchmark timer and return its result."""
    return benchmark.pedantic(func, rounds=1, iterations=1)


def record(benchmark, values: Dict[str, object]) -> None:
    """Attach reproduced numbers to the benchmark's extra-info block."""
    for key, value in values.items():
        benchmark.extra_info[key] = value


@pytest.fixture
def bench_config() -> ExperimentConfig:
    return BENCH_CONFIG


@pytest.fixture
def sweep_config() -> ExperimentConfig:
    return SWEEP_CONFIG
