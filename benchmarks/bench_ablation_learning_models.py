"""Extension benchmark — ablation of the CPE design choices.

Two design decisions called out in DESIGN.md are ablated here on RW-1 and
S-1:

* the CPE posterior: the paper's literal Eq. (8) (profile-only conditional
  expectation) vs the counts-conditioned posterior used by default;
* the LGE anchor weighting: the paper's equal weighting vs the
  exposure-proportional weighting used by default.

The benchmark reports all four accuracies; the default configuration should
be at least as good as the literal one (that is why it is the default).
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import record, run_once
from repro.baselines import OursSelector
from repro.core.cpe import CPEConfig
from repro.core.lge import LGEConfig
from repro.datasets.registry import get_spec
from repro.evaluation.metrics import selection_accuracy
from repro.stats.rng import derive_seed

DATASETS = ["RW-1", "S-1"]
N_REPETITIONS = 2


def _run_variant(posterior: str, weight_by_exposure: bool) -> float:
    accuracies = []
    for dataset in DATASETS:
        spec = get_spec(dataset)
        for repetition in range(N_REPETITIONS):
            instance = spec.instantiate(seed=derive_seed(7, dataset, "ablation", repetition))
            selector = OursSelector(
                cpe_config=CPEConfig(posterior=posterior),
                lge_config=LGEConfig(weight_anchors_by_exposure=weight_by_exposure),
                rng=repetition,
            )
            environment = instance.environment(run_seed=repetition)
            result = selector.select(environment)
            accuracies.append(selection_accuracy(environment, result))
    return float(np.mean(accuracies))


def test_ablation_cpe_posterior_and_lge_weighting(benchmark):
    def run_all():
        return {
            "counts+exposure (default)": _run_variant("counts", True),
            "counts+equal": _run_variant("counts", False),
            "prior+exposure (literal Eq. 8)": _run_variant("prior", True),
            "prior+equal (literal paper)": _run_variant("prior", False),
        }

    results = run_once(benchmark, run_all)
    print("\nAblation of CPE posterior / LGE anchor weighting (mean accuracy over RW-1, S-1):")
    for name, value in results.items():
        print(f"  {name:32s} {value:.3f}")

    default = results["counts+exposure (default)"]
    literal = results["prior+equal (literal paper)"]
    assert default >= literal - 0.05
    record(benchmark, {name: round(value, 3) for name, value in results.items()})
