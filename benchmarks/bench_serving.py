"""Serving-layer benchmark: routing throughput and aggregation latency.

Times the two serving hot paths in isolation:

* **routing** — ``route()`` + load release per policy (``round_robin``,
  ``least_loaded``, ``domain_affinity``) across pool sizes up to 640
  workers, reported as routed tasks/second;
* **aggregation** — per-answer ``add()`` latency of the streaming
  majority vote and the incremental Dawid-Skene, plus the cost of the
  exact EM replay (``converge``).

Run it as a script (the pytest suite does not collect it):

    PYTHONPATH=src python benchmarks/bench_serving.py
    PYTHONPATH=src python benchmarks/bench_serving.py \
        --pool-sizes 40 640 --tasks 20000 --output /tmp/bench.json

The machine-readable output seeds the repo's perf trajectory
(``BENCH_serving.json``); the schema is stamped into the payload as
``schema_version``.  The repo's acceptance bar is >= 10k routed
tasks/sec for ``least_loaded`` on a 640-worker pool.
"""

# repro: allow-file[D002] -- benchmark timing loops read perf_counter by design

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.serving.aggregation import IncrementalDawidSkene, OnlineMajorityVote
from repro.serving.pool import ServingPool, ServingWorker
from repro.serving.qualification import DomainQualification, QualificationTier
from repro.serving.routing import make_router, router_names

SCHEMA_VERSION = 1

DEFAULT_POOL_SIZES = (40, 160, 640)
DEFAULT_DOMAIN = "target"
#: Fraction of workers landing in the fallback tier, so tier filtering is
#: exercised instead of idled.
FALLBACK_FRACTION = 0.2


def build_pool(n_workers: int, seed: int = 0, max_concurrent: int = 8) -> ServingPool:
    """A synthetic serving pool with mixed qualification tiers."""
    rng = np.random.default_rng(seed)
    estimates = np.clip(rng.normal(0.75, 0.1, size=n_workers), 0.05, 0.95)
    fallback = rng.uniform(size=n_workers) < FALLBACK_FRACTION
    workers: List[ServingWorker] = []
    for index in range(n_workers):
        worker_id = f"w{index:04d}"
        tier = QualificationTier.FALLBACK if fallback[index] else QualificationTier.QUALIFIED
        qualification = DomainQualification(
            worker_id=worker_id,
            domain=DEFAULT_DOMAIN,
            estimate=float(estimates[index]),
            questions=20,
            tier=tier,
        )
        workers.append(
            ServingWorker(
                worker_id=worker_id,
                qualifications={DEFAULT_DOMAIN: qualification},
                max_concurrent=max_concurrent,
            )
        )
    return ServingPool(workers)


def time_routing(
    policy: str,
    n_workers: int,
    n_tasks: int,
    votes: int,
    repeats: int,
) -> Dict[str, float]:
    """Best-of-``repeats`` routing throughput of one policy on one pool size."""
    times: List[float] = []
    for repeat in range(repeats):
        pool = build_pool(n_workers, seed=repeat)
        router = make_router(policy, pool)
        start = time.perf_counter()
        for _ in range(n_tasks):
            chosen = router.route(DEFAULT_DOMAIN, votes)
            for worker_id in chosen:
                pool.complete_assignment(worker_id)
        times.append(time.perf_counter() - start)
    best = min(times)
    return {
        "route_s": best,
        "tasks_per_second": n_tasks / best if best > 0 else float("inf"),
    }


def time_aggregation(n_answers: int, n_tasks: int, n_workers: int, seed: int = 0) -> Dict[str, float]:
    """Per-answer latency of the streaming aggregators on one synthetic stream."""
    rng = np.random.default_rng(seed)
    tasks = rng.integers(n_tasks, size=n_answers)
    workers = rng.integers(n_workers, size=n_answers)
    answers = rng.uniform(size=n_answers) < 0.7
    # Deduplicate (worker, task) pairs — the DS aggregator rejects repeats.
    seen = set()
    stream = []
    for t, w, a in zip(tasks, workers, answers):
        if (int(w), int(t)) in seen:
            continue
        seen.add((int(w), int(t)))
        stream.append((f"t{t:05d}", f"w{w:04d}", bool(a)))

    majority = OnlineMajorityVote()
    start = time.perf_counter()
    for task_id, worker_id, answer in stream:
        majority.add(task_id, worker_id, answer)
    majority_s = time.perf_counter() - start

    dawid_skene = IncrementalDawidSkene()
    start = time.perf_counter()
    for task_id, worker_id, answer in stream:
        dawid_skene.add(task_id, worker_id, answer)
    dawid_skene_s = time.perf_counter() - start

    start = time.perf_counter()
    dawid_skene.converge()
    converge_s = time.perf_counter() - start

    n = len(stream)
    return {
        "n_answers": n,
        "majority_us_per_answer": 1e6 * majority_s / n,
        "dawid_skene_us_per_answer": 1e6 * dawid_skene_s / n,
        "converge_s": converge_s,
        "answers_per_second_dawid_skene": n / dawid_skene_s if dawid_skene_s > 0 else float("inf"),
    }


def run_benchmark(
    pool_sizes: Sequence[int],
    n_tasks: int,
    votes: int,
    repeats: int,
    n_answers: int,
) -> Dict[str, object]:
    """The full benchmark payload."""
    routing: List[Dict[str, object]] = []
    for policy in router_names():
        for n_workers in pool_sizes:
            result = time_routing(policy, n_workers, n_tasks, votes, repeats)
            routing.append({"policy": policy, "pool_size": n_workers, **result})
            print(
                f"  {policy:>16} pool={n_workers:<4} "
                f"{result['tasks_per_second']:>12,.0f} tasks/s",
                file=sys.stderr,
            )
    aggregation = time_aggregation(n_answers, n_tasks=max(n_answers // 5, 1), n_workers=max(pool_sizes))
    return {
        "schema_version": SCHEMA_VERSION,
        "config": {
            "pool_sizes": list(pool_sizes),
            "n_tasks": n_tasks,
            "votes_per_task": votes,
            "repeats": repeats,
            "n_answers": n_answers,
        },
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "numpy": np.__version__,
        },
        "routing": routing,
        "aggregation": aggregation,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--pool-sizes", type=int, nargs="+", default=list(DEFAULT_POOL_SIZES))
    parser.add_argument("--tasks", type=int, default=20_000, help="tasks routed per (policy, pool) cell")
    parser.add_argument("--votes", type=int, default=3, help="workers per task")
    parser.add_argument("--repeats", type=int, default=3, help="timing repeats (best is kept)")
    parser.add_argument("--answers", type=int, default=50_000, help="answers streamed into the aggregators")
    parser.add_argument("--output", default="BENCH_serving.json", help="JSON output path")
    args = parser.parse_args(argv)

    payload = run_benchmark(
        pool_sizes=args.pool_sizes,
        n_tasks=args.tasks,
        votes=args.votes,
        repeats=args.repeats,
        n_answers=args.answers,
    )
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
