"""Serving-layer benchmark: routing throughput and aggregation latency.

Times the two serving hot paths in isolation:

* **routing** — ``route()`` + load release per policy (``round_robin``,
  ``least_loaded``, ``domain_affinity``) across pool sizes up to 100k
  workers, reported as routed tasks/second.  Every engine a policy
  declares gets its own cells: ``domain_affinity`` is timed under its
  ``indexed`` engine (the per-domain qualification indexes) at every
  size and under the O(n log n) ``reference`` engine on the smaller
  pools, so the payload documents both the scaling cliff the index
  removed and the fact that it is gone; ``least_loaded`` is timed under
  its ``heap`` engine and the O(1) ``bucket`` queue, whose flatness
  across pool sizes is the bucket's complexity-class evidence;
* **aggregation** — per-answer ``add()`` latency of the streaming
  majority vote and the incremental Dawid-Skene, plus the cost of the
  exact EM replay (``converge``);
* **telemetry overhead** — the routing loop timed with telemetry off and
  on (interleaved arms, best of repeats), reported as the percent of
  routed-tasks/s the instrumentation costs.  Passing
  ``--max-overhead-pct`` turns the worst measured cell into a regression
  gate, which is how CI pins the "near-zero-overhead" telemetry claim
  (the acceptance bar is <= 3% at 10k workers).

Besides raw cells the payload carries per-policy **throughput-flatness
ratios** (min/max tasks-per-second across the benched pool sizes — 1.0 is
perfectly flat, the pre-index ``domain_affinity`` measured ~0.08) and the
``domain_affinity``/``least_loaded`` throughput ratio per size.  Passing
``--min-affinity-ratio`` turns the largest-pool ratio into a regression
gate: the run exits non-zero when indexed affinity routing falls below
that fraction of the heap router, which is how CI pins the index's
complexity class.

Before any timing, every multi-engine policy has its engines routed side
by side on a churning pool and the run aborts on the first divergent
pick — timing a broken index (or bucket queue) is worthless.

Run it as a script (the pytest suite does not collect it):

    PYTHONPATH=src python benchmarks/bench_serving.py
    PYTHONPATH=src python benchmarks/bench_serving.py \
        --pool-sizes 640 10000 100000 --tasks 1000000 --output /tmp/bench.json

The machine-readable output seeds the repo's perf trajectory
(``BENCH_serving.json``); the schema is stamped into the payload as
``schema_version``.  The repo's acceptance bars: >= 10k routed tasks/sec
for ``least_loaded`` on a 640-worker pool, ``domain_affinity`` flat
within 10% across 640 -> 10k -> 100k workers and within 2x of
``least_loaded`` at every size.
"""


from __future__ import annotations

import argparse
import gc
import json
import sys
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from conftest import assert_bench_environment, bench_environment
from repro.obs.timing import perf_counter
from repro.serving.aggregation import IncrementalDawidSkene, OnlineMajorityVote
from repro.serving.pool import ServingPool, ServingWorker
from repro.serving.qualification import DomainQualification, QualificationTier
from repro.serving.routing import (
    NoEligibleWorkersError,
    make_router,
    router_engines,
    router_names,
)

SCHEMA_VERSION = 4

DEFAULT_POOL_SIZES = (40, 160, 640, 10_000, 100_000)
#: Pool sizes the telemetry on/off arms are compared at.
DEFAULT_OVERHEAD_POOL_SIZES = (10_000,)
#: Routing policy the telemetry overhead is measured on.
OVERHEAD_POLICY = "least_loaded"
DEFAULT_DOMAIN = "target"
#: Fraction of workers landing in the fallback tier, so tier filtering is
#: exercised instead of idled.
FALLBACK_FRACTION = 0.2
#: Per-cell task cap and pool-size ceiling for the O(n log n) reference
#: engine — uncapped, a 100k-pool reference cell alone would take hours.
DEFAULT_REFERENCE_TASKS = 2_000
DEFAULT_REFERENCE_MAX_POOL = 10_000


def build_pool(n_workers: int, seed: int = 0, max_concurrent: int = 8) -> ServingPool:
    """A synthetic serving pool with mixed qualification tiers."""
    rng = np.random.default_rng(seed)
    estimates = np.clip(rng.normal(0.75, 0.1, size=n_workers), 0.05, 0.95)
    fallback = rng.uniform(size=n_workers) < FALLBACK_FRACTION
    workers: List[ServingWorker] = []
    for index in range(n_workers):
        worker_id = f"w{index:06d}"
        tier = QualificationTier.FALLBACK if fallback[index] else QualificationTier.QUALIFIED
        qualification = DomainQualification(
            worker_id=worker_id,
            domain=DEFAULT_DOMAIN,
            estimate=float(estimates[index]),
            questions=20,
            tier=tier,
        )
        workers.append(
            ServingWorker(
                worker_id=worker_id,
                qualifications={DEFAULT_DOMAIN: qualification},
                max_concurrent=max_concurrent,
            )
        )
    return ServingPool(workers)


def check_engine_equivalence(
    policy: str,
    engines: Tuple[str, ...],
    n_workers: int,
    n_tasks: int,
    votes: int,
    seed: int = 0,
) -> int:
    """Route a policy's engines side by side on a churning pool.

    Drives identical route / complete / demote / remove / re-add scripts
    against same-seeded pools and raises on the first divergent pick.
    Returns the number of compared tasks.
    """
    lead = engines[0]
    pools = {engine: build_pool(n_workers, seed=seed) for engine in engines}
    routers = {
        engine: make_router(policy, pool, engine=engine)
        for engine, pool in pools.items()
    }
    removed: Dict[str, ServingWorker] = {}
    compared = 0
    for task in range(n_tasks):
        picks = {}
        for engine in engines:
            try:
                chosen = routers[engine].route(DEFAULT_DOMAIN, votes)
            except NoEligibleWorkersError:
                chosen = None
            if chosen:
                for worker_id in chosen:
                    pools[engine].complete_assignment(worker_id)
            picks[engine] = chosen
        for engine in engines[1:]:
            if picks[engine] != picks[lead]:
                raise RuntimeError(
                    f"{policy} engine divergence at task {task} on a "
                    f"{n_workers}-worker pool: {lead}={picks[lead]} "
                    f"{engine}={picks[engine]}"
                )
        compared += 1
        # Churn script (identical on all pools): demote the task's first
        # pick every 7 tasks, remove a routed worker every 11, re-admit the
        # longest-removed worker every 13.
        if picks[lead] is None:
            continue  # drained identically; a later re-admission may refill
        if task % 7 == 3:
            for pool in pools.values():
                pool.demote(picks[lead][0], DEFAULT_DOMAIN)
        if task % 11 == 5 and len(pools[lead]) > votes:
            victim = picks[lead][-1]
            for engine, pool in pools.items():
                gone = pool.remove_worker(victim)
                if engine == lead:
                    removed[victim] = gone
        if task % 13 == 8 and removed:
            victim, worker = next(iter(removed.items()))
            del removed[victim]
            for engine, pool in pools.items():
                pool.add_worker(
                    worker
                    if engine == lead
                    else ServingWorker(
                        worker_id=worker.worker_id,
                        qualifications=dict(worker.qualifications),
                        max_concurrent=worker.max_concurrent,
                        active=worker.active,
                        assigned_total=worker.assigned_total,
                        completed_total=worker.completed_total,
                    )
                )
    return compared


def time_routing(
    policy: str,
    n_workers: int,
    n_tasks: int,
    votes: int,
    repeats: int,
    engine: Optional[str] = None,
) -> Dict[str, float]:
    """Best-of-``repeats`` routing throughput of one policy on one pool size."""
    config: Dict[str, object] = {}
    if engine is not None:
        config["engine"] = engine
    times: List[float] = []
    for repeat in range(repeats):
        pool = build_pool(n_workers, seed=repeat)
        router = make_router(policy, pool, **config)
        # Freeze the pool's object graph out of the generational collector:
        # at 100k workers the periodic gen2 scans over construction garbage
        # otherwise dominate the timing and masquerade as a routing cliff.
        gc.collect()
        gc.freeze()
        start = perf_counter()
        for _ in range(n_tasks):
            chosen = router.route(DEFAULT_DOMAIN, votes)
            for worker_id in chosen:
                pool.complete_assignment(worker_id)
        times.append(perf_counter() - start)
        gc.unfreeze()
    best = min(times)
    return {
        "route_s": best,
        "n_tasks": n_tasks,
        "tasks_per_second": n_tasks / best if best > 0 else float("inf"),
    }


def time_telemetry_overhead(
    n_workers: int, n_tasks: int, votes: int, repeats: int
) -> Dict[str, float]:
    """Routing throughput with telemetry off vs on, interleaved arms.

    Both arms run the identical loop; the "on" arm binds a live
    :class:`repro.obs.Telemetry` to the router first, so the measured gap
    is exactly the per-route counter/latency-sampling cost.  Arms are
    interleaved within each repeat and the best time per arm is kept, so
    ambient machine noise hits both sides alike.
    """
    from repro.obs import create_telemetry

    times: Dict[str, List[float]] = {"off": [], "on": []}
    for repeat in range(repeats):
        for arm in ("off", "on"):
            pool = build_pool(n_workers, seed=repeat)
            router = make_router(OVERHEAD_POLICY, pool)
            if arm == "on":
                router.bind_telemetry(create_telemetry())
            gc.collect()
            gc.freeze()
            start = perf_counter()
            for _ in range(n_tasks):
                chosen = router.route(DEFAULT_DOMAIN, votes)
                for worker_id in chosen:
                    pool.complete_assignment(worker_id)
            times[arm].append(perf_counter() - start)
            gc.unfreeze()
    off_s, on_s = min(times["off"]), min(times["on"])
    off_tps = n_tasks / off_s if off_s > 0 else float("inf")
    on_tps = n_tasks / on_s if on_s > 0 else float("inf")
    return {
        "pool_size": n_workers,
        "n_tasks": n_tasks,
        "off_tasks_per_second": off_tps,
        "on_tasks_per_second": on_tps,
        "overhead_pct": 100.0 * (off_tps - on_tps) / off_tps if off_tps > 0 else 0.0,
    }


def time_aggregation(n_answers: int, n_tasks: int, n_workers: int, seed: int = 0) -> Dict[str, float]:
    """Per-answer latency of the streaming aggregators on one synthetic stream."""
    rng = np.random.default_rng(seed)
    tasks = rng.integers(n_tasks, size=n_answers)
    workers = rng.integers(n_workers, size=n_answers)
    answers = rng.uniform(size=n_answers) < 0.7
    # Deduplicate (worker, task) pairs — the DS aggregator rejects repeats.
    seen = set()
    stream = []
    for t, w, a in zip(tasks, workers, answers):
        if (int(w), int(t)) in seen:
            continue
        seen.add((int(w), int(t)))
        stream.append((f"t{t:05d}", f"w{w:06d}", bool(a)))

    majority = OnlineMajorityVote()
    start = perf_counter()
    for task_id, worker_id, answer in stream:
        majority.add(task_id, worker_id, answer)
    majority_s = perf_counter() - start

    dawid_skene = IncrementalDawidSkene()
    start = perf_counter()
    for task_id, worker_id, answer in stream:
        dawid_skene.add(task_id, worker_id, answer)
    dawid_skene_s = perf_counter() - start

    start = perf_counter()
    dawid_skene.converge()
    converge_s = perf_counter() - start

    n = len(stream)
    return {
        "n_answers": n,
        "majority_us_per_answer": 1e6 * majority_s / n,
        "dawid_skene_us_per_answer": 1e6 * dawid_skene_s / n,
        "converge_s": converge_s,
        "answers_per_second_dawid_skene": n / dawid_skene_s if dawid_skene_s > 0 else float("inf"),
    }


def _flatness(cells: List[Dict[str, object]]) -> Dict[str, Dict[str, float]]:
    """Per (policy, engine): min/max throughput across pool sizes and their ratio."""
    grouped: Dict[str, List[float]] = {}
    for cell in cells:
        key = str(cell["policy"])
        if cell.get("engine"):
            key = f"{key}[{cell['engine']}]"
        grouped.setdefault(key, []).append(float(cell["tasks_per_second"]))
    return {
        key: {
            "min_tasks_per_second": min(values),
            "max_tasks_per_second": max(values),
            "flatness_ratio": min(values) / max(values) if max(values) > 0 else 0.0,
        }
        for key, values in grouped.items()
    }


def _default_engine(policy: str) -> Optional[str]:
    engines = router_engines(policy)
    return engines[0] if engines else None


def _affinity_ratios(cells: List[Dict[str, object]]) -> Dict[str, object]:
    """Indexed-affinity throughput as a fraction of least_loaded, per pool size.

    Compares the production engines only (each policy's declared default) —
    alternate engines like ``reference`` and ``bucket`` have their own cells
    but stay out of the headline ratio.
    """
    by_size: Dict[int, Dict[str, float]] = {}
    for cell in cells:
        policy = str(cell["policy"])
        if cell.get("engine") not in (None, _default_engine(policy)):
            continue
        by_size.setdefault(int(cell["pool_size"]), {})[policy] = float(
            cell["tasks_per_second"]
        )
    ratios: Dict[str, float] = {}
    for size in sorted(by_size):
        policies = by_size[size]
        if "domain_affinity" in policies and "least_loaded" in policies and policies["least_loaded"] > 0:
            ratios[str(size)] = policies["domain_affinity"] / policies["least_loaded"]
    largest = max((int(size) for size in ratios), default=None)
    return {
        "per_pool_size": ratios,
        "at_largest_pool": ratios[str(largest)] if largest is not None else None,
        "largest_pool_size": largest,
    }


def run_benchmark(
    pool_sizes: Sequence[int],
    n_tasks: int,
    votes: int,
    repeats: int,
    n_answers: int,
    reference_tasks: int = DEFAULT_REFERENCE_TASKS,
    reference_max_pool: int = DEFAULT_REFERENCE_MAX_POOL,
    overhead_pool_sizes: Sequence[int] = DEFAULT_OVERHEAD_POOL_SIZES,
) -> Dict[str, object]:
    """The full benchmark payload."""
    for policy in router_names():
        declared = router_engines(policy)
        if len(declared) < 2:
            continue
        compared = check_engine_equivalence(
            policy, declared, min(pool_sizes), n_tasks=min(n_tasks, 500), votes=votes
        )
        print(
            f"  {policy} engine equivalence ({'/'.join(declared)}): "
            f"{compared} churning tasks, picks identical",
            file=sys.stderr,
        )
    routing: List[Dict[str, object]] = []
    for policy in router_names():
        engines: List[Optional[str]] = list(router_engines(policy)) or [None]
        for engine in engines:
            for n_workers in pool_sizes:
                cell_tasks = n_tasks
                if engine == "reference":
                    if n_workers > reference_max_pool:
                        print(
                            f"  {policy:>16} pool={n_workers:<6} engine=reference skipped "
                            f"(pool above --reference-max-pool={reference_max_pool})",
                            file=sys.stderr,
                        )
                        continue
                    cell_tasks = min(n_tasks, reference_tasks)
                result = time_routing(policy, n_workers, cell_tasks, votes, repeats, engine=engine)
                cell: Dict[str, object] = {"policy": policy, "pool_size": n_workers, **result}
                if engine is not None:
                    cell["engine"] = engine
                routing.append(cell)
                label = f"{policy}[{engine}]" if engine else policy
                print(
                    f"  {label:>28} pool={n_workers:<6} "
                    f"{result['tasks_per_second']:>12,.0f} tasks/s",
                    file=sys.stderr,
                )
    overhead_cells: List[Dict[str, object]] = []
    for n_workers in overhead_pool_sizes:
        cell = time_telemetry_overhead(n_workers, n_tasks, votes, repeats)
        overhead_cells.append(cell)
        print(
            f"  telemetry overhead pool={n_workers:<6} "
            f"off {cell['off_tasks_per_second']:>12,.0f} tasks/s, "
            f"on {cell['on_tasks_per_second']:>12,.0f} tasks/s "
            f"({cell['overhead_pct']:+.2f}%)",
            file=sys.stderr,
        )
    aggregation = time_aggregation(n_answers, n_tasks=max(n_answers // 5, 1), n_workers=max(pool_sizes))
    return {
        "schema_version": SCHEMA_VERSION,
        "config": {
            "pool_sizes": list(pool_sizes),
            "n_tasks": n_tasks,
            "votes_per_task": votes,
            "repeats": repeats,
            "n_answers": n_answers,
            "reference_tasks": reference_tasks,
            "reference_max_pool": reference_max_pool,
            "overhead_pool_sizes": list(overhead_pool_sizes),
        },
        "environment": bench_environment(),
        "routing": routing,
        "throughput_flatness": _flatness(routing),
        "affinity_vs_least_loaded": _affinity_ratios(routing),
        "telemetry_overhead": {
            "policy": OVERHEAD_POLICY,
            "cells": overhead_cells,
            "max_overhead_pct": max(float(cell["overhead_pct"]) for cell in overhead_cells),
        },
        "aggregation": aggregation,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--pool-sizes", type=int, nargs="+", default=list(DEFAULT_POOL_SIZES))
    parser.add_argument("--tasks", type=int, default=20_000, help="tasks routed per (policy, pool) cell")
    parser.add_argument("--votes", type=int, default=3, help="workers per task")
    parser.add_argument("--repeats", type=int, default=3, help="timing repeats (best is kept)")
    parser.add_argument("--answers", type=int, default=50_000, help="answers streamed into the aggregators")
    parser.add_argument(
        "--reference-tasks",
        type=int,
        default=DEFAULT_REFERENCE_TASKS,
        help="task cap per reference-engine cell (the O(n log n) baseline; default 2000)",
    )
    parser.add_argument(
        "--reference-max-pool",
        type=int,
        default=DEFAULT_REFERENCE_MAX_POOL,
        help="largest pool the reference engine is benched on (default 10000)",
    )
    parser.add_argument(
        "--min-affinity-ratio",
        type=float,
        default=None,
        metavar="FRACTION",
        help=(
            "regression gate: exit non-zero when indexed domain_affinity throughput "
            "at the largest benched pool is below this fraction of least_loaded"
        ),
    )
    parser.add_argument(
        "--overhead-pools",
        type=int,
        nargs="+",
        default=list(DEFAULT_OVERHEAD_POOL_SIZES),
        help="pool sizes for the telemetry on/off overhead cells (default 10000)",
    )
    parser.add_argument(
        "--max-overhead-pct",
        type=float,
        default=None,
        metavar="PCT",
        help=(
            "regression gate: exit non-zero when enabled-telemetry routing "
            "throughput loses more than this percentage in any overhead cell"
        ),
    )
    parser.add_argument("--output", default="BENCH_serving.json", help="JSON output path")
    args = parser.parse_args(argv)

    payload = run_benchmark(
        pool_sizes=args.pool_sizes,
        n_tasks=args.tasks,
        votes=args.votes,
        repeats=args.repeats,
        n_answers=args.answers,
        reference_tasks=args.reference_tasks,
        reference_max_pool=args.reference_max_pool,
        overhead_pool_sizes=args.overhead_pools,
    )
    assert_bench_environment(payload)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}", file=sys.stderr)
    if args.min_affinity_ratio is not None:
        ratios = payload["affinity_vs_least_loaded"]
        ratio = ratios["at_largest_pool"]  # type: ignore[index]
        if ratio is None:
            print("regression gate: no affinity/least_loaded ratio measured", file=sys.stderr)
            return 1
        if ratio < args.min_affinity_ratio:
            print(
                f"regression gate FAILED: domain_affinity at pool "
                f"{ratios['largest_pool_size']} runs at {ratio:.3f}x least_loaded "  # type: ignore[index]
                f"(minimum {args.min_affinity_ratio})",
                file=sys.stderr,
            )
            return 1
        print(
            f"regression gate passed: affinity/least_loaded ratio {ratio:.3f} "
            f">= {args.min_affinity_ratio}",
            file=sys.stderr,
        )
    if args.max_overhead_pct is not None:
        overhead = payload["telemetry_overhead"]
        worst = overhead["max_overhead_pct"]  # type: ignore[index]
        if worst > args.max_overhead_pct:
            print(
                f"regression gate FAILED: telemetry overhead {worst:.2f}% "
                f"exceeds maximum {args.max_overhead_pct}%",
                file=sys.stderr,
            )
            return 1
        print(
            f"regression gate passed: telemetry overhead {worst:.2f}% "
            f"<= {args.max_overhead_pct}%",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
