"""Benchmark E9 — Section V-H: the value of worker training.

Measures the average worker accuracy before and after one batch of revealed
learning tasks on the simulated RW datasets, and the break-even ratio of
working to learning tasks above which training pays for itself.  The paper's
claim being reproduced is qualitative: training produces a material accuracy
gain and the break-even ratio is a small single-digit number.
"""

from __future__ import annotations

from benchmarks.conftest import BENCH_CONFIG, record, run_once
from repro.experiments.report import format_table
from repro.experiments.training_gain import run_training_gain


def test_training_gain(benchmark):
    rows = run_once(benchmark, lambda: run_training_gain(config=BENCH_CONFIG))
    print("\nSection V-H — accuracy before/after one training batch")
    print(format_table(rows))

    for row in rows:
        # Training never hurts (the RW worker model floors learning at zero),
        # and at least one survey shows a clearly positive gain.  The
        # simulated learning curve is milder than the surveyed humans' — see
        # EXPERIMENTS.md — so the paper's exact 0.24 / 0.20 gains are not
        # asserted.
        assert row["after"] >= row["before"] - 1e-9
        assert row["break_even_ratio"] > 0
    assert max(row["gain"] for row in rows) > 0.05

    record(
        benchmark,
        {
            row["dataset"]: f"before={row['before']:.2f} after={row['after']:.2f} "
            f"break-even={row['break_even_ratio']:.1f}"
            for row in rows
        },
    )
