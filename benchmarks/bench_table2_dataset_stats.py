"""Benchmark E1 — Table II: dataset statistics.

Regenerates the dataset-statistics table (pool size, Q, k, batches, budget)
and checks it against the values printed in the paper.
"""

from __future__ import annotations

from benchmarks.conftest import record, run_once
from repro.experiments.report import format_table
from repro.experiments.table2 import PAPER_TABLE_II, run_table2


def test_table2_dataset_statistics(benchmark):
    rows = run_once(benchmark, run_table2)
    print("\n" + format_table(rows))

    by_name = {row["dataset"]: row for row in rows}
    # Everything except the paper's internally inconsistent S-2 row matches exactly.
    for name in ("RW-1", "RW-2", "S-1", "S-3", "S-4"):
        assert by_name[name]["B"] == PAPER_TABLE_II[name]["B"]
        assert by_name[name]["batches"] == PAPER_TABLE_II[name]["batches"]
    assert by_name["S-2"]["workers"] == PAPER_TABLE_II["S-2"]["workers"]

    record(benchmark, {row["dataset"]: f"B={row['B']}, batches={row['batches']}" for row in rows})
