"""Benchmark E6 — Figure 7: sensitivity to the learning tasks per batch Q.

Sweeps the per-batch budget Q on the synthetic datasets with every method
(the full {16, 20, 30, 40} grid on S-1/S-2, the endpoints on S-3/S-4) and
checks the paper's observations: every method improves — and the curves
bunch together — as the budget grows, while the proposed method remains
competitive throughout and is most valuable at small Q.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import SWEEP_CONFIG, record, run_once
from repro.config import METHOD_ORDER
from repro.experiments.figure7 import run_figure7
from repro.experiments.report import format_table

Q_GRID = {
    "S-1": (16, 20, 30, 40),
    "S-2": (16, 20, 30, 40),
    "S-3": (16, 40),
    "S-4": (16, 40),
}


@pytest.mark.parametrize("dataset", list(Q_GRID))
def test_figure7_q_sensitivity(benchmark, dataset):
    rows = run_once(
        benchmark,
        lambda: run_figure7([dataset], q_values=Q_GRID[dataset], config=SWEEP_CONFIG),
    )
    print(f"\nFigure 7 — {dataset}")
    print(format_table(rows))

    baselines = [m for m in METHOD_ORDER if m != "ours"]
    spreads = []
    for row in rows:
        for method in METHOD_ORDER:
            assert 0.0 <= float(row[method]) <= 1.0
            assert float(row[method]) <= float(row["ground-truth"]) + 1e-6
        ours = float(row["ours"])
        best_baseline = max(float(row[m]) for m in baselines)
        worst_method = min(float(row[m]) for m in METHOD_ORDER)
        spreads.append(float(row["ground-truth"]) - worst_method)
        assert ours >= best_baseline - 0.08

    # With a larger budget every method gets closer to the ground truth, so
    # the spread between the worst method and the ground truth shrinks (or at
    # least does not grow materially) from the smallest to the largest Q.
    assert spreads[-1] <= spreads[0] + 0.05

    record(
        benchmark,
        {f"Q={row['Q']}:{m}": round(float(row[m]), 3) for row in rows for m in ("ours", "me", "us")},
    )
