"""Benchmark E3 — Table V: main results and ablation study.

For every dataset, runs US, ME, Li et al., ME-CPE and the proposed method
under identical budgets and reports the mean selected-worker accuracy plus
the ground-truth upper bound — the full Table V.  One benchmark per dataset
so the heavy configurations (S-3, S-4) are individually visible.

The assertions check the paper's qualitative claims, not its absolute
numbers: the proposed method should be competitive with the best baseline
(within noise), never collapse towards the random baseline, and stay below
the ground truth.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_CONFIG, record, run_once
from repro.config import METHOD_ORDER
from repro.experiments.runner import run_method_comparison
from repro.experiments.table5 import PAPER_TABLE_V

DATASETS = ["RW-1", "RW-2", "S-1", "S-2", "S-3", "S-4"]


@pytest.mark.parametrize("dataset", DATASETS)
def test_table5_dataset(benchmark, dataset):
    results = run_once(
        benchmark,
        lambda: run_method_comparison([dataset], config=BENCH_CONFIG, methods=list(METHOD_ORDER)),
    )
    result = results[dataset]

    print(f"\nTable V — {dataset} (paper values in parentheses)")
    for method in METHOD_ORDER:
        paper_value = PAPER_TABLE_V.get(dataset, {}).get(method, float("nan"))
        print(f"  {method:8s} {result.mean_accuracy(method):.3f}  (paper {paper_value:.3f})")
    print(f"  {'GT':8s} {result.ground_truth:.3f}  (paper {PAPER_TABLE_V[dataset]['ground-truth']:.3f})")

    ours = result.mean_accuracy("ours")
    best_baseline = max(result.mean_accuracy(m) for m in METHOD_ORDER if m != "ours")
    # Shape checks: the proposed method is competitive with the best baseline
    # and no method exceeds the ground truth.
    assert ours >= best_baseline - 0.05
    for method in METHOD_ORDER:
        assert result.mean_accuracy(method) <= result.ground_truth + 1e-6
        assert result.mean_accuracy(method) >= 0.3

    record(
        benchmark,
        {
            **{method: round(result.mean_accuracy(method), 3) for method in METHOD_ORDER},
            "ground_truth": round(result.ground_truth, 3),
            "ours_vs_best_baseline": round(ours - best_baseline, 3),
        },
    )


def test_table5_ablation_ordering(benchmark):
    """The ablation claim: CPE alone helps ME, and LGE helps further (on average)."""
    datasets = ["RW-1", "RW-2", "S-1", "S-2"]
    results = run_once(
        benchmark,
        lambda: run_method_comparison(datasets, config=BENCH_CONFIG, methods=["me", "me-cpe", "ours"]),
    )
    mean_me = sum(results[d].mean_accuracy("me") for d in datasets) / len(datasets)
    mean_me_cpe = sum(results[d].mean_accuracy("me-cpe") for d in datasets) / len(datasets)
    mean_ours = sum(results[d].mean_accuracy("ours") for d in datasets) / len(datasets)
    print(f"\nAblation means over {datasets}: ME={mean_me:.3f}  ME-CPE={mean_me_cpe:.3f}  Ours={mean_ours:.3f}")
    assert mean_me_cpe >= mean_me - 0.03
    assert mean_ours >= mean_me_cpe - 0.03
    record(benchmark, {"me": round(mean_me, 3), "me-cpe": round(mean_me_cpe, 3), "ours": round(mean_ours, 3)})
