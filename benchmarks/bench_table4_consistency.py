"""Benchmark E2 — Table IV: dataset moments and RW-1 consistency.

Regenerates the per-domain accuracy moments of RW-1 and the synthetic
datasets and the bucketed-Pearson consistency of each synthetic set against
RW-1.  The moments should track the paper's Table IV; the Pearson values are
reported (the paper's > 0.75 threshold assumes its own survey data — see
EXPERIMENTS.md for the observed values on the simulated pools).
"""

from __future__ import annotations

from benchmarks.conftest import record, run_once
from repro.experiments.report import format_table
from repro.experiments.table4 import PAPER_TABLE_IV, run_table4


def test_table4_moments_and_consistency(benchmark):
    output = run_once(benchmark, lambda: run_table4(seed=0))
    print("\nPer-domain moments (mean, std):")
    print(format_table(output["moments"]))
    print("\nConsistency against RW-1:")
    print(format_table(output["consistency"]))

    moments_by_dataset = {row["dataset"]: row for row in output["moments"]}
    # Target-domain means should land near the paper's Table IV values.
    for dataset, paper_row in PAPER_TABLE_IV.items():
        measured_mean, _ = moments_by_dataset[dataset]["target"]
        paper_mean, _ = paper_row["target"]
        assert abs(measured_mean - paper_mean) < 0.12, dataset

    # All synthetic datasets must be positively consistent with RW-1.
    assert all(row["pearson"] > 0.0 for row in output["consistency"])

    record(
        benchmark,
        {
            **{f"{d}_target_mean": round(moments_by_dataset[d]["target"][0], 3) for d in moments_by_dataset},
            **{f"pearson_{row['candidate']}": round(row["pearson"], 3) for row in output["consistency"]},
        },
    )
