"""Benchmark E7 — Section V-H: selection runtime vs pool size.

Times one full selection run of the proposed method on every dataset and
checks the shape of the paper's runtime discussion: the cost grows with the
pool size but stays at the seconds scale, i.e. negligible against human
task-completion time (the paper's surveys took ~1000 s median).
"""

from __future__ import annotations

from benchmarks.conftest import SWEEP_CONFIG, record, run_once
from repro.experiments.report import format_table
from repro.experiments.runtime import run_runtime


def test_runtime_scaling(benchmark):
    rows = run_once(benchmark, lambda: run_runtime(config=SWEEP_CONFIG))
    print("\nSection V-H — selection runtime (seconds)")
    print(format_table(rows))

    by_dataset = {row["dataset"]: row for row in rows}
    # Shape: the largest pool costs more than the smallest, and everything
    # stays well below human survey-completion time (~1000 s).
    assert by_dataset["S-4"]["seconds"] > by_dataset["RW-1"]["seconds"]
    assert all(row["seconds"] < 300.0 for row in rows)

    record(benchmark, {row["dataset"]: round(float(row["seconds"]), 2) for row in rows})
