"""Hot-path benchmark: round answer simulation across pool sizes and engines.

Simulating a learning round's answers is the platform's innermost loop —
every selector triggers it once per elimination round for every surviving
worker.  This benchmark times :meth:`AnnotationEnvironment.run_learning_round`
directly — reference engine (per-worker loop) vs. vectorized engine (one
accuracy matrix + one Bernoulli draw) — on contaminated pools exercising
every built-in behaviour, from the paper's scale (40 workers) up to
platform scale (2560 workers).  It doubles as a correctness probe: for
every pool size the two engines' correctness records are compared
bit-for-bit and the run aborts on any mismatch.

Run it as a script (the pytest suite does not collect it):

    PYTHONPATH=src python benchmarks/bench_answer_sim.py
    PYTHONPATH=src python benchmarks/bench_answer_sim.py \
        --pool-sizes 40 160 --repeats 2 --output /tmp/bench.json

The machine-readable output seeds the repo's perf trajectory
(``BENCH_answer_sim.json``); its schema is documented in the README's
"Scenario catalog" section and stamped into the payload as
``schema_version``.
"""


from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Sequence

import numpy as np

from conftest import assert_bench_environment, bench_environment
from repro.obs.timing import perf_counter
from repro.platform.budget import compute_budget
from repro.platform.session import AnnotationEnvironment
from repro.platform.tasks import TaskBank, generate_task_bank
from repro.workers.pool import WorkerPool
from repro.workers.population import PopulationConfig, sample_learning_population

SCHEMA_VERSION = 1

DEFAULT_POOL_SIZES = (40, 160, 640, 2560)
DEFAULT_TASKS_PER_WORKER = 20
DEFAULT_N_ROUNDS = 3

#: Every built-in contamination behaviour is present so the benchmark
#: exercises the full class-grouped accuracy-matrix path.
CONTAMINATION_MIX = {
    "spammer": 0.05,
    "adversarial": 0.05,
    "fatigue": 0.05,
    "sleeper": 0.05,
    "drifter": 0.05,
}


def build_pool(n_workers: int, seed: int = 0) -> WorkerPool:
    """A contaminated learning pool at the RW-1 domain structure."""
    config = PopulationConfig(
        prior_domains=("d1", "d2", "d3"),
        target_domain="t",
        prior_means=(0.7, 0.8, 0.6),
        prior_stds=(0.15, 0.1, 0.2),
        target_mean=0.6,
        target_std=0.15,
        reference_exposure=DEFAULT_TASKS_PER_WORKER,
        behavior_mix=CONTAMINATION_MIX,
    )
    return WorkerPool(sample_learning_population(config, n_workers, rng=seed))


def build_bank(n_rounds: int, tasks_per_worker: int) -> TaskBank:
    return generate_task_bank(
        "t", n_learning=n_rounds * tasks_per_worker + tasks_per_worker, n_working=50, rng=0
    )


def make_environment(pool: WorkerPool, bank: TaskBank, engine: str, tasks_per_worker: int, n_rounds: int) -> AnnotationEnvironment:
    schedule = compute_budget(
        pool_size=len(pool), k=max(len(pool) // 8, 1), total_budget=len(pool) * tasks_per_worker * (n_rounds + 1)
    )
    return AnnotationEnvironment(
        pool,
        bank,
        schedule,
        ["d1", "d2", "d3"],
        rng=7,
        batch_size=tasks_per_worker,
        answer_engine=engine,
    )


def time_engine(
    engine: str,
    pool: WorkerPool,
    bank: TaskBank,
    tasks_per_worker: int,
    n_rounds: int,
    repeats: int,
) -> float:
    """Best-of-``repeats`` mean wall time of one learning round."""
    per_round: List[float] = []
    for _ in range(repeats):
        environment = make_environment(pool, bank, engine, tasks_per_worker, n_rounds)
        start = perf_counter()
        for round_index in range(1, n_rounds + 1):
            environment.run_learning_round(environment.worker_ids, tasks_per_worker, round_index=round_index)
        per_round.append((perf_counter() - start) / n_rounds)
    return min(per_round)


def engine_agreement(pool: WorkerPool, bank: TaskBank, tasks_per_worker: int, n_rounds: int) -> bool:
    """Whether both engines produce bit-identical correctness records."""
    records: Dict[str, List] = {}
    for engine in ("reference", "vectorized"):
        environment = make_environment(pool, bank, engine, tasks_per_worker, n_rounds)
        records[engine] = [
            environment.run_learning_round(environment.worker_ids, tasks_per_worker, round_index=r)
            for r in range(1, n_rounds + 1)
        ]
    for ref, fast in zip(records["reference"], records["vectorized"]):
        for worker_id, answers in ref.correctness.items():
            if not np.array_equal(answers, fast.correctness[worker_id]):
                return False
    return True


def run_benchmark(
    pool_sizes: Sequence[int],
    tasks_per_worker: int = DEFAULT_TASKS_PER_WORKER,
    n_rounds: int = DEFAULT_N_ROUNDS,
    repeats: int = 3,
) -> Dict[str, object]:
    """Time both engines over the pool-size sweep and assemble the payload."""
    results: List[Dict[str, object]] = []
    for n_workers in pool_sizes:
        pool = build_pool(n_workers)
        bank = build_bank(n_rounds, tasks_per_worker)
        identical = engine_agreement(pool, bank, tasks_per_worker, n_rounds)
        if not identical:
            raise AssertionError(f"engines disagree at {n_workers} workers — vectorization bug")
        reference_s = time_engine("reference", pool, bank, tasks_per_worker, n_rounds, repeats)
        vectorized_s = time_engine("vectorized", pool, bank, tasks_per_worker, n_rounds, repeats)
        row: Dict[str, object] = {
            "n_workers": int(n_workers),
            "round_reference_s": reference_s,
            "round_vectorized_s": vectorized_s,
            "round_speedup": reference_s / vectorized_s,
            "answers_per_s_reference": n_workers * tasks_per_worker / reference_s,
            "answers_per_s_vectorized": n_workers * tasks_per_worker / vectorized_s,
            "identical_records": identical,
        }
        results.append(row)
        print(
            f"  {n_workers:>5} workers | reference {reference_s * 1e3:8.2f}ms | "
            f"vectorized {vectorized_s * 1e3:7.2f}ms | speedup {row['round_speedup']:5.1f}x | "
            f"{row['answers_per_s_vectorized']:,.0f} answers/s | identical {identical}"
        )
    return {
        "benchmark": "answer_sim",
        "schema_version": SCHEMA_VERSION,
        "config": {
            "tasks_per_worker": tasks_per_worker,
            "n_rounds": n_rounds,
            "repeats": repeats,
            "contamination_mix": CONTAMINATION_MIX,
        },
        "environment": bench_environment(),
        "results": results,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--pool-sizes",
        type=int,
        nargs="+",
        default=list(DEFAULT_POOL_SIZES),
        help=f"worker-pool sizes to sweep (default: {' '.join(map(str, DEFAULT_POOL_SIZES))})",
    )
    parser.add_argument(
        "--tasks-per-worker",
        type=int,
        default=DEFAULT_TASKS_PER_WORKER,
        help=f"learning tasks per worker per round (default {DEFAULT_TASKS_PER_WORKER})",
    )
    parser.add_argument(
        "--rounds", type=int, default=DEFAULT_N_ROUNDS, help=f"rounds per run (default {DEFAULT_N_ROUNDS})"
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing repetitions; best-of is reported"
    )
    parser.add_argument(
        "--output",
        default="BENCH_answer_sim.json",
        help="path of the machine-readable result (default: BENCH_answer_sim.json)",
    )
    args = parser.parse_args(argv)

    print(
        f"answer-simulation benchmark — {args.tasks_per_worker} tasks/worker, "
        f"{args.rounds} rounds, repeats={args.repeats}"
    )
    payload = run_benchmark(
        args.pool_sizes,
        tasks_per_worker=args.tasks_per_worker,
        n_rounds=args.rounds,
        repeats=args.repeats,
    )
    assert_bench_environment(payload)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
