"""Marketplace benchmark: orchestrator tick throughput and journal latency.

Times the two marketplace hot paths in isolation:

* **orchestration** — full ticks of the multi-campaign event loop
  (churn draws, task submission, answer delivery, aggregation) across
  campaign counts, reported as ticks/second, with and without the
  journal on disk;
* **journal** — durable ``append_ticks`` latency across tick-batch
  sizes, showing how batching amortises the per-append fsync without
  changing the journal bytes.

Run it as a script (the pytest suite does not collect it):

    PYTHONPATH=src python benchmarks/bench_marketplace.py
    PYTHONPATH=src python benchmarks/bench_marketplace.py \
        --campaigns 1 2 4 --ticks 100 --output /tmp/bench.json

The machine-readable output seeds the repo's perf trajectory
(``BENCH_marketplace.json``); the schema is stamped into the payload as
``schema_version``.
"""

# repro: allow-file[D002] -- benchmark timing loops read perf_counter by design

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.marketplace import (
    CampaignSpec,
    ChurnConfig,
    EventJournal,
    MarketplaceConfig,
    MarketplaceOrchestrator,
)

SCHEMA_VERSION = 1

DEFAULT_CAMPAIGN_COUNTS = (1, 2, 4)
BENCH_DATASETS = ("S-1", "S-2")


def build_orchestrator(
    n_campaigns: int, n_ticks: int, journal_path: Optional[Path], seed: int
) -> MarketplaceOrchestrator:
    """A benchmark marketplace: every campaign keeps serving for the whole run."""
    tasks_per_tick = 2
    specs = [
        CampaignSpec(
            name=f"c{index}",
            dataset=BENCH_DATASETS[index % len(BENCH_DATASETS)],
            selector="us",
            k=5,
            seed=seed + index,
        )
        for index in range(n_campaigns)
    ]
    return MarketplaceOrchestrator(
        specs,
        config=MarketplaceConfig(total_tasks=n_ticks * tasks_per_tick, tasks_per_tick=tasks_per_tick),
        churn=ChurnConfig(arrival_rate=0.5, departure_rate=0.02),
        journal_path=journal_path,
        seed=seed,
    )


def time_orchestrator(
    n_campaigns: int, n_ticks: int, repeats: int, journaled: bool
) -> Dict[str, float]:
    """Best-of-``repeats`` tick throughput for one campaign count."""
    times: List[float] = []
    with tempfile.TemporaryDirectory() as tmp:
        for repeat in range(repeats):
            journal_path = Path(tmp) / f"bench{repeat}.jsonl" if journaled else None
            orchestrator = build_orchestrator(n_campaigns, n_ticks, journal_path, seed=repeat)
            start = time.perf_counter()
            orchestrator.run(n_ticks, tick_batch=8)
            times.append(time.perf_counter() - start)
    best = min(times)
    return {
        "run_s": best,
        "ticks_per_second": n_ticks / best if best > 0 else float("inf"),
    }


def synthetic_tick_record(tick: int) -> Dict[str, object]:
    """A tick record shaped like the orchestrator's (for journal timing)."""
    return {
        "type": "tick",
        "tick": tick,
        "departures": [],
        "invalidations": [],
        "arrivals": [{"worker_id": f"mkt-{tick:03d}", "observed": 0.75, "tier": "qualified", "admitted": True}],
        "campaigns": [
            {"campaign": f"c{index}", "phase": "serving", "submitted": 2, "delivered": 2}
            for index in range(4)
        ],
    }


def time_journal(n_records: int, tick_batch: int, repeats: int) -> Dict[str, float]:
    """Durable append throughput of the journal at one tick-batch size."""
    records = [synthetic_tick_record(tick) for tick in range(n_records)]
    times: List[float] = []
    with tempfile.TemporaryDirectory() as tmp:
        for repeat in range(repeats):
            journal = EventJournal(Path(tmp) / f"journal{repeat}.jsonl")
            journal.begin({"bench": True})
            start = time.perf_counter()
            for offset in range(0, n_records, tick_batch):
                journal.append_ticks(records[offset : offset + tick_batch])
            times.append(time.perf_counter() - start)
    best = min(times)
    return {
        "append_s": best,
        "records_per_second": n_records / best if best > 0 else float("inf"),
        "fsyncs": -(-n_records // tick_batch),
    }


def run_benchmark(
    campaign_counts: Sequence[int], n_ticks: int, repeats: int, n_records: int
) -> Dict[str, object]:
    """The full benchmark payload."""
    orchestration: List[Dict[str, object]] = []
    for journaled in (False, True):
        for n_campaigns in campaign_counts:
            result = time_orchestrator(n_campaigns, n_ticks, repeats, journaled)
            orchestration.append({"campaigns": n_campaigns, "journaled": journaled, **result})
            print(
                f"  campaigns={n_campaigns} journal={'on ' if journaled else 'off'} "
                f"{result['ticks_per_second']:>10,.0f} ticks/s",
                file=sys.stderr,
            )
    journal: List[Dict[str, object]] = []
    for tick_batch in (1, 8, 64):
        result = time_journal(n_records, tick_batch, repeats)
        journal.append({"tick_batch": tick_batch, **result})
        print(
            f"  journal batch={tick_batch:<3} {result['records_per_second']:>10,.0f} records/s "
            f"({result['fsyncs']} fsyncs)",
            file=sys.stderr,
        )
    return {
        "schema_version": SCHEMA_VERSION,
        "config": {
            "campaign_counts": list(campaign_counts),
            "n_ticks": n_ticks,
            "repeats": repeats,
            "n_journal_records": n_records,
        },
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "numpy": np.__version__,
        },
        "orchestration": orchestration,
        "journal": journal,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--campaigns", type=int, nargs="+", default=list(DEFAULT_CAMPAIGN_COUNTS))
    parser.add_argument("--ticks", type=int, default=150, help="ticks per orchestration cell")
    parser.add_argument("--repeats", type=int, default=3, help="timing repeats (best is kept)")
    parser.add_argument("--records", type=int, default=512, help="records appended per journal cell")
    parser.add_argument("--output", default="BENCH_marketplace.json", help="JSON output path")
    args = parser.parse_args(argv)

    payload = run_benchmark(
        campaign_counts=args.campaigns,
        n_ticks=args.ticks,
        repeats=args.repeats,
        n_records=args.records,
    )
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
