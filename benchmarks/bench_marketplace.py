"""Marketplace benchmark: orchestrator tick throughput and journal latency.

Times the two marketplace hot paths in isolation:

* **orchestration** — full ticks of the multi-campaign event loop
  (churn draws, task submission, answer delivery, aggregation) across
  campaign counts, reported as ticks/second, with and without the
  journal on disk;
* **journal** — durable ``append_ticks`` latency across tick-batch
  sizes, showing how batching amortises the per-append fsync without
  changing the journal bytes;
* **sharding** — the ``sharded`` tick engine across shard counts,
  preceded by a byte-equivalence pre-check against the reference
  engine (the cell refuses to time an engine that diverges).
  ``--min-shard-speedup`` turns the measured ratio into a regression
  gate, soft-skipped on machines with fewer than four cores;
* **telemetry overhead** — journaled orchestration with telemetry off
  vs on (interleaved arms, best-of-repeats per arm).  ``--max-overhead-pct``
  turns the measured loss into a regression gate.

Run it as a script (the pytest suite does not collect it):

    PYTHONPATH=src python benchmarks/bench_marketplace.py
    PYTHONPATH=src python benchmarks/bench_marketplace.py \
        --campaigns 1 2 4 --ticks 100 --output /tmp/bench.json

The machine-readable output seeds the repo's perf trajectory
(``BENCH_marketplace.json``); the schema is stamped into the payload as
``schema_version``.
"""


from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from conftest import assert_bench_environment, bench_environment

from repro.marketplace import (
    CampaignSpec,
    ChurnConfig,
    EventJournal,
    MarketplaceConfig,
    MarketplaceOrchestrator,
)
from repro.obs import create_telemetry
from repro.obs.timing import perf_counter

SCHEMA_VERSION = 3

DEFAULT_CAMPAIGN_COUNTS = (1, 2, 4)
DEFAULT_SHARD_COUNTS = (1, 2, 4)
BENCH_DATASETS = ("S-1", "S-2")


def build_orchestrator(
    n_campaigns: int,
    n_ticks: int,
    journal_path: Optional[Path],
    seed: int,
    telemetry=None,
    tick_engine: str = "reference",
    n_shards: int = 1,
) -> MarketplaceOrchestrator:
    """A benchmark marketplace: every campaign keeps serving for the whole run."""
    tasks_per_tick = 2
    specs = [
        CampaignSpec(
            name=f"c{index}",
            dataset=BENCH_DATASETS[index % len(BENCH_DATASETS)],
            selector="us",
            k=5,
            seed=seed + index,
        )
        for index in range(n_campaigns)
    ]
    return MarketplaceOrchestrator(
        specs,
        config=MarketplaceConfig(
            total_tasks=n_ticks * tasks_per_tick,
            tasks_per_tick=tasks_per_tick,
            tick_engine=tick_engine,
            n_shards=n_shards,
        ),
        churn=ChurnConfig(arrival_rate=0.5, departure_rate=0.02),
        journal_path=journal_path,
        seed=seed,
        telemetry=telemetry,
    )


def time_orchestrator(
    n_campaigns: int, n_ticks: int, repeats: int, journaled: bool
) -> Dict[str, float]:
    """Best-of-``repeats`` tick throughput for one campaign count."""
    times: List[float] = []
    with tempfile.TemporaryDirectory() as tmp:
        for repeat in range(repeats):
            journal_path = Path(tmp) / f"bench{repeat}.jsonl" if journaled else None
            orchestrator = build_orchestrator(n_campaigns, n_ticks, journal_path, seed=repeat)
            start = perf_counter()
            orchestrator.run(n_ticks, tick_batch=8)
            times.append(perf_counter() - start)
    best = min(times)
    return {
        "run_s": best,
        "ticks_per_second": n_ticks / best if best > 0 else float("inf"),
    }


def verify_shard_equivalence(n_campaigns: int, n_shards: int, n_ticks: int = 40) -> None:
    """Refuse to time a sharded engine that diverges from reference.

    A short journaled run under each engine; the journal fingerprint is
    engine-independent, so the bytes must match exactly.
    """
    with tempfile.TemporaryDirectory() as tmp:
        reference = Path(tmp) / "reference.jsonl"
        sharded = Path(tmp) / "sharded.jsonl"
        build_orchestrator(n_campaigns, n_ticks, reference, seed=0).run(n_ticks, tick_batch=8)
        build_orchestrator(
            n_campaigns, n_ticks, sharded, seed=0, tick_engine="sharded", n_shards=n_shards
        ).run(n_ticks, tick_batch=8)
        if reference.read_bytes() != sharded.read_bytes():
            raise AssertionError(
                f"sharded engine diverged from reference at campaigns={n_campaigns} "
                f"n_shards={n_shards}: journal bytes differ"
            )


def time_sharded(n_campaigns: int, n_ticks: int, repeats: int, n_shards: int) -> Dict[str, float]:
    """Best-of-``repeats`` sharded-engine tick throughput (unjournaled)."""
    times: List[float] = []
    for repeat in range(repeats):
        orchestrator = build_orchestrator(
            n_campaigns, n_ticks, None, seed=repeat, tick_engine="sharded", n_shards=n_shards
        )
        start = perf_counter()
        orchestrator.run(n_ticks, tick_batch=8)
        times.append(perf_counter() - start)
    best = min(times)
    return {
        "run_s": best,
        "ticks_per_second": n_ticks / best if best > 0 else float("inf"),
    }


def time_telemetry_overhead(n_campaigns: int, n_ticks: int, repeats: int) -> Dict[str, object]:
    """Journaled orchestration throughput with telemetry off vs on.

    The two arms are interleaved inside each repeat so drift (cache
    warmth, CPU frequency) hits both equally; best-of-repeats is kept
    per arm.
    """
    best: Dict[str, float] = {"off": float("inf"), "on": float("inf")}
    with tempfile.TemporaryDirectory() as tmp:
        for repeat in range(repeats):
            for arm in ("off", "on"):
                journal_path = Path(tmp) / f"overhead-{arm}{repeat}.jsonl"
                telemetry = create_telemetry() if arm == "on" else None
                orchestrator = build_orchestrator(
                    n_campaigns, n_ticks, journal_path, seed=repeat, telemetry=telemetry
                )
                start = perf_counter()
                orchestrator.run(n_ticks, tick_batch=8)
                best[arm] = min(best[arm], perf_counter() - start)
    off_tps = n_ticks / best["off"] if best["off"] > 0 else float("inf")
    on_tps = n_ticks / best["on"] if best["on"] > 0 else float("inf")
    return {
        "campaigns": n_campaigns,
        "n_ticks": n_ticks,
        "off_ticks_per_second": off_tps,
        "on_ticks_per_second": on_tps,
        "overhead_pct": 100.0 * (off_tps - on_tps) / off_tps if off_tps > 0 else 0.0,
    }


def synthetic_tick_record(tick: int) -> Dict[str, object]:
    """A tick record shaped like the orchestrator's (for journal timing)."""
    return {
        "type": "tick",
        "tick": tick,
        "departures": [],
        "invalidations": [],
        "arrivals": [{"worker_id": f"mkt-{tick:03d}", "observed": 0.75, "tier": "qualified", "admitted": True}],
        "campaigns": [
            {"campaign": f"c{index}", "phase": "serving", "submitted": 2, "delivered": 2}
            for index in range(4)
        ],
    }


def time_journal(n_records: int, tick_batch: int, repeats: int) -> Dict[str, float]:
    """Durable append throughput of the journal at one tick-batch size."""
    records = [synthetic_tick_record(tick) for tick in range(n_records)]
    times: List[float] = []
    with tempfile.TemporaryDirectory() as tmp:
        for repeat in range(repeats):
            journal = EventJournal(Path(tmp) / f"journal{repeat}.jsonl")
            journal.begin({"bench": True})
            start = perf_counter()
            for offset in range(0, n_records, tick_batch):
                journal.append_ticks(records[offset : offset + tick_batch])
            times.append(perf_counter() - start)
    best = min(times)
    return {
        "append_s": best,
        "records_per_second": n_records / best if best > 0 else float("inf"),
        "fsyncs": -(-n_records // tick_batch),
    }


def run_benchmark(
    campaign_counts: Sequence[int],
    n_ticks: int,
    repeats: int,
    n_records: int,
    shard_counts: Sequence[int] = DEFAULT_SHARD_COUNTS,
) -> Dict[str, object]:
    """The full benchmark payload."""
    orchestration: List[Dict[str, object]] = []
    reference_tps: Dict[int, float] = {}
    for journaled in (False, True):
        for n_campaigns in campaign_counts:
            result = time_orchestrator(n_campaigns, n_ticks, repeats, journaled)
            orchestration.append({"campaigns": n_campaigns, "journaled": journaled, **result})
            if not journaled:
                reference_tps[n_campaigns] = float(result["ticks_per_second"])
            print(
                f"  campaigns={n_campaigns} journal={'on ' if journaled else 'off'} "
                f"{result['ticks_per_second']:>10,.0f} ticks/s",
                file=sys.stderr,
            )
    journal: List[Dict[str, object]] = []
    for tick_batch in (1, 8, 64):
        result = time_journal(n_records, tick_batch, repeats)
        journal.append({"tick_batch": tick_batch, **result})
        print(
            f"  journal batch={tick_batch:<3} {result['records_per_second']:>10,.0f} records/s "
            f"({result['fsyncs']} fsyncs)",
            file=sys.stderr,
        )
    sharding: List[Dict[str, object]] = []
    shard_campaigns = max(campaign_counts)
    for n_shards in shard_counts:
        verify_shard_equivalence(shard_campaigns, n_shards)
        result = time_sharded(shard_campaigns, n_ticks, repeats, n_shards)
        baseline = reference_tps.get(shard_campaigns, 0.0)
        speedup = float(result["ticks_per_second"]) / baseline if baseline > 0 else 0.0
        sharding.append(
            {"campaigns": shard_campaigns, "n_shards": n_shards, "speedup_vs_reference": speedup, **result}
        )
        print(
            f"  sharded campaigns={shard_campaigns} n_shards={n_shards} "
            f"{result['ticks_per_second']:>10,.0f} ticks/s "
            f"({speedup:.2f}x reference, equivalence verified)",
            file=sys.stderr,
        )
    overhead = time_telemetry_overhead(max(campaign_counts), n_ticks, repeats)
    print(
        f"  telemetry overhead campaigns={overhead['campaigns']} "
        f"off {overhead['off_ticks_per_second']:>10,.0f} ticks/s, "
        f"on {overhead['on_ticks_per_second']:>10,.0f} ticks/s "
        f"({overhead['overhead_pct']:+.2f}%)",
        file=sys.stderr,
    )
    return {
        "schema_version": SCHEMA_VERSION,
        "config": {
            "campaign_counts": list(campaign_counts),
            "n_ticks": n_ticks,
            "repeats": repeats,
            "n_journal_records": n_records,
            "shard_counts": list(shard_counts),
        },
        "environment": bench_environment(),
        "orchestration": orchestration,
        "journal": journal,
        "sharding": sharding,
        "telemetry_overhead": overhead,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--campaigns", type=int, nargs="+", default=list(DEFAULT_CAMPAIGN_COUNTS))
    parser.add_argument("--ticks", type=int, default=150, help="ticks per orchestration cell")
    parser.add_argument("--repeats", type=int, default=3, help="timing repeats (best is kept)")
    parser.add_argument("--records", type=int, default=512, help="records appended per journal cell")
    parser.add_argument(
        "--n-shards",
        type=int,
        nargs="+",
        default=list(DEFAULT_SHARD_COUNTS),
        metavar="N",
        help="shard counts for the sharded-engine cells (each is equivalence-checked first)",
    )
    parser.add_argument(
        "--min-shard-speedup",
        type=float,
        default=None,
        metavar="RATIO",
        help=(
            "regression gate: exit non-zero when the best sharded cell is below "
            "this multiple of reference throughput (soft-skipped below 4 cores)"
        ),
    )
    parser.add_argument(
        "--max-overhead-pct",
        type=float,
        default=None,
        metavar="PCT",
        help=(
            "regression gate: exit non-zero when enabled-telemetry orchestration "
            "throughput loses more than this percentage"
        ),
    )
    parser.add_argument("--output", default="BENCH_marketplace.json", help="JSON output path")
    args = parser.parse_args(argv)

    payload = run_benchmark(
        campaign_counts=args.campaigns,
        n_ticks=args.ticks,
        repeats=args.repeats,
        n_records=args.records,
        shard_counts=args.n_shards,
    )
    assert_bench_environment(payload)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}", file=sys.stderr)
    if args.min_shard_speedup is not None:
        cpu_count = os.cpu_count() or 1
        if cpu_count < 4:
            print(
                f"shard-speedup gate soft-skipped: only {cpu_count} cores "
                f"(needs >= 4 for the parallel phase to pay off)",
                file=sys.stderr,
            )
        else:
            best = max(
                (cell["speedup_vs_reference"] for cell in payload["sharding"]),  # type: ignore[index]
                default=0.0,
            )
            if best < args.min_shard_speedup:
                print(
                    f"regression gate FAILED: best shard speedup {best:.2f}x "
                    f"below minimum {args.min_shard_speedup}x",
                    file=sys.stderr,
                )
                return 1
            print(
                f"regression gate passed: best shard speedup {best:.2f}x "
                f">= {args.min_shard_speedup}x",
                file=sys.stderr,
            )
    if args.max_overhead_pct is not None:
        worst = payload["telemetry_overhead"]["overhead_pct"]  # type: ignore[index]
        if worst > args.max_overhead_pct:
            print(
                f"regression gate FAILED: telemetry overhead {worst:.2f}% "
                f"exceeds maximum {args.max_overhead_pct}%",
                file=sys.stderr,
            )
            return 1
        print(
            f"regression gate passed: telemetry overhead {worst:.2f}% "
            f"<= {args.max_overhead_pct}%",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
